//! A dependency-free, offline stand-in for the crates.io `rand` crate.
//!
//! The workspace builds in environments with no network access, so the
//! subset of the `rand` 0.9 API the codebase uses is reimplemented here:
//!
//! * [`Rng::random`] / [`Rng::random_range`]
//! * [`SeedableRng::seed_from_u64`]
//! * [`rngs::StdRng`]
//!
//! The generator is SplitMix64 — deterministic, fast, and statistically
//! adequate for corpus generation, model seeding and obfuscation
//! scheduling (nothing in this workspace needs cryptographic strength).
//! Streams are stable across runs and platforms, which the dataset
//! reproducibility tests rely on.

use core::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly over `T`'s full domain (floats: `[0, 1)`).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Types samplable from an RNG over their "standard" distribution.
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<const N: usize> StandardSample for [u8; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let word = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        out
    }
}

/// Types with uniform sampling over an interval.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)` (`inclusive: false`) or
    /// `[low, high]` (`inclusive: true`). Caller guarantees non-emptiness.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as $wide - low as $wide) as u128 + u128::from(inclusive);
                if span == 0 || span > u64::MAX as u128 {
                    // The full 64-bit domain: every output is in range.
                    return rng.next_u64() as $t;
                }
                let offset = rng.next_u64() % span as u64;
                (low as $wide + offset as $wide) as $t
            }
        }
    )*};
}
uniform_int!(
    u8 => u128, u16 => u128, u32 => u128, u64 => u128, usize => u128,
    i8 => i128, i16 => i128, i32 => i128, i64 => i128, isize => i128,
);

macro_rules! uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                let unit = <$t as StandardSample>::sample_standard(rng);
                low + unit * (high - low)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample from an empty range");
        T::sample_in(rng, low, high, true)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..12);
            assert!((3..12).contains(&x));
            let y: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_width_draws_cover_types() {
        let mut rng = StdRng::seed_from_u64(9);
        let _: u8 = rng.random();
        let _: i64 = rng.random();
        let _: [u8; 4] = rng.random();
        let _: [u8; 20] = rng.random();
        let f: f32 = rng.random();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(11);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..500 {
            match rng.random_range(0u8..=1) {
                0 => lo = true,
                _ => hi = true,
            }
        }
        assert!(lo && hi);
    }
}
