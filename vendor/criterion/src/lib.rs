//! A dependency-free, offline stand-in for the crates.io `criterion`
//! benchmark harness.
//!
//! The workspace builds without network access, so the subset of the
//! Criterion API the `scamdetect-bench` benches use is reimplemented
//! here: groups, throughput annotation, `bench_function` /
//! `bench_with_input`, and the `criterion_group!` / `criterion_main!`
//! macros. Measurements are a simple mean over a fixed iteration count —
//! good enough for coarse comparisons and for keeping every bench
//! compiling and runnable; no statistical analysis or HTML reports.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.into(), self.sample_size, None, &mut f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &self.name,
            &id.into(),
            self.sample_size,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &self.name,
            &id,
            self.sample_size,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one(
    group: &str,
    id: &BenchmarkId,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        iterations: sample_size as u64,
        mean_ns: 0.0,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let rate = throughput
        .map(|t| t.describe(bencher.mean_ns))
        .unwrap_or_default();
    println!("bench {label:<48} {:>14.1} ns/iter{rate}", bencher.mean_ns);
}

/// Identifies one benchmark, optionally parameterized.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A parameterized id: `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Work-per-iteration annotation for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

impl Throughput {
    fn describe(self, mean_ns: f64) -> String {
        if mean_ns <= 0.0 {
            return String::new();
        }
        match self {
            Throughput::Bytes(n) => {
                format!(
                    "  ({:.1} MiB/s)",
                    n as f64 / mean_ns * 1e9 / (1 << 20) as f64
                )
            }
            Throughput::Elements(n) => {
                format!("  ({:.0} elem/s)", n as f64 / mean_ns * 1e9)
            }
        }
    }
}

/// Passed to each benchmark closure; times the measured routine.
pub struct Bencher {
    iterations: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warmup pass.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iterations as f64;
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` to run the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_measures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(128));
        let data = vec![1u8; 128];
        group.bench_with_input(BenchmarkId::new("sum", "small"), &data, |b, d| {
            b.iter(|| d.iter().map(|&x| x as u64).sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
