//! A dependency-free, offline stand-in for the crates.io `proptest`
//! crate, covering the subset its property tests here use: the
//! `proptest!` macro, `any::<T>()`, integer-range strategies,
//! `collection::vec`, and the `prop_assert*` macros.
//!
//! Differences from real proptest: cases are drawn from a deterministic
//! per-test seed (no persisted failure file) and there is **no
//! shrinking** — a failing case reports its index and seed instead.

use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

/// Deterministic case generation machinery.
pub mod test_runner {
    /// Cases generated per property.
    pub const CASES: usize = 128;

    /// The per-case generator (SplitMix64).
    pub struct Gen {
        state: u64,
    }

    impl Gen {
        /// Seeds the generator for one `(test, case)` pair.
        pub fn for_case(test_name: &str, case: u64) -> Gen {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Gen {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::Gen;

    /// Generates values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, gen: &mut Gen) -> Self::Value;
    }
}

use strategy::Strategy;
use test_runner::Gen;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value over the type's full domain.
    fn arbitrary(gen: &mut Gen) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(gen: &mut Gen) -> Self {
                gen.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(gen: &mut Gen) -> Self {
        gen.next_u64() >> 63 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(gen: &mut Gen) -> Self {
        (gen.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(gen: &mut Gen) -> Self {
        (gen.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Strategy over a type's full domain.
pub struct AnyStrategy<T>(PhantomData<T>);

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, gen: &mut Gen) -> T {
        T::arbitrary(gen)
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + gen.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return gen.next_u64() as $t;
                }
                (lo as i128 + gen.below(span as u64) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::Gen;
    use core::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for generated collections.
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (min, max_inclusive) = r.into_inner();
            assert!(min <= max_inclusive, "empty size range");
            SizeRange { min, max_inclusive }
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, size)` — vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, gen: &mut Gen) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min + 1) as u64;
            let len = self.size.min + gen.below(span) as usize;
            (0..len).map(|_| self.element.generate(gen)).collect()
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Declares property tests: each function body runs for
/// [`test_runner::CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for case in 0..$crate::test_runner::CASES {
                    let mut gen =
                        $crate::test_runner::Gen::for_case(stringify!($name), case as u64);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut gen);
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn vec_lengths_in_bounds(v in crate::collection::vec(any::<u8>(), 2..10)) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
        }

        #[test]
        fn int_ranges_in_bounds(x in 0u32..4, y in any::<i64>()) {
            prop_assert!(x < 4);
            prop_assert_eq!(y, y);
        }
    }
}
