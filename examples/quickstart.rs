//! Quickstart: generate a corpus, configure a batch-first scanner, scan
//! in bulk with skeleton-hash dedup.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```
//!
//! Migrating from the removed one-shot `ScamDetect` facade? Build the
//! scanner directly with the `ScannerBuilder` shown here
//! (`ScamDetect::train(kind, corpus, opts)` becomes
//! `ScannerBuilder::new().model(kind).train_options(opts).train(corpus)`),
//! use `scan_batch` for anything bulk, and persist trained models with
//! `Scanner::save` / `ScannerBuilder::load` (see `examples/save_load.rs`).

use scamdetect::{CacheStatus, ClassicModel, FeatureKind, ModelKind, ScanRequest, ScannerBuilder};
use scamdetect_dataset::{ContractLabel, Corpus, CorpusConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A labeled corpus — the synthetic stand-in for the Etherscan
    //    dataset the paper builds on (see DESIGN.md for the substitution).
    //    `proxy_duplicates` injects ERC-1167 clones, the duplication
    //    pattern that dominates real scanning traffic.
    let corpus = Corpus::generate(&CorpusConfig {
        size: 300,
        seed: 2024,
        proxy_duplicates: 60,
        ..CorpusConfig::default()
    });
    let stats = corpus.stats();
    println!(
        "corpus: {} contracts ({} malicious, {} benign), mean {:.0} bytes",
        stats.total, stats.malicious, stats.benign, stats.mean_size
    );

    // 2. Hold out 30% for honest evaluation.
    let (train_idx, test_idx) = corpus.split(0.3, 7);

    // 3. Configure and train the scanner: model, decision threshold,
    //    dedup-cache bound and worker fan-out in one fluent chain.
    //
    //    GNN detectors (`ModelKind::Gnn(GnnKind::Gcn)` etc.) train through
    //    block-diagonal mini-batches: each gradient step packs
    //    `train_options().gnn.batch_size` CFGs into one batch scored by a
    //    single tape forward/backward. The batching knobs live on the same
    //    options struct:
    //
    //        .train_options({
    //            let mut o = scamdetect::TrainOptions::default();
    //            o.gnn.batch_size = 8;          // graphs per batch
    //            o.gnn.bucket_by_size = true;   // pack similar-sized CFGs,
    //                                           // pay packing once per run
    //            o.gnn.max_batch_nodes = Some(4096); // cap nodes per batch
    //            o
    //        })
    let scanner = ScannerBuilder::new()
        .model(ModelKind::Classic(
            ClassicModel::RandomForest,
            FeatureKind::Unified,
        ))
        .threshold(0.5)
        .cache_capacity(4096)
        .workers(0) // 0 = one worker per available core
        .train_on(&corpus, &train_idx)?;

    // 4. Scan the held-out contracts as ONE batch.
    let requests: Vec<ScanRequest> = test_idx
        .iter()
        .map(|&i| ScanRequest::new(&corpus.contracts()[i].bytes))
        .collect();
    let outcomes = scanner.scan_batch(&requests);

    let mut correct = 0;
    let mut cache_hits = 0;
    for (&i, outcome) in test_idx.iter().zip(&outcomes) {
        let report = outcome.as_ref().expect("scan succeeds");
        if report.verdict.label == corpus.contracts()[i].label {
            correct += 1;
        }
        if report.cache != CacheStatus::Miss {
            cache_hits += 1;
        }
    }
    println!(
        "held-out accuracy: {:.1}% ({} / {})",
        100.0 * correct as f64 / test_idx.len() as f64,
        correct,
        test_idx.len()
    );
    println!(
        "dedup: {cache_hits} of {} scans served from the skeleton cache",
        test_idx.len()
    );

    // 5. Inspect one report in detail: verdict plus scan provenance.
    let malicious_pos = test_idx
        .iter()
        .position(|&i| corpus.contracts()[i].label == ContractLabel::Malicious)
        .expect("test set contains malicious samples");
    let target = &corpus.contracts()[test_idx[malicious_pos]];
    let report = outcomes[malicious_pos].as_ref().expect("scan succeeds");
    println!("\nsample scan of a {} contract:", target.family);
    println!("  {}", report.verdict);
    println!(
        "  skeleton {:016x}, cache {:?}, {} blocks / {} edges, {:?}",
        report.skeleton, report.cache, report.cfg.blocks, report.cfg.edges, report.elapsed
    );
    Ok(())
}
