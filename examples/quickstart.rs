//! Quickstart: generate a corpus, train a detector, scan contracts.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use scamdetect::{ClassicModel, FeatureKind, ModelKind, ScamDetect, TrainOptions};
use scamdetect_dataset::{ContractLabel, Corpus, CorpusConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A labeled corpus — the synthetic stand-in for the Etherscan
    //    dataset the paper builds on (see DESIGN.md for the substitution).
    let corpus = Corpus::generate(&CorpusConfig {
        size: 300,
        seed: 2024,
        ..CorpusConfig::default()
    });
    let stats = corpus.stats();
    println!(
        "corpus: {} contracts ({} malicious, {} benign), mean {:.0} bytes",
        stats.total, stats.malicious, stats.benign, stats.mean_size
    );

    // 2. Hold out 30% for honest evaluation.
    let (train_idx, test_idx) = corpus.split(0.3, 7);

    // 3. Train the scanner (random forest over platform-agnostic features).
    let scanner = ScamDetect::train_on(
        ModelKind::Classic(ClassicModel::RandomForest, FeatureKind::Unified),
        &corpus,
        &train_idx,
        &TrainOptions::default(),
    )?;

    // 4. Scan the held-out contracts.
    let mut correct = 0;
    for &i in &test_idx {
        let contract = &corpus.contracts()[i];
        let verdict = scanner.scan(&contract.bytes)?;
        if verdict.label == contract.label {
            correct += 1;
        }
    }
    println!(
        "held-out accuracy: {:.1}% ({} / {})",
        100.0 * correct as f64 / test_idx.len() as f64,
        correct,
        test_idx.len()
    );

    // 5. Inspect one verdict in detail.
    let malicious_idx = test_idx
        .iter()
        .find(|&&i| corpus.contracts()[i].label == ContractLabel::Malicious)
        .copied()
        .expect("test set contains malicious samples");
    let target = &corpus.contracts()[malicious_idx];
    let verdict = scanner.scan(&target.bytes)?;
    println!("\nsample scan of a {} contract:", target.family);
    println!("  {verdict}");
    Ok(())
}
