//! Platform-agnostic detection: one model, two runtimes.
//!
//! Trains a detector on a **mixed** EVM + WASM corpus using only the
//! unified IR, then scans contracts from both platforms with the same
//! model — the paper's Phase 2 (§V-B) in action.
//!
//! ```text
//! cargo run --example wasm_cross_platform --release
//! ```

use scamdetect::{ClassicModel, FeatureKind, ModelKind, ScannerBuilder};
use scamdetect_dataset::{Corpus, CorpusConfig};
use scamdetect_ir::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A corpus per platform, then a mixed training pool.
    let evm = Corpus::generate(&CorpusConfig {
        size: 150,
        platform: Platform::Evm,
        seed: 31,
        ..CorpusConfig::default()
    });
    let wasm = Corpus::generate(&CorpusConfig {
        size: 150,
        platform: Platform::Wasm,
        seed: 32,
        ..CorpusConfig::default()
    });

    let (evm_train, evm_test) = evm.split(0.3, 5);
    let (wasm_train, wasm_test) = wasm.split(0.3, 5);
    let mut mixed = Vec::new();
    for &i in &evm_train {
        mixed.push(evm.contracts()[i].clone());
    }
    for &i in &wasm_train {
        mixed.push(wasm.contracts()[i].clone());
    }
    let mixed = Corpus::from_contracts(mixed);
    println!(
        "training one agnostic model on {} mixed contracts...",
        mixed.len()
    );
    let scanner = ScannerBuilder::new()
        .model(ModelKind::Classic(
            ClassicModel::RandomForest,
            FeatureKind::Unified,
        ))
        .train(&mixed)?;

    // Evaluate the SAME model on both platforms' held-out sets.
    for (name, corpus, test_idx) in [("evm", &evm, &evm_test), ("wasm", &wasm, &wasm_test)] {
        let mut correct = 0;
        for &i in test_idx {
            let c = &corpus.contracts()[i];
            let verdict = scanner.scan(&c.bytes)?.verdict;
            assert_eq!(
                verdict.platform, c.platform,
                "platform auto-detection must agree"
            );
            if verdict.label == c.label {
                correct += 1;
            }
        }
        println!(
            "{name:>5} held-out accuracy: {:.1}% ({} / {})",
            100.0 * correct as f64 / test_idx.len() as f64,
            correct,
            test_idx.len()
        );
    }

    // One verdict per platform, for show.
    let v_evm = scanner.scan(&evm.contracts()[evm_test[0]].bytes)?.verdict;
    let v_wasm = scanner.scan(&wasm.contracts()[wasm_test[0]].bytes)?.verdict;
    println!("\nsame model, two runtimes:");
    println!("  {v_evm}");
    println!("  {v_wasm}");
    Ok(())
}
