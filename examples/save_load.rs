//! Train once, serve anywhere: persist a trained scanner as a versioned
//! `ModelArtifact`, reload it in a fresh scanner with **no corpus in
//! scope**, and verify the verdicts are bit-for-bit identical.
//!
//! ```text
//! cargo run --example save_load --release
//! ```
//!
//! This is the workflow that turns a learned detector into
//! infrastructure: the expensive step (training) runs once, the artifact
//! ships to every serving process — CLI runs (`scamdetect-cli train
//! --save` / `scan --model <path>`), replicas, browser embeds
//! (`scamdetect-embed`) — and each loads in milliseconds.

use scamdetect::{
    ClassicModel, FeatureKind, GnnKind, ModelArtifact, ModelKind, ScanRequest, Scanner,
    ScannerBuilder, TrainOptions,
};
use scamdetect_dataset::{Corpus, CorpusConfig};

/// The serving side, deliberately written so no `Corpus` can possibly be
/// involved: it only ever sees a path.
fn serve(model_path: &std::path::Path, requests: &[ScanRequest]) -> Vec<f64> {
    let scanner: Scanner = ScannerBuilder::new()
        .cache_capacity(1024)
        .workers(0)
        .load(model_path)
        .expect("artifact loads train-free");
    scanner
        .scan_batch(requests)
        .into_iter()
        .map(|o| o.expect("scan succeeds").verdict.malicious_probability)
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("scamdetect-save-load-example");
    std::fs::create_dir_all(&dir)?;

    // ── 1. The training process ─────────────────────────────────────
    let corpus = Corpus::generate(&CorpusConfig {
        size: 200,
        seed: 11,
        ..CorpusConfig::default()
    });

    let mut gnn_options = TrainOptions::default();
    gnn_options.gnn.epochs = 15;

    for (label, kind, options) in [
        (
            "random forest over combined features",
            ModelKind::Classic(ClassicModel::RandomForest, FeatureKind::Combined),
            TrainOptions::default(),
        ),
        (
            "GCN over the unified CFG",
            ModelKind::Gnn(GnnKind::Gcn),
            gnn_options,
        ),
    ] {
        println!("training {label}...");
        let trained = ScannerBuilder::new()
            .model(kind)
            .threshold(0.5)
            .train_options(options)
            .train(&corpus)?;

        let model_path = dir.join(format!("{}.scam", trained.detector().name()));
        trained.save(&model_path)?;
        let artifact = ModelArtifact::load(&model_path)?;
        println!(
            "  saved {:?} -> {} ({} bytes, {} sections)",
            artifact.kind(),
            model_path.display(),
            std::fs::metadata(&model_path)?.len(),
            artifact.sections().count() + 1,
        );

        // ── 2. The serving process: artifact in, verdicts out ───────
        let requests: Vec<ScanRequest> = corpus
            .contracts()
            .iter()
            .take(32)
            .map(|c| ScanRequest::new(&c.bytes))
            .collect();
        let served = serve(&model_path, &requests);

        // ── 3. Bit-for-bit equivalence with the trainer's verdicts ──
        let mut identical = 0;
        for (request, served_p) in requests.iter().zip(&served) {
            let trained_p = trained.scan_request(request)?.verdict.malicious_probability;
            assert_eq!(
                trained_p.to_bits(),
                served_p.to_bits(),
                "loaded scanner must reproduce the trainer's probabilities exactly"
            );
            identical += 1;
        }
        println!("  {identical}/{identical} served verdicts identical to the trainer's\n");
    }

    std::fs::remove_dir_all(&dir).ok();
    println!("train once, serve anywhere: verified.");
    Ok(())
}
