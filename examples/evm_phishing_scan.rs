//! EVM phishing scan: inspect a drainer vs a benign token, end to end.
//!
//! Shows the full analysis surface on two concrete contracts: bytecode,
//! selectors, CFG shape, unified-IR class histogram, and a GNN verdict.
//!
//! ```text
//! cargo run --example evm_phishing_scan --release
//! ```

use rand::SeedableRng;
use scamdetect::{GnnKind, ModelKind, ScannerBuilder, TrainOptions};
use scamdetect_dataset::{generate_evm, Corpus, CorpusConfig, FamilyKind};
use scamdetect_evm::{cfg::build_cfg, selector::extract_selectors};
use scamdetect_ir::{EvmFrontend, Frontend, InstrClass};

fn inspect(name: &str, code: &[u8]) {
    println!("--- {name} ({} bytes) ---", code.len());
    let selectors = extract_selectors(code);
    print!("selectors:");
    for s in &selectors {
        print!(" {s}");
    }
    println!();
    let cfg = build_cfg(code);
    println!(
        "cfg: {} blocks, {} edges, {} resolved / {} unresolved jumps",
        cfg.block_count(),
        cfg.graph().edge_count(),
        cfg.resolved_jump_count(),
        cfg.unresolved_jump_count()
    );
    let unified = EvmFrontend::new().lift(code).expect("lifts");
    let hist = unified.class_histogram();
    print!("top instruction classes:");
    let mut ranked: Vec<(InstrClass, f64)> = InstrClass::all()
        .iter()
        .map(|&c| (c, hist[c.index()]))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for (c, share) in ranked.iter().take(5) {
        print!(" {c}={share:.2}");
    }
    println!("\n");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two concrete contracts from the generators.
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let drainer = generate_evm(FamilyKind::ApprovalDrainer, &mut rng);
    let token = generate_evm(FamilyKind::Erc20Token, &mut rng);
    let drainer_code = drainer.program.assemble()?;
    let token_code = token.program.assemble()?;

    inspect("approval drainer (malicious)", &drainer_code);
    inspect("erc-20 token (benign)", &token_code);

    // Train a GCN and score both.
    println!("training a GCN detector...");
    let corpus = Corpus::generate(&CorpusConfig {
        size: 200,
        seed: 1,
        ..CorpusConfig::default()
    });
    let mut options = TrainOptions::default();
    options.gnn.epochs = 20;
    let scanner = ScannerBuilder::new()
        .model(ModelKind::Gnn(GnnKind::Gcn))
        .train_options(options)
        .train(&corpus)?;

    for (name, code) in [("drainer", &drainer_code), ("token", &token_code)] {
        let verdict = scanner.scan(code)?.verdict;
        println!("{name}: {verdict}");
    }
    Ok(())
}
