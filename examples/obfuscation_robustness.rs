//! Obfuscation robustness study on a single contract.
//!
//! Takes one honeypot vault, applies every obfuscation level, and shows
//! what the static analyzer sees at each step: code growth, CFG blocks,
//! unresolved jumps — and how a histogram detector's score drifts while a
//! GNN's stays put.
//!
//! ```text
//! cargo run --example obfuscation_robustness --release
//! ```

use rand::SeedableRng;
use scamdetect::{ClassicModel, FeatureKind, GnnKind, ModelKind, ScannerBuilder, TrainOptions};
use scamdetect_dataset::{generate_evm, Corpus, CorpusConfig, FamilyKind};
use scamdetect_evm::cfg::build_cfg;
use scamdetect_obfuscate::{obfuscate_evm, ObfuscationLevel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let target = generate_evm(FamilyKind::HoneypotVault, &mut rng);

    // Train both detector styles on a clean corpus.
    println!("training detectors on a clean corpus...");
    let corpus = Corpus::generate(&CorpusConfig {
        size: 200,
        seed: 3,
        ..CorpusConfig::default()
    });
    let histogram_detector = ScannerBuilder::new()
        .model(ModelKind::Classic(
            ClassicModel::RandomForest,
            FeatureKind::OpcodeHistogram,
        ))
        .train(&corpus)?;
    let mut gnn_options = TrainOptions::default();
    gnn_options.gnn.epochs = 20;
    let gnn_detector = ScannerBuilder::new()
        .model(ModelKind::Gnn(GnnKind::Gcn))
        .train_options(gnn_options)
        .train(&corpus)?;

    println!("\nobfuscating a honeypot vault, level by level:");
    println!(
        "{:<6} {:>8} {:>8} {:>12} {:>14} {:>10}",
        "level", "bytes", "blocks", "unresolved", "p(mal) hist", "p(mal) gnn"
    );
    for level in ObfuscationLevel::all() {
        let (obf, report) = obfuscate_evm(&target.program, level, 42);
        let code = obf.assemble()?;
        let cfg = build_cfg(&code);
        // The histogram detector needs the bytes; build a throwaway
        // contract record for its exact featurization.
        let contract = scamdetect_dataset::Contract {
            id: 0,
            bytes: code.clone(),
            platform: scamdetect_ir::Platform::Evm,
            label: scamdetect_dataset::ContractLabel::Malicious,
            family: FamilyKind::HoneypotVault,
            source: scamdetect_dataset::ContractSource::Evm(obf),
        };
        let hist_p = histogram_detector.detector().score_contract(&contract)?;
        let gnn_p = gnn_detector.detector().score_contract(&contract)?;
        println!(
            "L{:<5} {:>8} {:>8} {:>12} {:>14.3} {:>10.3}",
            level.get(),
            report.size_after,
            cfg.block_count(),
            cfg.unresolved_jump_count(),
            hist_p,
            gnn_p
        );
    }
    println!("\n(the histogram score drifts as dead code and substitutions poison");
    println!(" the byte distribution; the CFG model sees through more of it)");
    Ok(())
}
