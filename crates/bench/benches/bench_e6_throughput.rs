//! E6 / Figure 3 — pipeline throughput by stage.
//!
//! Prints the regenerated stage table (quick profile), then measures each
//! pipeline stage with Criterion across bytecode size buckets, and the
//! batch scanning path (skeleton dedup + worker fan-out) over a
//! proxy-duplicated corpus across worker counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scamdetect::experiment::{run_e6_throughput, Profile};
use scamdetect::{ScanRequest, ScannerBuilder};
use scamdetect_bench::print_throughput;
use scamdetect_dataset::{generate_evm, Corpus, CorpusConfig, FamilyKind};
use scamdetect_evm::{cfg::build_cfg, disasm::disassemble};
use scamdetect_ir::{EvmFrontend, Frontend};
use scamdetect_obfuscate::{obfuscate_evm, ObfuscationLevel};
use std::hint::black_box;

fn bench_e6(c: &mut Criterion) {
    let profile = Profile::quick();
    let stages = run_e6_throughput(&profile).expect("E6 runs");
    print_throughput(&stages);

    // Size buckets: a base contract obfuscated to grow it.
    let mut rng = rand::SeedableRng::seed_from_u64(6);
    let base = generate_evm(FamilyKind::Erc20Token, &mut rng);
    let small = base.program.assemble().unwrap();
    let (medium_prog, _) = obfuscate_evm(&base.program, ObfuscationLevel::new(3), 1);
    let medium = medium_prog.assemble().unwrap();
    let (large_prog, _) = obfuscate_evm(&base.program, ObfuscationLevel::new(5), 1);
    let large = large_prog.assemble().unwrap();

    let mut group = c.benchmark_group("e6_throughput");
    group.sample_size(30);
    for (name, code) in [("small", &small), ("medium", &medium), ("large", &large)] {
        group.throughput(Throughput::Bytes(code.len() as u64));
        group.bench_with_input(BenchmarkId::new("disassemble", name), code, |b, code| {
            b.iter(|| black_box(disassemble(code)))
        });
        group.bench_with_input(BenchmarkId::new("build_cfg", name), code, |b, code| {
            b.iter(|| black_box(build_cfg(code)))
        });
        group.bench_with_input(BenchmarkId::new("lift_unified", name), code, |b, code| {
            let fe = EvmFrontend::new();
            b.iter(|| black_box(fe.lift(code).unwrap()))
        });
    }
    group.finish();

    // The batch path: a duplicate-heavy corpus (every fourth contract an
    // ERC-1167 clone) scanned as one batch, across worker counts. The
    // dedup cache is cleared per iteration so each measurement pays the
    // full cold-cache cost.
    let corpus = Corpus::generate(&CorpusConfig {
        size: 120,
        seed: 6,
        proxy_duplicates: 30,
        ..CorpusConfig::default()
    });
    let requests: Vec<ScanRequest> = corpus
        .contracts()
        .iter()
        .map(|c| ScanRequest::new(&c.bytes))
        .collect();
    let total_bytes: u64 = corpus
        .contracts()
        .iter()
        .map(|c| c.bytes.len() as u64)
        .sum();

    let mut group = c.benchmark_group("e6_scan_batch");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(total_bytes));
    for workers in [1usize, 2, 4, 0] {
        let scanner = ScannerBuilder::new()
            .workers(workers)
            .train(&corpus)
            .expect("scanner trains");
        let label = if workers == 0 {
            "auto".to_string()
        } else {
            workers.to_string()
        };
        group.bench_with_input(
            BenchmarkId::new("workers", label),
            &requests,
            |b, requests| {
                b.iter(|| {
                    scanner.clear_cache();
                    for outcome in scanner.scan_batch(requests) {
                        black_box(outcome.expect("batch scan succeeds"));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e6);
criterion_main!(benches);
