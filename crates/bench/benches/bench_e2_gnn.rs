//! E2 / Table 2 — GNN architecture comparison over CFGs.
//!
//! Prints the regenerated table (quick profile), then benchmarks one
//! training epoch and one inference pass per architecture, a
//! dense-vs-sparse (CSR) comparison of forward and one-epoch throughput
//! across synthetic CFG sizes, and the block-diagonal batched epoch
//! against the per-graph unbatched baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use scamdetect::experiment::{run_e2_gnns, Profile};
use scamdetect::featurize::prepare_graphs;
use scamdetect_bench::print_eval_table;
use scamdetect_dataset::{Corpus, CorpusConfig};
use scamdetect_gnn::{
    synthetic_sparse_graph, train, train_batched, train_dense, train_unbatched, BatchTrainConfig,
    GnnClassifier, GnnConfig, GnnKind, PreparedGraph, TrainConfig,
};
use scamdetect_ir::features::NODE_FEATURE_DIM;
use std::hint::black_box;

/// Dense-vs-sparse forward and one-epoch throughput across graph sizes.
///
/// Graphs come from [`synthetic_sparse_graph`]: chains with shortcut/back
/// edges at average out-degree ≈ 2 — the density regime real contract CFGs
/// live in.
fn bench_sparse_vs_dense(c: &mut Criterion) {
    let dim = 8;
    let mut group = c.benchmark_group("e2_sparse_vs_dense");
    group.sample_size(10);
    for n in [16usize, 64, 256, 1024] {
        let g = synthetic_sparse_graph(n, 0, dim, n as u64);
        let d = g.to_dense();
        let data = vec![g.clone()];
        let dense_data = vec![d.clone()];
        for kind in [GnnKind::Gcn, GnnKind::Gat] {
            let model = GnnClassifier::new(GnnConfig::new(kind, dim).with_seed(3));
            group.bench_function(format!("{kind}_forward_sparse_n{n}"), |b| {
                b.iter(|| black_box(model.score(&g)))
            });
            group.bench_function(format!("{kind}_forward_dense_n{n}"), |b| {
                b.iter(|| black_box(model.score_dense(&d)))
            });
            let cfg = TrainConfig {
                epochs: 1,
                loss_target: 0.0,
                ..TrainConfig::default()
            };
            group.bench_function(format!("{kind}_epoch_sparse_n{n}"), |b| {
                b.iter(|| {
                    let mut m = GnnClassifier::new(GnnConfig::new(kind, dim).with_seed(3));
                    black_box(train_unbatched(&mut m, &data, &cfg))
                })
            });
            group.bench_function(format!("{kind}_epoch_dense_n{n}"), |b| {
                b.iter(|| {
                    let mut m = GnnClassifier::new(GnnConfig::new(kind, dim).with_seed(3));
                    black_box(train_dense(&mut m, &dense_data, &cfg))
                })
            });
        }
    }
    group.finish();
}

/// Block-diagonal batched epoch vs the per-graph unbatched baseline: the
/// same 32-graph dataset, the same hyperparameters (batch size 8), one
/// epoch each. The batched path packs each gradient step into one
/// `GraphBatch` and runs one tape forward/backward for the whole batch.
fn bench_batched_vs_unbatched(c: &mut Criterion) {
    let dim = 8;
    let graphs_per_set = 32;
    let mut group = c.benchmark_group("e2_batched_vs_unbatched");
    group.sample_size(10);
    for n in [16usize, 64, 256] {
        let data: Vec<PreparedGraph> = (0..graphs_per_set)
            .map(|i| synthetic_sparse_graph(n, 0, dim, (n + i) as u64))
            .collect();
        let batched_cfg = BatchTrainConfig {
            epochs: 1,
            batch_size: 8,
            loss_target: 0.0,
            ..BatchTrainConfig::default()
        };
        let unbatched_cfg = batched_cfg.unbatched();
        for kind in [GnnKind::Gcn, GnnKind::Gat] {
            group.bench_function(format!("{kind}_epoch_batched_n{n}"), |b| {
                b.iter(|| {
                    let mut m = GnnClassifier::new(GnnConfig::new(kind, dim).with_seed(3));
                    black_box(train_batched(&mut m, &data, &batched_cfg))
                })
            });
            group.bench_function(format!("{kind}_epoch_unbatched_n{n}"), |b| {
                b.iter(|| {
                    let mut m = GnnClassifier::new(GnnConfig::new(kind, dim).with_seed(3));
                    black_box(train_unbatched(&mut m, &data, &unbatched_cfg))
                })
            });
            // Bucketed variant: batches packed once, shuffled by batch.
            let bucketed_cfg = BatchTrainConfig {
                bucket_by_size: true,
                ..batched_cfg.clone()
            };
            group.bench_function(format!("{kind}_epoch_bucketed_n{n}"), |b| {
                b.iter(|| {
                    let mut m = GnnClassifier::new(GnnConfig::new(kind, dim).with_seed(3));
                    black_box(train_batched(&mut m, &data, &bucketed_cfg))
                })
            });
        }
    }
    group.finish();
}

fn bench_e2(c: &mut Criterion) {
    let profile = Profile::quick();
    let rows = run_e2_gnns(&profile).expect("E2 runs");
    print_eval_table("Table 2 (quick profile): GNN architectures", &rows);

    let corpus = Corpus::generate(&CorpusConfig {
        size: 30,
        seed: 2,
        ..CorpusConfig::default()
    });
    let idx: Vec<usize> = (0..corpus.len()).collect();
    let graphs = prepare_graphs(&corpus, &idx).unwrap();

    let mut group = c.benchmark_group("e2_gnn");
    group.sample_size(10);
    for kind in GnnKind::all() {
        group.bench_function(format!("{kind}_one_epoch"), |b| {
            b.iter(|| {
                let mut model =
                    GnnClassifier::new(GnnConfig::new(kind, NODE_FEATURE_DIM).with_seed(3));
                let cfg = BatchTrainConfig {
                    epochs: 1,
                    ..BatchTrainConfig::default()
                };
                black_box(train(&mut model, &graphs, &cfg))
            })
        });
        let model = GnnClassifier::new(GnnConfig::new(kind, NODE_FEATURE_DIM).with_seed(3));
        group.bench_function(format!("{kind}_inference"), |b| {
            b.iter(|| {
                for g in &graphs {
                    black_box(model.score(g));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_e2,
    bench_sparse_vs_dense,
    bench_batched_vs_unbatched
);
criterion_main!(benches);
