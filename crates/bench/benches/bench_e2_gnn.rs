//! E2 / Table 2 — GNN architecture comparison over CFGs.
//!
//! Prints the regenerated table (quick profile), then benchmarks one
//! training epoch and one inference pass per architecture.

use criterion::{criterion_group, criterion_main, Criterion};
use scamdetect::experiment::{run_e2_gnns, Profile};
use scamdetect::featurize::prepare_graphs;
use scamdetect_bench::print_eval_table;
use scamdetect_dataset::{Corpus, CorpusConfig};
use scamdetect_gnn::{train, GnnClassifier, GnnConfig, GnnKind, TrainConfig};
use scamdetect_ir::features::NODE_FEATURE_DIM;
use std::hint::black_box;

fn bench_e2(c: &mut Criterion) {
    let profile = Profile::quick();
    let rows = run_e2_gnns(&profile).expect("E2 runs");
    print_eval_table("Table 2 (quick profile): GNN architectures", &rows);

    let corpus = Corpus::generate(&CorpusConfig {
        size: 30,
        seed: 2,
        ..CorpusConfig::default()
    });
    let idx: Vec<usize> = (0..corpus.len()).collect();
    let graphs = prepare_graphs(&corpus, &idx).unwrap();

    let mut group = c.benchmark_group("e2_gnn");
    group.sample_size(10);
    for kind in GnnKind::all() {
        group.bench_function(format!("{kind}_one_epoch"), |b| {
            b.iter(|| {
                let mut model =
                    GnnClassifier::new(GnnConfig::new(kind, NODE_FEATURE_DIM).with_seed(3));
                let cfg = TrainConfig {
                    epochs: 1,
                    ..TrainConfig::default()
                };
                black_box(train(&mut model, &graphs, &cfg))
            })
        });
        let model = GnnClassifier::new(GnnConfig::new(kind, NODE_FEATURE_DIM).with_seed(3));
        group.bench_function(format!("{kind}_inference"), |b| {
            b.iter(|| {
                for g in &graphs {
                    black_box(model.score(g));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e2);
criterion_main!(benches);
