//! E2 / Table 2 — GNN architecture comparison over CFGs.
//!
//! Prints the regenerated table (quick profile), then benchmarks one
//! training epoch and one inference pass per architecture, and finally a
//! dense-vs-sparse (CSR) comparison of forward and one-epoch throughput
//! across synthetic CFG sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use scamdetect::experiment::{run_e2_gnns, Profile};
use scamdetect::featurize::prepare_graphs;
use scamdetect_bench::print_eval_table;
use scamdetect_dataset::{Corpus, CorpusConfig};
use scamdetect_gnn::{
    synthetic_sparse_graph, train, train_dense, GnnClassifier, GnnConfig, GnnKind, TrainConfig,
};
use scamdetect_ir::features::NODE_FEATURE_DIM;
use std::hint::black_box;

/// Dense-vs-sparse forward and one-epoch throughput across graph sizes.
///
/// Graphs come from [`synthetic_sparse_graph`]: chains with shortcut/back
/// edges at average out-degree ≈ 2 — the density regime real contract CFGs
/// live in.
fn bench_sparse_vs_dense(c: &mut Criterion) {
    let dim = 8;
    let mut group = c.benchmark_group("e2_sparse_vs_dense");
    group.sample_size(10);
    for n in [16usize, 64, 256, 1024] {
        let g = synthetic_sparse_graph(n, 0, dim, n as u64);
        let d = g.to_dense();
        let data = vec![g.clone()];
        let dense_data = vec![d.clone()];
        for kind in [GnnKind::Gcn, GnnKind::Gat] {
            let model = GnnClassifier::new(GnnConfig::new(kind, dim).with_seed(3));
            group.bench_function(format!("{kind}_forward_sparse_n{n}"), |b| {
                b.iter(|| black_box(model.score(&g)))
            });
            group.bench_function(format!("{kind}_forward_dense_n{n}"), |b| {
                b.iter(|| black_box(model.score_dense(&d)))
            });
            let cfg = TrainConfig {
                epochs: 1,
                loss_target: 0.0,
                ..TrainConfig::default()
            };
            group.bench_function(format!("{kind}_epoch_sparse_n{n}"), |b| {
                b.iter(|| {
                    let mut m = GnnClassifier::new(GnnConfig::new(kind, dim).with_seed(3));
                    black_box(train(&mut m, &data, &cfg))
                })
            });
            group.bench_function(format!("{kind}_epoch_dense_n{n}"), |b| {
                b.iter(|| {
                    let mut m = GnnClassifier::new(GnnConfig::new(kind, dim).with_seed(3));
                    black_box(train_dense(&mut m, &dense_data, &cfg))
                })
            });
        }
    }
    group.finish();
}

fn bench_e2(c: &mut Criterion) {
    let profile = Profile::quick();
    let rows = run_e2_gnns(&profile).expect("E2 runs");
    print_eval_table("Table 2 (quick profile): GNN architectures", &rows);

    let corpus = Corpus::generate(&CorpusConfig {
        size: 30,
        seed: 2,
        ..CorpusConfig::default()
    });
    let idx: Vec<usize> = (0..corpus.len()).collect();
    let graphs = prepare_graphs(&corpus, &idx).unwrap();

    let mut group = c.benchmark_group("e2_gnn");
    group.sample_size(10);
    for kind in GnnKind::all() {
        group.bench_function(format!("{kind}_one_epoch"), |b| {
            b.iter(|| {
                let mut model =
                    GnnClassifier::new(GnnConfig::new(kind, NODE_FEATURE_DIM).with_seed(3));
                let cfg = TrainConfig {
                    epochs: 1,
                    ..TrainConfig::default()
                };
                black_box(train(&mut model, &graphs, &cfg))
            })
        });
        let model = GnnClassifier::new(GnnConfig::new(kind, NODE_FEATURE_DIM).with_seed(3));
        group.bench_function(format!("{kind}_inference"), |b| {
            b.iter(|| {
                for g in &graphs {
                    black_box(model.score(g));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e2, bench_sparse_vs_dense);
criterion_main!(benches);
