//! E3 / Figure 1 — accuracy vs obfuscation level.
//!
//! Prints the regenerated sweep (quick profile), then benchmarks the
//! obfuscation pipeline itself at each level.

use criterion::{criterion_group, criterion_main, Criterion};
use scamdetect::experiment::{run_e3_robustness, Profile};
use scamdetect_bench::print_robustness;
use scamdetect_dataset::{generate_evm, FamilyKind};
use scamdetect_obfuscate::{obfuscate_evm, ObfuscationLevel};
use std::hint::black_box;

fn bench_e3(c: &mut Criterion) {
    let profile = Profile::quick();
    let pts = run_e3_robustness(&profile).expect("E3 runs");
    print_robustness(&pts);

    let mut rng = rand::SeedableRng::seed_from_u64(5);
    let sample = generate_evm(FamilyKind::Erc20Token, &mut rng);

    let mut group = c.benchmark_group("e3_robustness");
    group.sample_size(20);
    for level in [
        ObfuscationLevel::new(1),
        ObfuscationLevel::new(3),
        ObfuscationLevel::new(5),
    ] {
        group.bench_function(format!("obfuscate_{level}"), |b| {
            b.iter(|| {
                let (obf, _) = obfuscate_evm(&sample.program, level, 9);
                black_box(obf.assemble().unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e3);
criterion_main!(benches);
