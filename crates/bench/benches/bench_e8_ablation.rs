//! E8 / Table 5 — design ablations.
//!
//! Prints the regenerated ablation table (quick profile), then benchmarks
//! the feature extraction variants the ablation compares.

use criterion::{criterion_group, criterion_main, Criterion};
use scamdetect::experiment::{run_e8_ablation, Profile};
use scamdetect::featurize::{featurize, FeatureKind};
use scamdetect_bench::print_ablation;
use scamdetect_dataset::{Corpus, CorpusConfig};
use std::hint::black_box;

fn bench_e8(c: &mut Criterion) {
    let profile = Profile::quick();
    let rows = run_e8_ablation(&profile).expect("E8 runs");
    print_ablation(&rows);

    let corpus = Corpus::generate(&CorpusConfig {
        size: 30,
        seed: 8,
        ..CorpusConfig::default()
    });

    let mut group = c.benchmark_group("e8_ablation");
    group.sample_size(20);
    for kind in [
        FeatureKind::OpcodeHistogram,
        FeatureKind::Unified,
        FeatureKind::Combined,
    ] {
        group.bench_function(format!("featurize_{}", kind.name()), |b| {
            b.iter(|| {
                for contract in corpus.contracts() {
                    black_box(featurize(contract, kind).unwrap());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e8);
criterion_main!(benches);
