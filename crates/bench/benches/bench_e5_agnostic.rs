//! E5 / Table 3 — platform transfer via the unified IR.
//!
//! Prints the regenerated transfer matrix (quick profile), then benchmarks
//! the two frontends' lift stage — the component that makes agnosticism
//! possible.

use criterion::{criterion_group, criterion_main, Criterion};
use scamdetect::experiment::{run_e5_agnostic, Profile};
use scamdetect_bench::print_transfer;
use scamdetect_dataset::{Corpus, CorpusConfig};
use scamdetect_ir::{EvmFrontend, Frontend, Platform, WasmFrontend};
use std::hint::black_box;

fn bench_e5(c: &mut Criterion) {
    let profile = Profile::quick();
    let cells = run_e5_agnostic(&profile).expect("E5 runs");
    print_transfer(&cells);

    let evm = Corpus::generate(&CorpusConfig {
        size: 20,
        seed: 4,
        ..CorpusConfig::default()
    });
    let wasm = Corpus::generate(&CorpusConfig {
        size: 20,
        platform: Platform::Wasm,
        seed: 4,
        ..CorpusConfig::default()
    });

    let mut group = c.benchmark_group("e5_agnostic");
    group.sample_size(20);
    group.bench_function("evm_lift", |b| {
        let fe = EvmFrontend::new();
        b.iter(|| {
            for contract in evm.contracts() {
                black_box(fe.lift(&contract.bytes).unwrap());
            }
        })
    });
    group.bench_function("wasm_lift", |b| {
        let fe = WasmFrontend::new();
        b.iter(|| {
            for contract in wasm.contracts() {
                black_box(fe.lift(&contract.bytes).unwrap());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_e5);
criterion_main!(benches);
