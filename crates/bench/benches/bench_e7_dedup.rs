//! E7 / Table 4 — dataset curation (ERC-1167 dedup).
//!
//! Prints the regenerated exhibit (quick profile), then benchmarks corpus
//! generation, proxy detection and full dedup.

use criterion::{criterion_group, criterion_main, Criterion};
use scamdetect::experiment::{run_e7_dedup, Profile};
use scamdetect_bench::print_dedup;
use scamdetect_dataset::{Corpus, CorpusConfig};
use scamdetect_evm::proxy::{detect_proxy, make_erc1167, skeleton_hash};
use std::hint::black_box;

fn bench_e7(c: &mut Criterion) {
    let profile = Profile::quick();
    let ex = run_e7_dedup(&profile);
    print_dedup(&ex);

    let corpus = Corpus::generate(&CorpusConfig {
        size: 60,
        proxy_duplicates: 20,
        seed: 7,
        ..CorpusConfig::default()
    });
    let proxy = make_erc1167(&[0x42; 20]);

    let mut group = c.benchmark_group("e7_dedup");
    group.sample_size(20);
    group.bench_function("detect_proxy", |b| {
        b.iter(|| black_box(detect_proxy(&proxy)))
    });
    group.bench_function("skeleton_hash", |b| {
        b.iter(|| {
            for contract in corpus.contracts() {
                black_box(skeleton_hash(&contract.bytes));
            }
        })
    });
    group.bench_function("full_dedup", |b| b.iter(|| black_box(corpus.dedup())));
    group.bench_function("corpus_generation_60", |b| {
        b.iter(|| {
            black_box(Corpus::generate(&CorpusConfig {
                size: 60,
                seed: 8,
                ..CorpusConfig::default()
            }))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_e7);
criterion_main!(benches);
