//! E1 / Table 1 — the classic model zoo on the clean EVM corpus.
//!
//! Prints the regenerated table once, then benchmarks the exhibit's
//! kernel: featurize + fit + evaluate for a representative fast model
//! (random forest) and for logistic regression.

use criterion::{criterion_group, criterion_main, Criterion};
use scamdetect::experiment::{run_e1_baselines, Profile};
use scamdetect::featurize::{featurize_corpus, FeatureKind};
use scamdetect::ClassicModel;
use scamdetect_bench::print_eval_table;
use scamdetect_dataset::{Corpus, CorpusConfig};
use scamdetect_ml::fit_evaluate;
use std::hint::black_box;

fn bench_e1(c: &mut Criterion) {
    let profile = Profile::quick();
    let rows = run_e1_baselines(&profile).expect("E1 runs");
    print_eval_table("Table 1 (quick profile): classic model zoo", &rows);

    let corpus = Corpus::generate(&CorpusConfig {
        size: 60,
        seed: 1,
        ..CorpusConfig::default()
    });
    let (train_idx, test_idx) = corpus.split(0.3, 1);
    let train = featurize_corpus(&corpus, &train_idx, FeatureKind::OpcodeHistogram).unwrap();
    let test = featurize_corpus(&corpus, &test_idx, FeatureKind::OpcodeHistogram).unwrap();

    let mut group = c.benchmark_group("e1_baselines");
    group.sample_size(10);
    group.bench_function("random_forest_fit_eval", |b| {
        b.iter(|| {
            let mut model = ClassicModel::RandomForest.instantiate(7);
            black_box(fit_evaluate(model.as_mut(), &train, &test))
        })
    });
    group.bench_function("logreg_fit_eval", |b| {
        b.iter(|| {
            let mut model = ClassicModel::LogisticRegression.instantiate(7);
            black_box(fit_evaluate(model.as_mut(), &train, &test))
        })
    });
    group.bench_function("featurize_opcode_histogram", |b| {
        b.iter(|| {
            black_box(featurize_corpus(&corpus, &train_idx, FeatureKind::OpcodeHistogram).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_e1);
criterion_main!(benches);
