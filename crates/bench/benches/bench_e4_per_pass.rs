//! E4 / Figure 2 — per-pass robustness breakdown.
//!
//! Prints the regenerated breakdown (quick profile), then benchmarks each
//! individual EVM obfuscation pass at full intensity.

use criterion::{criterion_group, criterion_main, Criterion};
use scamdetect::experiment::{run_e4_per_pass, Profile};
use scamdetect_bench::print_per_pass;
use scamdetect_dataset::{generate_evm, FamilyKind};
use scamdetect_obfuscate::{apply_evm_pass, EvmPassKind};
use std::hint::black_box;

fn bench_e4(c: &mut Criterion) {
    let profile = Profile::quick();
    let rows = run_e4_per_pass(&profile).expect("E4 runs");
    print_per_pass(&rows);

    let mut rng = rand::SeedableRng::seed_from_u64(11);
    let sample = generate_evm(FamilyKind::Vault, &mut rng);

    let mut group = c.benchmark_group("e4_per_pass");
    group.sample_size(20);
    for pass in EvmPassKind::all() {
        group.bench_function(pass.name(), |b| {
            b.iter(|| {
                let mut prng = rand::SeedableRng::seed_from_u64(3);
                let out = apply_evm_pass(pass, &sample.program, &mut prng, 1.0);
                black_box(out.assemble().unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e4);
criterion_main!(benches);
