//! Regenerates every evaluation table and figure.
//!
//! Usage:
//!
//! ```text
//! cargo run -p scamdetect-bench --release --bin experiments [quick|full] [e1..e8]*
//! ```
//!
//! With no experiment arguments, all eight run in order. The `quick`
//! profile (default for debug builds) uses a small corpus; `full` (default
//! for release builds) matches the numbers recorded in EXPERIMENTS.md.

use scamdetect::experiment::{
    run_e1_baselines, run_e2_gnns, run_e3_robustness, run_e4_per_pass, run_e5_agnostic,
    run_e6_throughput, run_e7_dedup, run_e8_ablation, Profile,
};
use scamdetect_bench::{
    print_ablation, print_dedup, print_eval_table, print_per_pass, print_robustness,
    print_throughput, print_transfer,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut profile = if cfg!(debug_assertions) {
        Profile::quick()
    } else {
        Profile::full()
    };
    let mut selected: Vec<String> = Vec::new();
    for a in &args {
        match a.as_str() {
            "quick" => profile = Profile::quick(),
            "full" => profile = Profile::full(),
            e if e.starts_with('e') || e.starts_with('E') => {
                selected.push(e.to_lowercase());
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let run_all = selected.is_empty();
    let want = |name: &str| run_all || selected.iter().any(|s| s == name);

    println!(
        "ScamDetect experiment harness (corpus = {} contracts, gnn epochs = {})",
        profile.corpus_size, profile.gnn.epochs
    );

    if want("e1") {
        let rows = run_e1_baselines(&profile).expect("E1");
        print_eval_table(
            "Table 1: classic model zoo, clean EVM corpus (opcode histograms)",
            &rows,
        );
    }
    if want("e2") {
        let rows = run_e2_gnns(&profile).expect("E2");
        print_eval_table(
            "Table 2: GNN architectures over CFGs, clean EVM corpus",
            &rows,
        );
    }
    if want("e3") {
        let pts = run_e3_robustness(&profile).expect("E3");
        print_robustness(&pts);
    }
    if want("e4") {
        let rows = run_e4_per_pass(&profile).expect("E4");
        print_per_pass(&rows);
    }
    if want("e5") {
        let cells = run_e5_agnostic(&profile).expect("E5");
        print_transfer(&cells);
    }
    if want("e6") {
        let stages = run_e6_throughput(&profile).expect("E6");
        print_throughput(&stages);
    }
    if want("e7") {
        let ex = run_e7_dedup(&profile);
        print_dedup(&ex);
    }
    if want("e8") {
        let rows = run_e8_ablation(&profile).expect("E8");
        print_ablation(&rows);
    }
    println!("\ndone.");
}
