//! CI bench-smoke: a fast, JSON-emitting subset of the benchmark suite
//! with a regression gate on batched GNN training.
//!
//! ```text
//! cargo run --release -p scamdetect-bench --bin bench_smoke [-- --out BENCH_PR3.json]
//! ```
//!
//! Measures two things in well under a minute:
//!
//! * **E2 batched-vs-unbatched** — one training epoch over 32 synthetic
//!   CFG-shaped graphs at n ∈ {16, 64}, batch size 8, for GCN and GAT:
//!   the block-diagonal [`train_batched`] path against the per-graph
//!   [`train_unbatched`] baseline (best-of-5 to damp CI noise).
//! * **E6 throughput** — the batch scanning path (skeleton dedup + worker
//!   fan-out) over a proxy-duplicated corpus, in contracts per second.
//!
//! Results are written as JSON (default `BENCH_PR3.json`; CI uploads the
//! file as a workflow artifact). The process exits nonzero when the gate
//! fails: a batched epoch slower than its unbatched baseline at any
//! measured size is a regression of exactly the path this suite exists to
//! protect.
//!
//! [`train_batched`]: scamdetect_gnn::train_batched
//! [`train_unbatched`]: scamdetect_gnn::train_unbatched

use scamdetect::{ScanRequest, ScannerBuilder};
use scamdetect_dataset::{Corpus, CorpusConfig};
use scamdetect_gnn::{
    synthetic_sparse_graph, train_batched, train_unbatched, BatchTrainConfig, GnnClassifier,
    GnnConfig, GnnKind, PreparedGraph,
};
use std::fmt::Write as _;
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

/// Repetitions per measurement; the minimum is reported.
const REPS: usize = 5;
/// Graphs per synthetic training set.
const GRAPHS: usize = 32;
/// Graphs per gradient step in the batched configuration.
const BATCH_SIZE: usize = 8;

/// One E2 comparison cell.
struct EpochCell {
    arch: GnnKind,
    n: usize,
    unbatched_us: f64,
    batched_us: f64,
}

impl EpochCell {
    fn speedup(&self) -> f64 {
        self.unbatched_us / self.batched_us.max(1e-9)
    }

    /// Gate floor for this cell: the batched epoch must stay above this
    /// fraction of the unbatched baseline's speed. The floor sits well
    /// below the speedup recorded at PR time (~1.3x at n=16, ~1.07x at
    /// n=64 on one core) so shared-runner jitter — ~10-20% even on
    /// best-of-5 minima — cannot fail an innocent change, while a change
    /// that makes the batched path materially slower than the per-graph
    /// baseline still trips it.
    fn gate_floor(&self) -> f64 {
        if self.n <= 16 {
            0.9
        } else {
            0.8
        }
    }

    fn passes_gate(&self) -> bool {
        self.speedup() >= self.gate_floor()
    }
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e6);
    }
    best
}

fn measure_epochs() -> Vec<EpochCell> {
    let dim = 8;
    let mut cells = Vec::new();
    for n in [16usize, 64] {
        let data: Vec<PreparedGraph> = (0..GRAPHS)
            .map(|i| synthetic_sparse_graph(n, 0, dim, (n + i) as u64))
            .collect();
        let batched_cfg = BatchTrainConfig {
            epochs: 1,
            batch_size: BATCH_SIZE,
            loss_target: 0.0,
            ..BatchTrainConfig::default()
        };
        let unbatched_cfg = batched_cfg.unbatched();
        for arch in [GnnKind::Gcn, GnnKind::Gat] {
            let batched_us = best_of(REPS, || {
                let mut m = GnnClassifier::new(GnnConfig::new(arch, dim).with_seed(3));
                train_batched(&mut m, &data, &batched_cfg)
            });
            let unbatched_us = best_of(REPS, || {
                let mut m = GnnClassifier::new(GnnConfig::new(arch, dim).with_seed(3));
                train_unbatched(&mut m, &data, &unbatched_cfg)
            });
            cells.push(EpochCell {
                arch,
                n,
                unbatched_us,
                batched_us,
            });
        }
    }
    cells
}

/// E6 batch-scan throughput over a duplicate-heavy corpus.
struct Throughput {
    contracts: usize,
    total_bytes: usize,
    elapsed_us: f64,
}

impl Throughput {
    fn contracts_per_sec(&self) -> f64 {
        self.contracts as f64 / (self.elapsed_us / 1e6).max(1e-9)
    }
}

fn measure_throughput() -> Throughput {
    let corpus = Corpus::generate(&CorpusConfig {
        size: 120,
        seed: 6,
        proxy_duplicates: 30,
        ..CorpusConfig::default()
    });
    let scanner = ScannerBuilder::new()
        .train(&corpus)
        .expect("scanner trains");
    let requests: Vec<ScanRequest> = corpus
        .contracts()
        .iter()
        .map(|c| ScanRequest::new(&c.bytes))
        .collect();
    let elapsed_us = best_of(3, || {
        scanner.clear_cache();
        for outcome in scanner.scan_batch(&requests) {
            black_box(outcome.expect("batch scan succeeds"));
        }
    });
    Throughput {
        contracts: requests.len(),
        total_bytes: corpus.contracts().iter().map(|c| c.bytes.len()).sum(),
        elapsed_us,
    }
}

fn render_json(cells: &[EpochCell], tp: &Throughput, gate_pass: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"scamdetect-bench-smoke/v1\",\n");
    out.push_str("  \"e2_batched_vs_unbatched\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"arch\": \"{}\", \"n\": {}, \"graphs\": {GRAPHS}, \"batch_size\": {BATCH_SIZE}, \
             \"unbatched_epoch_us\": {:.1}, \"batched_epoch_us\": {:.1}, \"speedup\": {:.2}, \
             \"gate_floor\": {:.2}}}{}",
            c.arch,
            c.n,
            c.unbatched_us,
            c.batched_us,
            c.speedup(),
            c.gate_floor(),
            if i + 1 < cells.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"e6_scan_batch\": {{\"contracts\": {}, \"total_bytes\": {}, \"elapsed_us\": {:.1}, \
         \"contracts_per_sec\": {:.0}}},",
        tp.contracts,
        tp.total_bytes,
        tp.elapsed_us,
        tp.contracts_per_sec()
    );
    let _ = writeln!(
        out,
        "  \"gate\": {{\"pass\": {gate_pass}, \"rule\": \"batched epoch must not regress past \
         the unbatched baseline at any measured size, beyond each cell's noise-floor \
         gate_floor\"}}"
    );
    out.push_str("}\n");
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_PR3.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out_path = p.clone(),
                    None => {
                        eprintln!("--out needs a path");
                        return ExitCode::from(2);
                    }
                }
            }
            other => {
                eprintln!("unknown option '{other}' (usage: bench_smoke [--out <path>])");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    eprintln!("bench-smoke: E2 batched-vs-unbatched epochs ({GRAPHS} graphs, batch {BATCH_SIZE})");
    let cells = measure_epochs();
    for c in &cells {
        eprintln!(
            "  {}  n={:<4} unbatched {:>9.1}us  batched {:>9.1}us  ({:.2}x)",
            c.arch,
            c.n,
            c.unbatched_us,
            c.batched_us,
            c.speedup()
        );
    }
    eprintln!("bench-smoke: E6 batch-scan throughput");
    let tp = measure_throughput();
    eprintln!(
        "  {} contracts in {:.1}ms ({:.0} contracts/s)",
        tp.contracts,
        tp.elapsed_us / 1e3,
        tp.contracts_per_sec()
    );

    let regressions: Vec<&EpochCell> = cells.iter().filter(|c| !c.passes_gate()).collect();
    let gate_pass = regressions.is_empty();
    let json = render_json(&cells, &tp, gate_pass);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("bench-smoke: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("bench-smoke: wrote {out_path}");

    if !gate_pass {
        for c in &regressions {
            eprintln!(
                "bench-smoke: REGRESSION {} n={}: batched epoch {:.1}us vs unbatched {:.1}us \
                 ({:.2}x, floor {:.2}x)",
                c.arch,
                c.n,
                c.batched_us,
                c.unbatched_us,
                c.speedup(),
                c.gate_floor()
            );
        }
        return ExitCode::FAILURE;
    }
    eprintln!("bench-smoke: gate passed");
    ExitCode::SUCCESS
}
