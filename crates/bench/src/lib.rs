//! Shared table-printing helpers for the benchmark harness.
//!
//! The `experiments` binary (`cargo run -p scamdetect-bench --release --bin
//! experiments`) regenerates every evaluation exhibit; the Criterion
//! benches in `benches/` each print their exhibit once (quick profile) and
//! then measure the exhibit's computational kernel.

use scamdetect::experiment::{
    AblationRow, DedupExhibit, PassImpact, RobustnessPoint, StageTiming, TransferCell,
};
use scamdetect_ml::EvalRow;

/// Renders E1/E2-style model tables.
pub fn print_eval_table(title: &str, rows: &[EvalRow]) {
    println!("\n=== {title} ===");
    println!(
        "{:<26} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "model", "acc", "prec", "rec", "f1", "auc"
    );
    for r in rows {
        println!(
            "{:<26} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            r.model, r.accuracy, r.precision, r.recall, r.f1, r.auc
        );
    }
    if let Some(best) = rows.iter().max_by(|a, b| {
        a.accuracy
            .partial_cmp(&b.accuracy)
            .expect("accuracies are finite")
    }) {
        println!("best: {} at {:.3}", best.model, best.accuracy);
    }
}

/// Renders the E3 robustness sweep.
pub fn print_robustness(points: &[RobustnessPoint]) {
    println!("\n=== Figure 1: accuracy vs obfuscation level ===");
    println!("{:<8} {:>16} {:>12}", "level", "baseline(rf)", "gnn(gcn)");
    for p in points {
        println!(
            "L{:<7} {:>16.3} {:>12.3}",
            p.level, p.baseline_accuracy, p.gnn_accuracy
        );
    }
}

/// Renders the E4 per-pass breakdown.
pub fn print_per_pass(rows: &[PassImpact]) {
    println!("\n=== Figure 2: per-pass robustness ===");
    println!("{:<24} {:>16} {:>12}", "pass", "baseline(rf)", "gnn(gcn)");
    for r in rows {
        println!(
            "{:<24} {:>16.3} {:>12.3}",
            r.pass, r.baseline_accuracy, r.gnn_accuracy
        );
    }
}

/// Renders the E5 transfer matrix.
pub fn print_transfer(cells: &[TransferCell]) {
    println!("\n=== Table 3: platform transfer (unified IR) ===");
    println!(
        "{:<10} {:<10} {:>16} {:>12}",
        "train", "test", "classic(rf)", "gnn(gcn)"
    );
    for c in cells {
        println!(
            "{:<10} {:<10} {:>16.3} {:>12.3}",
            c.train, c.test, c.classic_accuracy, c.gnn_accuracy
        );
    }
}

/// Renders the E6 stage timings.
pub fn print_throughput(stages: &[StageTiming]) {
    println!("\n=== Figure 3: pipeline throughput ===");
    println!(
        "{:<20} {:>12} {:>16} {:>12}",
        "stage", "mean us", "contracts/s", "mean bytes"
    );
    for s in stages {
        println!(
            "{:<20} {:>12.1} {:>16.0} {:>12.0}",
            s.stage, s.mean_us, s.contracts_per_sec, s.mean_bytes
        );
    }
}

/// Renders the E7 dedup exhibit.
pub fn print_dedup(ex: &DedupExhibit) {
    println!("\n=== Table 4: dataset curation (ERC-1167 dedup) ===");
    println!(
        "before: {} contracts ({} malicious / {} benign), mean size {:.0} B",
        ex.before.total, ex.before.malicious, ex.before.benign, ex.before.mean_size
    );
    println!(
        "removed: {} minimal proxies, {} skeleton duplicates",
        ex.report.proxies_removed, ex.report.skeleton_duplicates_removed
    );
    println!(
        "after: {} contracts ({} malicious / {} benign)",
        ex.after.total, ex.after.malicious, ex.after.benign
    );
}

/// Renders the E8 ablation table.
pub fn print_ablation(rows: &[AblationRow]) {
    println!("\n=== Table 5: ablations ===");
    println!("{:<28} {:>10} {:>14}", "variant", "clean", "obfuscated(L3)");
    for r in rows {
        println!(
            "{:<28} {:>10.3} {:>14.3}",
            r.variant, r.clean_accuracy, r.obfuscated_accuracy
        );
    }
}
