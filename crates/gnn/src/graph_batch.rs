//! Conversion from unified CFGs to tensor form, and mini-batch packing.
//!
//! [`PreparedGraph`] is the sparse (CSR) representation every scan and
//! training step runs on; [`GraphBatch`] packs `K` prepared graphs into one
//! block-diagonal operator set so a single tape forward/backward scores all
//! of them; [`DenseGraph`] is the dense fallback kept for equivalence
//! testing and benchmarking.

use scamdetect_ir::features::{dedup_edges_max, edge_list, node_feature_matrix, NODE_FEATURE_DIM};
use scamdetect_ir::UnifiedCfg;
use scamdetect_tensor::{CsrMatrix, CsrPair, Matrix};
use std::fmt;
use std::sync::Arc;

/// A malformed graph description rejected during preparation.
///
/// Graph preparation sits on the untrusted edge of the pipeline (CFG
/// frontends, synthetic generators, external callers building edge lists),
/// so structural problems surface as proper errors in every build profile —
/// not as `debug_assert`s that release builds skip.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge endpoint does not name a node of the feature matrix.
    EdgeOutOfRange {
        /// The offending `(src, dst)` endpoint pair.
        edge: (u32, u32),
        /// Number of nodes the feature matrix declares.
        nodes: usize,
    },
    /// An edge weight is NaN or infinite.
    NonFiniteWeight {
        /// The offending `(src, dst)` endpoint pair.
        edge: (u32, u32),
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EdgeOutOfRange {
                edge: (u, v),
                nodes,
            } => {
                write!(f, "edge ({u},{v}) out of range for {nodes} nodes")
            }
            GraphError::NonFiniteWeight { edge: (u, v) } => {
                write!(f, "edge ({u},{v}) has a non-finite weight")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A contract CFG prepared for GNN consumption: node features plus the
/// aggregation operators every supported architecture needs, precomputed
/// once in CSR form so training epochs and scan verdicts only do
/// `O(e · d)` sparse algebra — per-graph memory is `O(n + e)`, never
/// `O(n²)`.
#[derive(Debug, Clone)]
pub struct PreparedGraph {
    /// Node features, `n x d` (shared: placed on tapes without copying).
    pub x: Arc<Matrix>,
    /// Weighted adjacency edge list `(src, dst, w)`, sorted by `(src, dst)`
    /// with parallel edges collapsed to the maximum weight.
    pub edges: Vec<(u32, u32, f32)>,
    /// Raw adjacency `A` (sum aggregation, GIN), with precomputed transpose.
    pub adj: CsrPair,
    /// Symmetric GCN normalisation `D̂^{-1/2} (Â) D̂^{-1/2}`.
    pub agg_gcn: CsrPair,
    /// Row-normalised `A` (mean aggregation, GraphSAGE).
    pub agg_mean: CsrPair,
    /// Attention structure `A + I` (GAT edge-wise softmax).
    pub mask: Arc<CsrMatrix>,
    /// Binary label.
    pub label: usize,
}

/// Dense mirror of [`PreparedGraph`]: the original `n x n` representation,
/// retained as the reference/fallback execution path and as the baseline in
/// the dense-vs-sparse benchmarks. All tensors are shared handles so the
/// dense path, too, never re-clones per forward pass.
#[derive(Debug, Clone)]
pub struct DenseGraph {
    /// Node features, `n x d`.
    pub x: Arc<Matrix>,
    /// Raw adjacency `A`.
    pub adj: Arc<Matrix>,
    /// Symmetric GCN normalisation.
    pub agg_gcn: Arc<Matrix>,
    /// Row-normalised `A`.
    pub agg_mean: Arc<Matrix>,
    /// Attention mask `A + I`.
    pub mask: Arc<Matrix>,
    /// Binary label.
    pub label: usize,
}

impl PreparedGraph {
    /// Prepares `cfg` with label `label`.
    ///
    /// Unresolved CFG edges are down-weighted to 0.25 so that policy-
    /// injected over-approximation does not drown the real structure. The
    /// dense `n x n` adjacency is never materialised on this path.
    pub fn from_cfg(cfg: &UnifiedCfg, label: usize) -> Self {
        let n = cfg.block_count();
        let x = Matrix::from_vec(n, NODE_FEATURE_DIM, node_feature_matrix(cfg));
        PreparedGraph::from_edges(x, edge_list(cfg, 0.25), label)
    }

    /// Prepares a graph directly from a feature matrix and dense adjacency
    /// (used by unit tests and synthetic ablations).
    ///
    /// # Panics
    ///
    /// Panics if `adj` is not `n x n` for `x`'s `n` rows.
    pub fn from_parts(x: Matrix, adj: Matrix, label: usize) -> Self {
        let n = x.rows();
        assert_eq!(adj.shape(), (n, n), "adjacency must be n x n");
        let mut edges = Vec::new();
        for r in 0..n {
            for (c, &w) in adj.row(r).iter().enumerate() {
                if w != 0.0 {
                    edges.push((r as u32, c as u32, w));
                }
            }
        }
        PreparedGraph::from_edges(x, edges, label)
    }

    /// Prepares a graph from a feature matrix and a weighted edge list —
    /// the primary constructor; everything stays `O(n + e)`.
    ///
    /// Parallel edges collapse to the maximum weight (matching the dense
    /// adjacency semantics); non-positive weights are treated as absent
    /// edges, mirroring the dense `mask > 0` attention convention.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is out of range for `x`'s `n` rows or a
    /// weight is non-finite — see [`PreparedGraph::try_from_edges`] for the
    /// fallible variant.
    pub fn from_edges(x: Matrix, edges: Vec<(u32, u32, f32)>, label: usize) -> Self {
        PreparedGraph::try_from_edges(x, edges, label).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PreparedGraph::from_edges`]: validates every edge in every
    /// build profile.
    ///
    /// # Errors
    ///
    /// [`GraphError::EdgeOutOfRange`] when an endpoint does not name a row
    /// of `x`, [`GraphError::NonFiniteWeight`] when a weight is NaN or
    /// infinite. Release builds reject exactly what debug builds reject —
    /// out-of-range indices must never survive to index arithmetic inside
    /// the CSR kernels.
    pub fn try_from_edges(
        x: Matrix,
        mut edges: Vec<(u32, u32, f32)>,
        label: usize,
    ) -> Result<Self, GraphError> {
        let n = x.rows();
        for &(u, v, w) in &edges {
            if (u as usize) >= n || (v as usize) >= n {
                return Err(GraphError::EdgeOutOfRange {
                    edge: (u, v),
                    nodes: n,
                });
            }
            if !w.is_finite() {
                return Err(GraphError::NonFiniteWeight { edge: (u, v) });
            }
        }
        // Non-positive weights are indistinguishable from absent edges in
        // the dense formulation (the attention mask keeps entries > 0 only);
        // drop them so the CSR structure agrees on every path.
        edges.retain(|&(_, _, w)| w > 0.0);
        dedup_edges_max(&mut edges);

        let adj = CsrMatrix::from_edges(n, n, &edges);

        // A + I (directed; the GAT attention structure).
        let mut mask_edges = edges.clone();
        for i in 0..n as u32 {
            mask_edges.push((i, i, 1.0));
        }
        dedup_edges_max(&mut mask_edges);
        let mask = CsrMatrix::from_edges(n, n, &mask_edges);

        // GCN: D̂^{-1/2} Â D̂^{-1/2} over the *symmetrised* adjacency
        // Â = max(A, Aᵀ) + I — the standard way to apply spectral GCNs to
        // directed CFGs (information flows both along and against edges).
        let mut sym_edges: Vec<(u32, u32, f32)> = Vec::with_capacity(2 * edges.len() + n);
        for &(u, v, w) in &edges {
            if u != v {
                sym_edges.push((u, v, w));
                sym_edges.push((v, u, w));
            }
        }
        for i in 0..n as u32 {
            sym_edges.push((i, i, 1.0));
        }
        dedup_edges_max(&mut sym_edges);
        let mut deg = vec![0.0f32; n];
        for &(u, _, w) in &sym_edges {
            deg[u as usize] += w;
        }
        let inv_sqrt: Vec<f32> = deg
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
            .collect();
        let gcn_edges: Vec<(u32, u32, f32)> = sym_edges
            .iter()
            .map(|&(u, v, w)| (u, v, inv_sqrt[u as usize] * w * inv_sqrt[v as usize]))
            .collect();
        let agg_gcn = CsrMatrix::from_edges(n, n, &gcn_edges);

        // Mean aggregation: row-normalised A (rows without successors stay
        // zero; SAGE concatenates self features anyway).
        let mut row_sum = vec![0.0f32; n];
        for &(u, _, w) in &edges {
            row_sum[u as usize] += w;
        }
        let mean_edges: Vec<(u32, u32, f32)> = edges
            .iter()
            .filter(|&&(u, _, _)| row_sum[u as usize] > 0.0)
            .map(|&(u, v, w)| (u, v, w / row_sum[u as usize]))
            .collect();
        let agg_mean = CsrMatrix::from_edges(n, n, &mean_edges);

        Ok(PreparedGraph {
            x: Arc::new(x),
            edges,
            adj: CsrPair::new(adj),
            agg_gcn: CsrPair::new(agg_gcn),
            agg_mean: CsrPair::new(agg_mean),
            mask: Arc::new(mask),
            label,
        })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.x.rows()
    }

    /// Feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.x.cols()
    }

    /// Number of adjacency edges (after parallel-edge collapsing).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Expands to the dense representation (fallback path, benches, tests).
    pub fn to_dense(&self) -> DenseGraph {
        DenseGraph {
            x: Arc::clone(&self.x),
            adj: Arc::new(self.adj.matrix().to_dense()),
            agg_gcn: Arc::new(self.agg_gcn.matrix().to_dense()),
            agg_mean: Arc::new(self.agg_mean.matrix().to_dense()),
            mask: Arc::new(self.mask.to_dense()),
            label: self.label,
        }
    }
}

impl DenseGraph {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.x.rows()
    }
}

/// `K` prepared graphs packed into one block-diagonal operator set.
///
/// Node features are stacked row-wise, every aggregator becomes one
/// block-diagonal CSR ([`CsrPair::block_diag`] — the precomputed per-graph
/// transposes are reused, nothing is re-sorted), and the per-graph node
/// ranges are kept as [`GraphBatch::offsets`] so the segment readouts pool
/// each graph to its own logits row. One tape forward/backward over a batch
/// scores all `K` graphs; because attention softmax normalises per CSR row
/// and no row couples two blocks, GAT batches with zero cross-graph
/// leakage. Per-graph results are independent of which other graphs share
/// the batch to float roundoff (kernel selection inside `matmul` depends
/// on operand size, so stacking can change the last ulp, nothing more).
///
/// # Examples
///
/// ```
/// use scamdetect_gnn::{GraphBatch, PreparedGraph};
/// use scamdetect_tensor::Matrix;
///
/// let a = PreparedGraph::from_parts(Matrix::identity(3), Matrix::zeros(3, 3), 0);
/// let b = PreparedGraph::from_parts(Matrix::identity(3), Matrix::zeros(3, 3), 1);
/// let batch = GraphBatch::pack(&[&a, &b]);
/// assert_eq!(batch.len(), 2);
/// assert_eq!(batch.node_count(), 6);
/// assert_eq!(batch.node_range(1), 3..6);
/// assert_eq!(batch.labels(), &[0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBatch {
    /// Stacked node features, `(Σ n_k) x d`.
    pub x: Arc<Matrix>,
    /// Block-diagonal raw adjacency (sum aggregation, GIN).
    pub adj: CsrPair,
    /// Block-diagonal GCN normalisation.
    pub agg_gcn: CsrPair,
    /// Block-diagonal row-normalised adjacency (mean aggregation, SAGE).
    pub agg_mean: CsrPair,
    /// Block-diagonal attention structure `A + I`.
    pub mask: Arc<CsrMatrix>,
    /// `K + 1` node offsets: graph `k` owns rows `offsets[k]..offsets[k+1]`.
    offsets: Vec<usize>,
    /// Per-graph binary labels, length `K`.
    labels: Vec<usize>,
}

impl GraphBatch {
    /// Packs `graphs` into one block-diagonal batch.
    ///
    /// # Panics
    ///
    /// Panics if `graphs` is empty or the feature widths disagree.
    pub fn pack(graphs: &[&PreparedGraph]) -> Self {
        assert!(!graphs.is_empty(), "GraphBatch::pack: empty batch");
        let d = graphs[0].feature_dim();
        let mut offsets = Vec::with_capacity(graphs.len() + 1);
        offsets.push(0usize);
        let total: usize = graphs.iter().map(|g| g.node_count()).sum();
        let mut data = Vec::with_capacity(total * d);
        for g in graphs {
            assert_eq!(
                g.feature_dim(),
                d,
                "GraphBatch::pack: feature width mismatch ({} vs {d})",
                g.feature_dim()
            );
            offsets.push(offsets.last().expect("nonempty") + g.node_count());
            data.extend_from_slice(g.x.as_slice());
        }
        let pairs = |f: fn(&PreparedGraph) -> &CsrPair| {
            let blocks: Vec<&CsrPair> = graphs.iter().map(|g| f(g)).collect();
            CsrPair::block_diag(&blocks)
        };
        let masks: Vec<&CsrMatrix> = graphs.iter().map(|g| g.mask.as_ref()).collect();
        GraphBatch {
            x: Arc::new(Matrix::from_vec(total, d, data)),
            adj: pairs(|g| &g.adj),
            agg_gcn: pairs(|g| &g.agg_gcn),
            agg_mean: pairs(|g| &g.agg_mean),
            mask: Arc::new(CsrMatrix::block_diag(&masks)),
            offsets,
            labels: graphs.iter().map(|g| g.label).collect(),
        }
    }

    /// Packs an owned slice of graphs (convenience over [`GraphBatch::pack`]).
    ///
    /// # Panics
    ///
    /// Panics if `graphs` is empty or the feature widths disagree.
    pub fn from_graphs(graphs: &[PreparedGraph]) -> Self {
        let refs: Vec<&PreparedGraph> = graphs.iter().collect();
        GraphBatch::pack(&refs)
    }

    /// Number of graphs `K` in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` only for the unreachable zero-graph case ([`GraphBatch::pack`]
    /// rejects it); provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Total stacked node count `Σ n_k`.
    pub fn node_count(&self) -> usize {
        self.x.rows()
    }

    /// The `K + 1` node offsets delimiting each graph's row range.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Node rows owned by graph `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= len()`.
    pub fn node_range(&self, k: usize) -> std::ops::Range<usize> {
        self.offsets[k]..self.offsets[k + 1]
    }

    /// Per-graph labels, aligned with packing order.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain3() -> PreparedGraph {
        // 0 -> 1 -> 2.
        let x = Matrix::identity(3);
        let mut adj = Matrix::zeros(3, 3);
        adj.set(0, 1, 1.0);
        adj.set(1, 2, 1.0);
        PreparedGraph::from_parts(x, adj, 1)
    }

    #[test]
    fn gcn_norm_is_symmetric_in_degree() {
        let g = chain3();
        let gcn = g.agg_gcn.matrix();
        // Self-loop entries: 1/d_i.
        assert!((gcn.get(0, 0) - 0.5).abs() < 1e-6); // deg 2
        assert!((gcn.get(1, 1) - 1.0 / 3.0).abs() < 1e-6); // deg 3
                                                           // Edge (0,1): 1/sqrt(2*3).
        assert!((gcn.get(0, 1) - 1.0 / (2.0f32 * 3.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn mean_agg_rows_sum_to_one_or_zero() {
        let g = chain3();
        let mean = g.agg_mean.matrix();
        for i in 0..3 {
            let s: f32 = mean.row_vals(i).iter().sum();
            assert!(s == 0.0 || (s - 1.0).abs() < 1e-6, "row {i} sums to {s}");
        }
        // Terminal node 2 has no successors.
        assert_eq!(mean.row_vals(2).len(), 0);
    }

    #[test]
    fn mask_includes_self_loops() {
        let g = chain3();
        for i in 0..3 {
            assert_eq!(g.mask.get(i, i), 1.0);
        }
        assert_eq!(g.mask.get(0, 1), 1.0);
        assert_eq!(g.mask.get(1, 0), 0.0);
    }

    #[test]
    fn sparse_memory_is_edge_bound() {
        let g = chain3();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.adj.matrix().nnz(), 2);
        assert_eq!(g.mask.nnz(), 5); // 2 edges + 3 self-loops
        assert_eq!(g.agg_gcn.matrix().nnz(), 7); // symmetrised + diagonal
    }

    #[test]
    fn non_positive_weights_are_absent_edges() {
        // Matches the dense `mask > 0` convention on every aggregator.
        let x = Matrix::identity(2);
        let g = PreparedGraph::from_edges(x, vec![(0, 1, -1.0), (1, 0, 0.0)], 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.adj.matrix().nnz(), 0);
        assert_eq!(g.mask.nnz(), 2); // self-loops only
    }

    #[test]
    fn parallel_edges_collapse_to_max() {
        let x = Matrix::identity(2);
        let g = PreparedGraph::from_edges(x, vec![(0, 1, 0.25), (0, 1, 1.0)], 0);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.adj.matrix().get(0, 1), 1.0);
    }

    #[test]
    fn dense_mirror_matches_csr() {
        let g = chain3();
        let d = g.to_dense();
        assert_eq!(*d.adj, g.adj.matrix().to_dense());
        assert_eq!(*d.agg_gcn, g.agg_gcn.matrix().to_dense());
        assert_eq!(*d.agg_mean, g.agg_mean.matrix().to_dense());
        assert_eq!(*d.mask, g.mask.to_dense());
        assert_eq!(d.label, g.label);
        assert_eq!(d.node_count(), 3);
    }

    #[test]
    fn from_cfg_produces_consistent_shapes() {
        use scamdetect_ir::{EvmFrontend, Frontend};
        // CALLVALUE PUSH1 7 JUMPI STOP; JUMPDEST STOP
        let code = [0x34, 0x60, 0x06, 0x57, 0x00, 0xfe, 0x5b, 0x00];
        let cfg = EvmFrontend::new().lift(&code).unwrap();
        let g = PreparedGraph::from_cfg(&cfg, 0);
        assert_eq!(g.node_count(), cfg.block_count());
        assert_eq!(g.feature_dim(), NODE_FEATURE_DIM);
        assert_eq!(g.adj.matrix().shape(), (g.node_count(), g.node_count()));
        assert!(g.edge_count() > 0);
    }

    #[test]
    #[should_panic(expected = "n x n")]
    fn shape_mismatch_panics() {
        PreparedGraph::from_parts(Matrix::zeros(3, 2), Matrix::zeros(2, 2), 0);
    }

    /// Regression: out-of-range endpoints must be rejected in *every* build
    /// profile — this test is part of the release-mode test run, where a
    /// `debug_assert` would be compiled out.
    #[test]
    fn out_of_range_edges_rejected_in_release_too() {
        let err = PreparedGraph::try_from_edges(Matrix::identity(2), vec![(0, 2, 1.0)], 0)
            .expect_err("dst out of range");
        assert_eq!(
            err,
            GraphError::EdgeOutOfRange {
                edge: (0, 2),
                nodes: 2
            }
        );
        let err = PreparedGraph::try_from_edges(Matrix::identity(2), vec![(5, 1, 1.0)], 0)
            .expect_err("src out of range");
        assert!(matches!(err, GraphError::EdgeOutOfRange { .. }));
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn non_finite_weights_rejected() {
        for w in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let err = PreparedGraph::try_from_edges(Matrix::identity(2), vec![(0, 1, w)], 0)
                .expect_err("non-finite weight");
            assert_eq!(err, GraphError::NonFiniteWeight { edge: (0, 1) });
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_panics_on_out_of_range() {
        let _ = PreparedGraph::from_edges(Matrix::identity(2), vec![(0, 7, 1.0)], 0);
    }

    #[test]
    fn batch_packs_block_diagonal_operators() {
        let a = chain3();
        let b = PreparedGraph::from_edges(
            Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32),
            vec![(0, 1, 1.0)],
            0,
        );
        let batch = GraphBatch::pack(&[&a, &b]);
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        assert_eq!(batch.node_count(), 5);
        assert_eq!(batch.offsets(), &[0, 3, 5]);
        assert_eq!(batch.node_range(0), 0..3);
        assert_eq!(batch.node_range(1), 3..5);
        assert_eq!(batch.labels(), &[1, 0]);
        // Stacked features keep each graph's rows.
        assert_eq!(batch.x.row(0), a.x.row(0));
        assert_eq!(batch.x.row(3), b.x.row(0));
        // Operators are exactly the block diagonal of the per-graph ones.
        assert_eq!(batch.adj.matrix().get(0, 1), a.adj.matrix().get(0, 1));
        assert_eq!(batch.adj.matrix().get(3, 4), b.adj.matrix().get(0, 1));
        assert_eq!(batch.adj.matrix().get(0, 4), 0.0);
        assert_eq!(batch.adj.matrix().get(3, 0), 0.0);
        assert_eq!(
            batch.adj.matrix().nnz(),
            a.adj.matrix().nnz() + b.adj.matrix().nnz()
        );
        assert_eq!(batch.mask.nnz(), a.mask.nnz() + b.mask.nnz());
        // The batched backward operator is a genuine transpose.
        assert_eq!(
            batch.agg_gcn.transposed().to_dense(),
            batch.agg_gcn.matrix().to_dense().transpose()
        );
    }

    #[test]
    fn batch_of_one_is_the_graph_itself() {
        let g = chain3();
        let batch = GraphBatch::from_graphs(std::slice::from_ref(&g));
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.offsets(), &[0, 3]);
        assert_eq!(batch.adj.matrix().to_dense(), g.adj.matrix().to_dense());
        assert_eq!(batch.mask.to_dense(), g.mask.to_dense());
        assert_eq!(*batch.x, *g.x);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_rejected() {
        let _ = GraphBatch::pack(&[]);
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn mixed_feature_widths_rejected() {
        let a = PreparedGraph::from_parts(Matrix::identity(2), Matrix::zeros(2, 2), 0);
        let b = PreparedGraph::from_parts(Matrix::zeros(2, 3), Matrix::zeros(2, 2), 0);
        let _ = GraphBatch::pack(&[&a, &b]);
    }
}
