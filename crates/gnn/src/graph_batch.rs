//! Conversion from unified CFGs to tensor form.

use scamdetect_ir::features::{adjacency_matrix, node_feature_matrix, NODE_FEATURE_DIM};
use scamdetect_ir::UnifiedCfg;
use scamdetect_tensor::Matrix;

/// A contract CFG prepared for GNN consumption: node features plus the
/// aggregation operators every supported architecture needs, precomputed
/// once so training epochs only do dense algebra.
#[derive(Debug, Clone)]
pub struct PreparedGraph {
    /// Node features, `n x d`.
    pub x: Matrix,
    /// Raw adjacency `A` (sum aggregation, GIN).
    pub adj: Matrix,
    /// Symmetric GCN normalisation `D̂^{-1/2} (A+I) D̂^{-1/2}`.
    pub agg_gcn: Matrix,
    /// Row-normalised `A` (mean aggregation, GraphSAGE).
    pub agg_mean: Matrix,
    /// Attention mask `A + I` (GAT).
    pub mask: Matrix,
    /// Binary label.
    pub label: usize,
}

impl PreparedGraph {
    /// Prepares `cfg` with label `label`.
    ///
    /// Unresolved CFG edges are down-weighted to 0.25 so that policy-
    /// injected over-approximation does not drown the real structure.
    pub fn from_cfg(cfg: &UnifiedCfg, label: usize) -> Self {
        let n = cfg.block_count();
        let x = Matrix::from_vec(n, NODE_FEATURE_DIM, node_feature_matrix(cfg));
        let adj = Matrix::from_vec(n, n, adjacency_matrix(cfg, 0.25));
        PreparedGraph::from_parts(x, adj, label)
    }

    /// Prepares a graph directly from a feature matrix and adjacency
    /// (used by unit tests and synthetic ablations).
    ///
    /// # Panics
    ///
    /// Panics if `adj` is not `n x n` for `x`'s `n` rows.
    pub fn from_parts(x: Matrix, adj: Matrix, label: usize) -> Self {
        let n = x.rows();
        assert_eq!(adj.shape(), (n, n), "adjacency must be n x n");

        // A + I (directed; used as the GAT attention mask).
        let mut mask = adj.clone();
        for i in 0..n {
            mask.set(i, i, 1.0);
        }

        // GCN: D̂^{-1/2} Â D̂^{-1/2} over the *symmetrised* adjacency
        // Â = max(A, Aᵀ) + I — the standard way to apply spectral GCNs to
        // directed CFGs (information flows both along and against edges).
        let sym = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                1.0
            } else {
                adj.get(i, j).max(adj.get(j, i))
            }
        });
        let mut deg = vec![0.0f32; n];
        for (i, d) in deg.iter_mut().enumerate() {
            for j in 0..n {
                *d += sym.get(i, j);
            }
        }
        let inv_sqrt: Vec<f32> = deg
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
            .collect();
        let agg_gcn = Matrix::from_fn(n, n, |i, j| inv_sqrt[i] * sym.get(i, j) * inv_sqrt[j]);

        // Mean aggregation: row-normalised A (rows without successors stay
        // zero; SAGE concatenates self features anyway).
        let agg_mean = Matrix::from_fn(n, n, |i, j| {
            let row_sum: f32 = (0..n).map(|k| adj.get(i, k)).sum();
            if row_sum > 0.0 {
                adj.get(i, j) / row_sum
            } else {
                0.0
            }
        });

        PreparedGraph {
            x,
            adj,
            agg_gcn,
            agg_mean,
            mask,
            label,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.x.rows()
    }

    /// Feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.x.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain3() -> PreparedGraph {
        // 0 -> 1 -> 2.
        let x = Matrix::identity(3);
        let mut adj = Matrix::zeros(3, 3);
        adj.set(0, 1, 1.0);
        adj.set(1, 2, 1.0);
        PreparedGraph::from_parts(x, adj, 1)
    }

    #[test]
    fn gcn_norm_is_symmetric_in_degree() {
        let g = chain3();
        // Self-loop entries: 1/d_i.
        assert!((g.agg_gcn.get(0, 0) - 0.5).abs() < 1e-6); // deg 2
        assert!((g.agg_gcn.get(1, 1) - 1.0 / 3.0).abs() < 1e-6); // deg 3
                                                                 // Edge (0,1): 1/sqrt(2*3).
        assert!((g.agg_gcn.get(0, 1) - 1.0 / (2.0f32 * 3.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn mean_agg_rows_sum_to_one_or_zero() {
        let g = chain3();
        for i in 0..3 {
            let s: f32 = (0..3).map(|j| g.agg_mean.get(i, j)).sum();
            assert!(s == 0.0 || (s - 1.0).abs() < 1e-6, "row {i} sums to {s}");
        }
        // Terminal node 2 has no successors.
        let s2: f32 = (0..3).map(|j| g.agg_mean.get(2, j)).sum();
        assert_eq!(s2, 0.0);
    }

    #[test]
    fn mask_includes_self_loops() {
        let g = chain3();
        for i in 0..3 {
            assert_eq!(g.mask.get(i, i), 1.0);
        }
        assert_eq!(g.mask.get(0, 1), 1.0);
        assert_eq!(g.mask.get(1, 0), 0.0);
    }

    #[test]
    fn from_cfg_produces_consistent_shapes() {
        use scamdetect_ir::{EvmFrontend, Frontend};
        // CALLVALUE PUSH1 7 JUMPI STOP; JUMPDEST STOP
        let code = [0x34, 0x60, 0x06, 0x57, 0x00, 0xfe, 0x5b, 0x00];
        let cfg = EvmFrontend::new().lift(&code).unwrap();
        let g = PreparedGraph::from_cfg(&cfg, 0);
        assert_eq!(g.node_count(), cfg.block_count());
        assert_eq!(g.feature_dim(), NODE_FEATURE_DIM);
        assert_eq!(g.adj.shape(), (g.node_count(), g.node_count()));
    }

    #[test]
    #[should_panic(expected = "n x n")]
    fn shape_mismatch_panics() {
        PreparedGraph::from_parts(Matrix::zeros(3, 2), Matrix::zeros(2, 2), 0);
    }
}
