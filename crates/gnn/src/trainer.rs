//! Mini-batch training loops for GNN classifiers.
//!
//! The default path, [`train`] / [`train_batched`], packs each step's
//! graphs into one block-diagonal [`GraphBatch`] so a single tape
//! forward/backward scores the whole batch — `K` small sparse kernels
//! collapse into one large one and the tape records `O(layers)` steps per
//! batch instead of `O(K · layers)`. The per-graph loops are retained as
//! references: [`train_unbatched`] (CSR, one forward per graph) and
//! [`train_dense`] (dense `n x n` baseline).

use crate::graph_batch::{DenseGraph, GraphBatch, PreparedGraph};
use crate::model::{GnnClassifier, GraphRef};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scamdetect_tensor::{optim::Adam, Matrix, Tape};

/// Hyperparameters of the per-graph reference loops ([`train_unbatched`],
/// [`train_dense`]).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Graphs per gradient step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// AdamW-style weight decay.
    pub weight_decay: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Stop early when the epoch loss drops below this.
    pub loss_target: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch_size: 16,
            lr: 5e-3,
            weight_decay: 1e-4,
            seed: 7,
            loss_target: 0.02,
        }
    }
}

/// Hyperparameters of the block-diagonal mini-batch path ([`train`] /
/// [`train_batched`]) — the default end-to-end training configuration.
#[derive(Debug, Clone)]
pub struct BatchTrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Graphs per gradient step (per packed [`GraphBatch`]).
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// AdamW-style weight decay.
    pub weight_decay: f32,
    /// Shuffling seed (graph order, or batch order when bucketing).
    pub seed: u64,
    /// Stop early when the epoch loss drops below this.
    pub loss_target: f32,
    /// Length-bucketing: sort graphs by node count into contiguous batches
    /// packed **once**, then shuffle only the batch order per epoch.
    /// Similar-sized graphs share a batch (bounding the node count any one
    /// batch carries) and per-epoch repacking disappears; the trade-off is
    /// that batch *composition* is fixed across epochs.
    pub bucket_by_size: bool,
    /// Upper bound on total nodes per packed batch; a batch is cut early
    /// rather than exceed it (every batch still carries at least one
    /// graph). `None` bounds batches by `batch_size` only.
    pub max_batch_nodes: Option<usize>,
}

impl Default for BatchTrainConfig {
    fn default() -> Self {
        BatchTrainConfig {
            epochs: 30,
            batch_size: 16,
            lr: 5e-3,
            weight_decay: 1e-4,
            seed: 7,
            loss_target: 0.02,
            bucket_by_size: false,
            max_batch_nodes: None,
        }
    }
}

impl BatchTrainConfig {
    /// The per-graph reference configuration with the same hyperparameters
    /// (used by equivalence tests and the batched-vs-unbatched benchmark).
    pub fn unbatched(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            batch_size: self.batch_size,
            lr: self.lr,
            weight_decay: self.weight_decay,
            seed: self.seed,
            loss_target: self.loss_target,
        }
    }
}

impl From<TrainConfig> for BatchTrainConfig {
    fn from(cfg: TrainConfig) -> Self {
        BatchTrainConfig {
            epochs: cfg.epochs,
            batch_size: cfg.batch_size,
            lr: cfg.lr,
            weight_decay: cfg.weight_decay,
            seed: cfg.seed,
            loss_target: cfg.loss_target,
            ..BatchTrainConfig::default()
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, Default)]
pub struct TrainHistory {
    /// Mean loss per epoch.
    pub epoch_loss: Vec<f32>,
}

impl TrainHistory {
    /// Final epoch's loss (`None` before training).
    pub fn final_loss(&self) -> Option<f32> {
        self.epoch_loss.last().copied()
    }
}

/// Trains `model` on `data` in place and returns the loss history — the
/// default, block-diagonal mini-batch path (alias of [`train_batched`]).
///
/// Each gradient step packs its graphs into one [`GraphBatch`] and runs a
/// single tape forward/backward; the loss is the mean cross-entropy over
/// the batch's per-graph logits rows, so the optimisation trajectory
/// matches [`train_unbatched`] under the same seed to float roundoff.
pub fn train(
    model: &mut GnnClassifier,
    data: &[PreparedGraph],
    cfg: &BatchTrainConfig,
) -> TrainHistory {
    train_batched(model, data, cfg)
}

/// Block-diagonal mini-batch training: one tape, one forward, one backward
/// and one Adam step per batch of `K` graphs.
///
/// Graph order is reshuffled every epoch by a seeded Fisher–Yates (the
/// same stream the reference loops draw), then chunked into batches of
/// [`BatchTrainConfig::batch_size`] graphs, optionally cut early by
/// [`BatchTrainConfig::max_batch_nodes`]. With
/// [`BatchTrainConfig::bucket_by_size`] the batches are instead formed
/// once over a node-count-sorted order and only the batch order is
/// shuffled per epoch, so packing is paid once per training run.
pub fn train_batched(
    model: &mut GnnClassifier,
    data: &[PreparedGraph],
    cfg: &BatchTrainConfig,
) -> TrainHistory {
    let mut history = TrainHistory::default();
    if data.is_empty() {
        return history;
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut adam = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);

    // Bucketing packs once over the size-sorted order and shuffles batch
    // order only; otherwise the graph order is reshuffled and each chunk is
    // packed fresh every epoch (packing is O(n + e) per batch — noise next
    // to the forward/backward it feeds).
    let prebuilt: Option<Vec<GraphBatch>> = cfg.bucket_by_size.then(|| {
        let mut idx: Vec<usize> = (0..data.len()).collect();
        idx.sort_by_key(|&i| (data[i].node_count(), i));
        chunk_bounded(&idx, data, cfg)
            .into_iter()
            .map(|chunk| pack_chunk(data, &chunk))
            .collect()
    });
    let mut order: Vec<usize> = match &prebuilt {
        Some(batches) => (0..batches.len()).collect(),
        None => (0..data.len()).collect(),
    };

    for _epoch in 0..cfg.epochs {
        shuffle(&mut order, &mut rng);
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        match &prebuilt {
            Some(prepacked) => {
                for &b in &order {
                    epoch_loss += batch_step(model, &mut adam, &prepacked[b]);
                    batches += 1;
                }
            }
            None => {
                for chunk in chunk_bounded(&order, data, cfg) {
                    epoch_loss += batch_step(model, &mut adam, &pack_chunk(data, &chunk));
                    batches += 1;
                }
            }
        }
        let mean_epoch = epoch_loss / batches.max(1) as f32;
        history.epoch_loss.push(mean_epoch);
        if mean_epoch < cfg.loss_target {
            break;
        }
    }
    history
}

/// One gradient step over a packed batch; returns the batch's mean loss.
fn batch_step(model: &mut GnnClassifier, adam: &mut Adam, batch: &GraphBatch) -> f32 {
    let tape = Tape::new();
    let vars = model.params().bind(&tape);
    let logits = model.forward(&tape, &vars, GraphRef::Batch(batch));
    let loss = tape.softmax_cross_entropy(logits, batch.labels());
    let loss_value = tape.value(loss).get(0, 0);
    let grads = tape.backward(loss);
    adam.step(model.params_mut(), |id| grads.of(vars[id.index()]));
    loss_value
}

/// Splits `order` into batches of at most `cfg.batch_size` graphs, cut
/// early when adding the next graph would push the packed node count past
/// `cfg.max_batch_nodes` (a batch always takes at least one graph).
fn chunk_bounded(
    order: &[usize],
    data: &[PreparedGraph],
    cfg: &BatchTrainConfig,
) -> Vec<Vec<usize>> {
    let bs = cfg.batch_size.max(1);
    let mut chunks = Vec::with_capacity(order.len().div_ceil(bs));
    let mut current: Vec<usize> = Vec::with_capacity(bs);
    let mut nodes = 0usize;
    for &i in order {
        let n = data[i].node_count();
        let over_cap = cfg
            .max_batch_nodes
            .is_some_and(|cap| !current.is_empty() && nodes + n > cap);
        if current.len() == bs || over_cap {
            chunks.push(std::mem::take(&mut current));
            nodes = 0;
        }
        current.push(i);
        nodes += n;
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

fn pack_chunk(data: &[PreparedGraph], chunk: &[usize]) -> GraphBatch {
    let refs: Vec<&PreparedGraph> = chunk.iter().map(|&i| &data[i]).collect();
    GraphBatch::pack(&refs)
}

/// Seeded Fisher–Yates; the exact shuffle stream every training loop in
/// this module draws, so equal seeds give equal visit orders across the
/// batched, unbatched and dense paths.
fn shuffle(order: &mut [usize], rng: &mut StdRng) {
    for i in (1..order.len()).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
}

/// Per-graph CSR training — the unbatched reference loop (one forward per
/// graph, losses summed on the tape). Used by equivalence tests and as the
/// baseline of the E2 batched-vs-unbatched benchmark.
pub fn train_unbatched(
    model: &mut GnnClassifier,
    data: &[PreparedGraph],
    cfg: &TrainConfig,
) -> TrainHistory {
    let refs: Vec<GraphRef<'_>> = data.iter().map(GraphRef::Sparse).collect();
    train_refs(model, &refs, cfg)
}

/// [`train_unbatched`] over the dense fallback representation — identical
/// loop and shuffling, used by equivalence tests and the dense-vs-sparse
/// benchmark.
pub fn train_dense(
    model: &mut GnnClassifier,
    data: &[DenseGraph],
    cfg: &TrainConfig,
) -> TrainHistory {
    let refs: Vec<GraphRef<'_>> = data.iter().map(GraphRef::Dense).collect();
    train_refs(model, &refs, cfg)
}

fn train_refs(model: &mut GnnClassifier, data: &[GraphRef<'_>], cfg: &TrainConfig) -> TrainHistory {
    let mut history = TrainHistory::default();
    if data.is_empty() {
        return history;
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut adam = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
    let mut order: Vec<usize> = (0..data.len()).collect();

    for _epoch in 0..cfg.epochs {
        shuffle(&mut order, &mut rng);
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let tape = Tape::new();
            let vars = model.params().bind(&tape);
            let mut loss_acc = None;
            for &i in chunk {
                let g = data[i];
                let logits = model.forward(&tape, &vars, g);
                let loss = tape.softmax_cross_entropy(logits, &[g.label()]);
                loss_acc = Some(match loss_acc {
                    None => loss,
                    Some(acc) => tape.add(acc, loss),
                });
            }
            let total = loss_acc.expect("nonempty batch");
            let mean = tape.scale(total, 1.0 / chunk.len() as f32);
            epoch_loss += tape.value(mean).get(0, 0);
            batches += 1;
            let grads = tape.backward(mean);
            adam.step(model.params_mut(), |id| grads.of(vars[id.index()]));
        }
        let mean_epoch = epoch_loss / batches.max(1) as f32;
        history.epoch_loss.push(mean_epoch);
        if mean_epoch < cfg.loss_target {
            break;
        }
    }
    history
}

/// Evaluates `model` on `data`: returns `(truth, predictions, scores)`.
pub fn evaluate(
    model: &GnnClassifier,
    data: &[PreparedGraph],
) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
    let mut truth = Vec::with_capacity(data.len());
    let mut preds = Vec::with_capacity(data.len());
    let mut scores = Vec::with_capacity(data.len());
    for g in data {
        let s = model.score(g);
        truth.push(g.label);
        preds.push(usize::from(s >= 0.5));
        scores.push(s);
    }
    (truth, preds, scores)
}

/// Accuracy shortcut over [`evaluate`].
pub fn accuracy(model: &GnnClassifier, data: &[PreparedGraph]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let (truth, preds, _) = evaluate(model, data);
    truth.iter().zip(&preds).filter(|(t, p)| t == p).count() as f64 / data.len() as f64
}

/// Builds a synthetic, structurally separable graph dataset for tests and
/// smoke benchmarks: class 0 graphs are chains, class 1 graphs are chains
/// plus a dense hub (a "drain loop" caricature). Mirroring the real
/// pipeline's node features, column 0 carries the normalised out-degree
/// (structure made locally visible); the remaining columns are noise.
pub fn synthetic_structural_dataset(n: usize, dim: usize, seed: u64) -> Vec<PreparedGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let label = i % 2;
        let nodes = rng.random_range(6..12);
        let mut adj = Matrix::zeros(nodes, nodes);
        for v in 0..nodes - 1 {
            adj.set(v, v + 1, 1.0);
        }
        if label == 1 {
            // Hub: node 0 connects to everything and back — a dense,
            // loop-heavy motif chains lack.
            for v in 1..nodes {
                adj.set(0, v, 1.0);
                adj.set(v, 0, 1.0);
            }
        }
        let x = Matrix::from_fn(nodes, dim, |r, c| {
            if c == 0 {
                let deg: f32 = (0..nodes).map(|j| adj.get(r, j)).sum();
                (deg.min(8.0)) / 8.0
            } else {
                rng.random_range(0.0..0.3)
            }
        });
        out.push(PreparedGraph::from_parts(x, adj, label));
    }
    out
}

/// Builds one synthetic CFG-shaped sparse graph: a chain of `n` nodes with
/// `n` random shortcut/back edges (average out-degree ≈ 2, a quarter
/// down-weighted to 0.25 like unresolved jumps) plus `isolated` trailing
/// nodes with no edges at all, labelled `seed % 2`. This is the density
/// regime real contract CFGs live in; the dense-vs-sparse equivalence
/// tests and the E2 benchmark both draw from it.
pub fn synthetic_sparse_graph(n: usize, isolated: usize, dim: usize, seed: u64) -> PreparedGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let total = n + isolated;
    let mut edges = Vec::new();
    for v in 0..n.saturating_sub(1) as u32 {
        edges.push((v, v + 1, 1.0));
    }
    for _ in 0..n {
        let u = rng.random_range(0..n.max(1)) as u32;
        let v = rng.random_range(0..n.max(1)) as u32;
        let w = if rng.random_range(0..4) == 0 {
            0.25
        } else {
            1.0
        };
        edges.push((u, v, w));
    }
    let x = Matrix::from_fn(total, dim, |_, _| rng.random_range(-1.0..1.0));
    PreparedGraph::from_edges(x, edges, (seed % 2) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GnnConfig, GnnKind};

    #[test]
    fn training_reduces_loss_and_learns_structure() {
        let data = synthetic_structural_dataset(40, 6, 3);
        let mut model = GnnClassifier::new(GnnConfig::new(GnnKind::Gcn, 6).with_hidden(16));
        let cfg = BatchTrainConfig {
            epochs: 60,
            batch_size: 8,
            lr: 2e-2,
            ..BatchTrainConfig::default()
        };
        let hist = train(&mut model, &data, &cfg);
        let first = hist.epoch_loss[0];
        let last = hist.final_loss().unwrap();
        assert!(last < first, "loss went {first} -> {last}");
        let acc = accuracy(&model, &data);
        assert!(acc > 0.9, "train accuracy {acc}");
    }

    #[test]
    fn every_architecture_trains_on_structure() {
        let data = synthetic_structural_dataset(30, 6, 5);
        for kind in GnnKind::all() {
            let mut model =
                GnnClassifier::new(GnnConfig::new(kind, 6).with_hidden(12).with_seed(2));
            let cfg = BatchTrainConfig {
                epochs: 60,
                batch_size: 10,
                lr: 2e-2,
                ..BatchTrainConfig::default()
            };
            train(&mut model, &data, &cfg);
            let acc = accuracy(&model, &data);
            assert!(acc > 0.8, "{kind} reached only {acc}");
        }
    }

    #[test]
    fn empty_dataset_is_a_noop() {
        let mut model = GnnClassifier::new(GnnConfig::new(GnnKind::Gcn, 4));
        let hist = train(&mut model, &[], &BatchTrainConfig::default());
        assert!(hist.epoch_loss.is_empty());
        assert_eq!(accuracy(&model, &[]), 0.0);
    }

    #[test]
    fn evaluate_shapes_align() {
        let data = synthetic_structural_dataset(10, 4, 1);
        let model = GnnClassifier::new(GnnConfig::new(GnnKind::Sage, 4));
        let (t, p, s) = evaluate(&model, &data);
        assert_eq!(t.len(), 10);
        assert_eq!(p.len(), 10);
        assert_eq!(s.len(), 10);
        assert!(s.iter().all(|x| (0.0..=1.0).contains(x)));
    }

    #[test]
    fn training_is_deterministic() {
        let data = synthetic_structural_dataset(16, 4, 9);
        let mk = || {
            let mut m = GnnClassifier::new(GnnConfig::new(GnnKind::Gin, 4).with_seed(4));
            train(
                &mut m,
                &data,
                &BatchTrainConfig {
                    epochs: 5,
                    ..BatchTrainConfig::default()
                },
            );
            m.score(&data[0])
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn batched_loss_tracks_unbatched_reference() {
        // Same seed, same hyperparameters: per-epoch losses of the
        // block-diagonal path and the per-graph path must agree closely —
        // the batched CE is the same mean the unbatched tape accumulates.
        let data = synthetic_structural_dataset(24, 6, 11);
        let cfg = BatchTrainConfig {
            epochs: 5,
            batch_size: 6,
            lr: 1e-2,
            loss_target: 0.0,
            ..BatchTrainConfig::default()
        };
        for kind in GnnKind::all() {
            let mut mb = GnnClassifier::new(GnnConfig::new(kind, 6).with_hidden(8).with_seed(5));
            let mut mu = GnnClassifier::new(GnnConfig::new(kind, 6).with_hidden(8).with_seed(5));
            let hb = train_batched(&mut mb, &data, &cfg);
            let hu = train_unbatched(&mut mu, &data, &cfg.unbatched());
            assert_eq!(hb.epoch_loss.len(), hu.epoch_loss.len());
            for (lb, lu) in hb.epoch_loss.iter().zip(&hu.epoch_loss) {
                assert!(
                    (lb - lu).abs() < 1e-3,
                    "{kind}: batched {lb} vs unbatched {lu}"
                );
            }
            let sb = mb.score(&data[0]);
            let su = mu.score(&data[0]);
            assert!((sb - su).abs() < 1e-3, "{kind}: {sb} vs {su}");
        }
    }

    #[test]
    fn bucketing_still_learns_structure() {
        let data = synthetic_structural_dataset(40, 6, 3);
        let mut model = GnnClassifier::new(GnnConfig::new(GnnKind::Gcn, 6).with_hidden(16));
        let cfg = BatchTrainConfig {
            epochs: 60,
            batch_size: 8,
            lr: 2e-2,
            bucket_by_size: true,
            ..BatchTrainConfig::default()
        };
        let hist = train_batched(&mut model, &data, &cfg);
        assert!(hist.final_loss().unwrap() < hist.epoch_loss[0]);
        assert!(accuracy(&model, &data) > 0.9);
    }

    #[test]
    fn max_batch_nodes_bounds_every_chunk() {
        let data: Vec<PreparedGraph> = (0..10)
            .map(|i| synthetic_sparse_graph(4 + i, 0, 4, i as u64))
            .collect();
        let cfg = BatchTrainConfig {
            batch_size: 8,
            max_batch_nodes: Some(16),
            ..BatchTrainConfig::default()
        };
        let order: Vec<usize> = (0..data.len()).collect();
        for chunk in chunk_bounded(&order, &data, &cfg) {
            assert!(!chunk.is_empty());
            let nodes: usize = chunk.iter().map(|&i| data[i].node_count()).sum();
            // A single oversized graph may exceed the cap alone; any
            // multi-graph chunk must respect it.
            assert!(
                chunk.len() == 1 || nodes <= 16,
                "chunk carries {nodes} nodes"
            );
        }
        // Training under the cap still runs end to end.
        let mut model = GnnClassifier::new(GnnConfig::new(GnnKind::Sage, 4));
        let hist = train_batched(&mut model, &data, &BatchTrainConfig { epochs: 2, ..cfg });
        assert_eq!(hist.epoch_loss.len(), 2);
    }
}
