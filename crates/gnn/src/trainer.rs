//! Mini-batch training loop for GNN classifiers.

use crate::graph_batch::{DenseGraph, PreparedGraph};
use crate::model::{GnnClassifier, GraphRef};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scamdetect_tensor::{optim::Adam, Matrix, Tape};

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Graphs per gradient step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// AdamW-style weight decay.
    pub weight_decay: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Stop early when the epoch loss drops below this.
    pub loss_target: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch_size: 16,
            lr: 5e-3,
            weight_decay: 1e-4,
            seed: 7,
            loss_target: 0.02,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, Default)]
pub struct TrainHistory {
    /// Mean loss per epoch.
    pub epoch_loss: Vec<f32>,
}

impl TrainHistory {
    /// Final epoch's loss (`None` before training).
    pub fn final_loss(&self) -> Option<f32> {
        self.epoch_loss.last().copied()
    }
}

/// Trains `model` on `data` in place and returns the loss history.
///
/// Each batch builds one tape, accumulates the mean cross-entropy over its
/// graphs and applies a single Adam step — plain mini-batch SGD, fully
/// deterministic under the config seed. Message passing runs through the
/// CSR aggregators; see [`train_dense`] for the dense baseline.
pub fn train(model: &mut GnnClassifier, data: &[PreparedGraph], cfg: &TrainConfig) -> TrainHistory {
    let refs: Vec<GraphRef<'_>> = data.iter().map(GraphRef::Sparse).collect();
    train_refs(model, &refs, cfg)
}

/// [`train`] over the dense fallback representation — identical loop and
/// shuffling, used by equivalence tests and the dense-vs-sparse benchmark.
pub fn train_dense(
    model: &mut GnnClassifier,
    data: &[DenseGraph],
    cfg: &TrainConfig,
) -> TrainHistory {
    let refs: Vec<GraphRef<'_>> = data.iter().map(GraphRef::Dense).collect();
    train_refs(model, &refs, cfg)
}

fn train_refs(model: &mut GnnClassifier, data: &[GraphRef<'_>], cfg: &TrainConfig) -> TrainHistory {
    let mut history = TrainHistory::default();
    if data.is_empty() {
        return history;
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut adam = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
    let mut order: Vec<usize> = (0..data.len()).collect();

    for _epoch in 0..cfg.epochs {
        // Shuffle.
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let tape = Tape::new();
            let vars = model.params().bind(&tape);
            let mut loss_acc = None;
            for &i in chunk {
                let g = data[i];
                let logits = model.forward(&tape, &vars, g);
                let loss = tape.softmax_cross_entropy(logits, &[g.label()]);
                loss_acc = Some(match loss_acc {
                    None => loss,
                    Some(acc) => tape.add(acc, loss),
                });
            }
            let total = loss_acc.expect("nonempty batch");
            let mean = tape.scale(total, 1.0 / chunk.len() as f32);
            epoch_loss += tape.value(mean).get(0, 0);
            batches += 1;
            let grads = tape.backward(mean);
            adam.step(model.params_mut(), |id| grads.of(vars[id.index()]));
        }
        let mean_epoch = epoch_loss / batches.max(1) as f32;
        history.epoch_loss.push(mean_epoch);
        if mean_epoch < cfg.loss_target {
            break;
        }
    }
    history
}

/// Evaluates `model` on `data`: returns `(truth, predictions, scores)`.
pub fn evaluate(
    model: &GnnClassifier,
    data: &[PreparedGraph],
) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
    let mut truth = Vec::with_capacity(data.len());
    let mut preds = Vec::with_capacity(data.len());
    let mut scores = Vec::with_capacity(data.len());
    for g in data {
        let s = model.score(g);
        truth.push(g.label);
        preds.push(usize::from(s >= 0.5));
        scores.push(s);
    }
    (truth, preds, scores)
}

/// Accuracy shortcut over [`evaluate`].
pub fn accuracy(model: &GnnClassifier, data: &[PreparedGraph]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let (truth, preds, _) = evaluate(model, data);
    truth.iter().zip(&preds).filter(|(t, p)| t == p).count() as f64 / data.len() as f64
}

/// Builds a synthetic, structurally separable graph dataset for tests and
/// smoke benchmarks: class 0 graphs are chains, class 1 graphs are chains
/// plus a dense hub (a "drain loop" caricature). Mirroring the real
/// pipeline's node features, column 0 carries the normalised out-degree
/// (structure made locally visible); the remaining columns are noise.
pub fn synthetic_structural_dataset(n: usize, dim: usize, seed: u64) -> Vec<PreparedGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let label = i % 2;
        let nodes = rng.random_range(6..12);
        let mut adj = Matrix::zeros(nodes, nodes);
        for v in 0..nodes - 1 {
            adj.set(v, v + 1, 1.0);
        }
        if label == 1 {
            // Hub: node 0 connects to everything and back — a dense,
            // loop-heavy motif chains lack.
            for v in 1..nodes {
                adj.set(0, v, 1.0);
                adj.set(v, 0, 1.0);
            }
        }
        let x = Matrix::from_fn(nodes, dim, |r, c| {
            if c == 0 {
                let deg: f32 = (0..nodes).map(|j| adj.get(r, j)).sum();
                (deg.min(8.0)) / 8.0
            } else {
                rng.random_range(0.0..0.3)
            }
        });
        out.push(PreparedGraph::from_parts(x, adj, label));
    }
    out
}

/// Builds one synthetic CFG-shaped sparse graph: a chain of `n` nodes with
/// `n` random shortcut/back edges (average out-degree ≈ 2, a quarter
/// down-weighted to 0.25 like unresolved jumps) plus `isolated` trailing
/// nodes with no edges at all, labelled `seed % 2`. This is the density
/// regime real contract CFGs live in; the dense-vs-sparse equivalence
/// tests and the E2 benchmark both draw from it.
pub fn synthetic_sparse_graph(n: usize, isolated: usize, dim: usize, seed: u64) -> PreparedGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let total = n + isolated;
    let mut edges = Vec::new();
    for v in 0..n.saturating_sub(1) as u32 {
        edges.push((v, v + 1, 1.0));
    }
    for _ in 0..n {
        let u = rng.random_range(0..n.max(1)) as u32;
        let v = rng.random_range(0..n.max(1)) as u32;
        let w = if rng.random_range(0..4) == 0 {
            0.25
        } else {
            1.0
        };
        edges.push((u, v, w));
    }
    let x = Matrix::from_fn(total, dim, |_, _| rng.random_range(-1.0..1.0));
    PreparedGraph::from_edges(x, edges, (seed % 2) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GnnConfig, GnnKind};

    #[test]
    fn training_reduces_loss_and_learns_structure() {
        let data = synthetic_structural_dataset(40, 6, 3);
        let mut model = GnnClassifier::new(GnnConfig::new(GnnKind::Gcn, 6).with_hidden(16));
        let cfg = TrainConfig {
            epochs: 60,
            batch_size: 8,
            lr: 2e-2,
            ..TrainConfig::default()
        };
        let hist = train(&mut model, &data, &cfg);
        let first = hist.epoch_loss[0];
        let last = hist.final_loss().unwrap();
        assert!(last < first, "loss went {first} -> {last}");
        let acc = accuracy(&model, &data);
        assert!(acc > 0.9, "train accuracy {acc}");
    }

    #[test]
    fn every_architecture_trains_on_structure() {
        let data = synthetic_structural_dataset(30, 6, 5);
        for kind in GnnKind::all() {
            let mut model =
                GnnClassifier::new(GnnConfig::new(kind, 6).with_hidden(12).with_seed(2));
            let cfg = TrainConfig {
                epochs: 60,
                batch_size: 10,
                lr: 2e-2,
                ..TrainConfig::default()
            };
            train(&mut model, &data, &cfg);
            let acc = accuracy(&model, &data);
            assert!(acc > 0.8, "{kind} reached only {acc}");
        }
    }

    #[test]
    fn empty_dataset_is_a_noop() {
        let mut model = GnnClassifier::new(GnnConfig::new(GnnKind::Gcn, 4));
        let hist = train(&mut model, &[], &TrainConfig::default());
        assert!(hist.epoch_loss.is_empty());
        assert_eq!(accuracy(&model, &[]), 0.0);
    }

    #[test]
    fn evaluate_shapes_align() {
        let data = synthetic_structural_dataset(10, 4, 1);
        let model = GnnClassifier::new(GnnConfig::new(GnnKind::Sage, 4));
        let (t, p, s) = evaluate(&model, &data);
        assert_eq!(t.len(), 10);
        assert_eq!(p.len(), 10);
        assert_eq!(s.len(), 10);
        assert!(s.iter().all(|x| (0.0..=1.0).contains(x)));
    }

    #[test]
    fn training_is_deterministic() {
        let data = synthetic_structural_dataset(16, 4, 9);
        let mk = || {
            let mut m = GnnClassifier::new(GnnConfig::new(GnnKind::Gin, 4).with_seed(4));
            train(
                &mut m,
                &data,
                &TrainConfig {
                    epochs: 5,
                    ..TrainConfig::default()
                },
            );
            m.score(&data[0])
        };
        assert_eq!(mk(), mk());
    }
}
