//! Graph neural networks over control-flow graphs.
//!
//! The paper's Phase 1 (§V-A) proposes detecting obfuscated contracts with
//! GNNs over CFGs, naming five architectures: **GCN** \[13\], **GAT** \[20\],
//! **GIN** \[21\], **TAG** \[5\] and **GraphSAGE** \[8\]. This crate implements
//! all five from scratch on the autodiff tensor substrate, with the exact
//! layer equations of the cited papers:
//!
//! * GCN:  `H' = σ(D̂^{-1/2} Â D̂^{-1/2} H W)`
//! * GAT:  multi-head masked-softmax attention, LeakyReLU(0.2), ELU
//! * GIN:  `H' = MLP((1 + ε) H + A H)`, ε learnable
//! * TAG:  `H' = σ(Σ_{k=0}^{K} P^k H W_k)`
//! * SAGE: `H' = σ([H ‖ mean(A, H)] W)`
//!
//! followed by a mean/max/sum readout and a linear head.
//!
//! # Sparse message passing
//!
//! Contract CFGs are sparse (a handful of successors per basic block), so
//! [`PreparedGraph`] keeps every aggregation operator in CSR form
//! (`scamdetect_tensor::CsrPair`) and the forward pass runs
//! `Tape::spmm` — `O(e · d)` per layer and `O(n + e)` per-graph memory.
//! GAT attention is computed edge-wise over the `A + I` structure
//! (per-edge score gather → per-row softmax → weighted neighbour gather),
//! so the `n x n` score matrix of the textbook formulation never exists.
//! This CSR path is what [`GnnClassifier::score`], [`train`] and the scan
//! pipeline always use; the dense `n x n` path ([`DenseGraph`],
//! [`GnnClassifier::score_dense`], [`train_dense`]) is retained as the
//! reference implementation for equivalence tests and as the baseline in
//! the E2 dense-vs-sparse benchmark. Both paths produce logits equal to
//! within float roundoff.
//!
//! # Mini-batch training
//!
//! Training packs each gradient step's graphs into one block-diagonal
//! [`GraphBatch`] — stacked node features, offset edge structure, segment
//! readouts pooling each graph's node range to its own logits row — so a
//! single tape forward/backward scores `K` graphs at once. [`train`] is
//! this batched path ([`BatchTrainConfig`] adds seeded shuffling, optional
//! length-bucketing and a per-batch node cap); [`train_unbatched`] keeps
//! the per-graph loop as the reference baseline. Per-graph logits are
//! independent of batch composition to float roundoff.
//!
//! # Examples
//!
//! Train a GCN on a structurally separable toy set:
//!
//! ```
//! use scamdetect_gnn::{
//!     trainer::{accuracy, synthetic_structural_dataset, train, BatchTrainConfig},
//!     GnnClassifier, GnnConfig, GnnKind,
//! };
//!
//! let data = synthetic_structural_dataset(20, 6, 1);
//! let mut model = GnnClassifier::new(GnnConfig::new(GnnKind::Gcn, 6).with_hidden(8));
//! let cfg = BatchTrainConfig { epochs: 40, lr: 2e-2, ..BatchTrainConfig::default() };
//! train(&mut model, &data, &cfg);
//! assert!(accuracy(&model, &data) > 0.5);
//! ```
//!
//! Score a whole batch in one forward pass:
//!
//! ```
//! use scamdetect_gnn::{GnnClassifier, GnnConfig, GnnKind, GraphBatch, PreparedGraph};
//! use scamdetect_tensor::Matrix;
//!
//! let g0 = PreparedGraph::from_parts(Matrix::identity(4), Matrix::zeros(4, 4), 0);
//! let g1 = PreparedGraph::from_parts(Matrix::zeros(3, 4), Matrix::zeros(3, 3), 1);
//! let model = GnnClassifier::new(GnnConfig::new(GnnKind::Gcn, 4));
//! let scores = model.score_batch(&GraphBatch::pack(&[&g0, &g1]));
//! assert_eq!(scores.len(), 2);
//! assert!((scores[0] - model.score(&g0)).abs() < 1e-6);
//! ```

pub mod graph_batch;
pub mod model;
pub mod trainer;

pub use graph_batch::{DenseGraph, GraphBatch, GraphError, PreparedGraph};
pub use model::{GnnClassifier, GnnConfig, GnnKind, Readout};
pub use trainer::{
    accuracy, evaluate, synthetic_sparse_graph, train, train_batched, train_dense, train_unbatched,
    BatchTrainConfig, TrainConfig, TrainHistory,
};
