//! The GNN graph classifier: five architectures, one interface.
//!
//! Message passing runs over CSR aggregators ([`PreparedGraph`]) by
//! default; the dense path ([`DenseGraph`]) is kept as the reference
//! implementation for equivalence tests and benchmarks.

use crate::graph_batch::{DenseGraph, GraphBatch, PreparedGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;
use scamdetect_tensor::io::{
    export_parameters, import_parameters, ByteReader, ByteWriter, CodecError, ParamIo, Sections,
};
use scamdetect_tensor::{init, Matrix, ParamId, Parameters, Tape, Var};
use std::sync::Arc;

/// Which message-passing architecture a classifier uses — exactly the
/// lineup the paper's Phase 1 commits to (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GnnKind {
    /// Graph convolutional network (Kipf & Welling).
    Gcn,
    /// Graph attention network (Veličković et al.), 2 heads.
    Gat,
    /// Graph isomorphism network (Xu et al.), learnable epsilon.
    Gin,
    /// Topology-adaptive GCN (Du et al.), K hops per layer.
    Tag,
    /// GraphSAGE (Hamilton et al.), mean aggregator.
    Sage,
}

impl GnnKind {
    /// All five architectures.
    pub fn all() -> [GnnKind; 5] {
        [
            GnnKind::Gcn,
            GnnKind::Gat,
            GnnKind::Gin,
            GnnKind::Tag,
            GnnKind::Sage,
        ]
    }

    /// Lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            GnnKind::Gcn => "gcn",
            GnnKind::Gat => "gat",
            GnnKind::Gin => "gin",
            GnnKind::Tag => "tag",
            GnnKind::Sage => "graphsage",
        }
    }

    /// Stable wire tag used by the model-artifact format. Never renumber.
    pub fn code(self) -> u8 {
        match self {
            GnnKind::Gcn => 0,
            GnnKind::Gat => 1,
            GnnKind::Gin => 2,
            GnnKind::Tag => 3,
            GnnKind::Sage => 4,
        }
    }

    /// Inverse of [`GnnKind::code`].
    pub fn from_code(code: u8) -> Option<GnnKind> {
        GnnKind::all().into_iter().find(|k| k.code() == code)
    }
}

impl std::fmt::Display for GnnKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Graph-level readout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Readout {
    /// Column-wise mean over node embeddings.
    Mean,
    /// Column-wise max.
    Max,
    /// Column-wise sum.
    Sum,
}

impl Readout {
    /// All readouts (ablation E8).
    pub fn all() -> [Readout; 3] {
        [Readout::Mean, Readout::Max, Readout::Sum]
    }

    /// Lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Readout::Mean => "mean",
            Readout::Max => "max",
            Readout::Sum => "sum",
        }
    }

    /// Stable wire tag used by the model-artifact format. Never renumber.
    pub fn code(self) -> u8 {
        match self {
            Readout::Mean => 0,
            Readout::Max => 1,
            Readout::Sum => 2,
        }
    }

    /// Inverse of [`Readout::code`].
    pub fn from_code(code: u8) -> Option<Readout> {
        Readout::all().into_iter().find(|r| r.code() == code)
    }
}

/// Model hyperparameters.
#[derive(Debug, Clone)]
pub struct GnnConfig {
    /// Architecture.
    pub kind: GnnKind,
    /// Input node-feature width.
    pub input_dim: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Number of message-passing layers.
    pub layers: usize,
    /// Readout.
    pub readout: Readout,
    /// Attention heads (GAT only).
    pub heads: usize,
    /// Hop count K (TAG only).
    pub tag_k: usize,
    /// Weight-init seed.
    pub seed: u64,
}

impl GnnConfig {
    /// Sensible defaults for `kind` at input width `input_dim`.
    pub fn new(kind: GnnKind, input_dim: usize) -> Self {
        GnnConfig {
            kind,
            input_dim,
            hidden: 32,
            layers: 2,
            readout: Readout::Mean,
            heads: 2,
            tag_k: 3,
            seed: 0xD5ED,
        }
    }

    /// Overrides the hidden width.
    pub fn with_hidden(mut self, hidden: usize) -> Self {
        self.hidden = hidden;
        self
    }

    /// Overrides the layer count.
    pub fn with_layers(mut self, layers: usize) -> Self {
        self.layers = layers;
        self
    }

    /// Overrides the readout.
    pub fn with_readout(mut self, readout: Readout) -> Self {
        self.readout = readout;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Per-layer parameters (ids into the shared store).
#[derive(Debug, Clone)]
enum LayerParams {
    Gcn {
        w: ParamId,
        b: ParamId,
    },
    Sage {
        w: ParamId,
        b: ParamId,
    },
    Gin {
        eps: ParamId,
        w1: ParamId,
        b1: ParamId,
        w2: ParamId,
        b2: ParamId,
    },
    Tag {
        ws: Vec<ParamId>,
        b: ParamId,
    },
    Gat {
        heads: Vec<GatHead>,
    },
}

#[derive(Debug, Clone)]
struct GatHead {
    w: ParamId,
    a_src: ParamId,
    a_dst: ParamId,
}

/// A borrowed graph (or packed batch of graphs) in any representation,
/// dispatched inside the forward pass at the aggregation and readout points
/// only — the surrounding layer algebra is shared.
#[derive(Clone, Copy)]
pub(crate) enum GraphRef<'a> {
    /// CSR message passing over one graph.
    Sparse(&'a PreparedGraph),
    /// Block-diagonal CSR message passing over `K` graphs at once (the
    /// default training path).
    Batch(&'a GraphBatch),
    /// Dense `n x n` fallback (reference/benchmark path).
    Dense(&'a DenseGraph),
}

impl<'a> GraphRef<'a> {
    fn x(&self) -> &'a Arc<Matrix> {
        match self {
            GraphRef::Sparse(g) => &g.x,
            GraphRef::Batch(b) => &b.x,
            GraphRef::Dense(g) => &g.x,
        }
    }

    pub(crate) fn label(&self) -> usize {
        match self {
            GraphRef::Sparse(g) => g.label,
            GraphRef::Batch(b) => {
                debug_assert_eq!(b.len(), 1, "label() on a multi-graph batch");
                b.labels()[0]
            }
            GraphRef::Dense(g) => g.label,
        }
    }
}

/// A trainable GNN graph classifier.
///
/// # Examples
///
/// ```
/// use scamdetect_gnn::{GnnClassifier, GnnConfig, GnnKind, PreparedGraph};
/// use scamdetect_tensor::Matrix;
///
/// let g = PreparedGraph::from_parts(Matrix::identity(4), Matrix::zeros(4, 4), 0);
/// let model = GnnClassifier::new(GnnConfig::new(GnnKind::Gcn, 4));
/// let score = model.score(&g);
/// assert!((0.0..=1.0).contains(&score));
/// ```
#[derive(Debug)]
pub struct GnnClassifier {
    config: GnnConfig,
    params: Parameters,
    layers: Vec<LayerParams>,
    head_w: ParamId,
    head_b: ParamId,
}

impl GnnClassifier {
    /// Allocates a model with seeded Xavier/He initialisation.
    pub fn new(config: GnnConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut params = Parameters::new();
        let mut layers = Vec::with_capacity(config.layers);
        let mut in_dim = config.input_dim;
        for l in 0..config.layers {
            let out_dim = config.hidden;
            let lp = match config.kind {
                GnnKind::Gcn => LayerParams::Gcn {
                    w: params.add(
                        format!("gcn{l}.w"),
                        init::xavier_uniform(in_dim, out_dim, &mut rng),
                    ),
                    b: params.add(format!("gcn{l}.b"), Matrix::zeros(1, out_dim)),
                },
                GnnKind::Sage => LayerParams::Sage {
                    w: params.add(
                        format!("sage{l}.w"),
                        init::xavier_uniform(2 * in_dim, out_dim, &mut rng),
                    ),
                    b: params.add(format!("sage{l}.b"), Matrix::zeros(1, out_dim)),
                },
                GnnKind::Gin => LayerParams::Gin {
                    eps: params.add(format!("gin{l}.eps"), Matrix::zeros(1, 1)),
                    w1: params.add(
                        format!("gin{l}.w1"),
                        init::he_normal(in_dim, out_dim, &mut rng),
                    ),
                    b1: params.add(format!("gin{l}.b1"), Matrix::zeros(1, out_dim)),
                    w2: params.add(
                        format!("gin{l}.w2"),
                        init::he_normal(out_dim, out_dim, &mut rng),
                    ),
                    b2: params.add(format!("gin{l}.b2"), Matrix::zeros(1, out_dim)),
                },
                GnnKind::Tag => LayerParams::Tag {
                    ws: (0..=config.tag_k)
                        .map(|k| {
                            params.add(
                                format!("tag{l}.w{k}"),
                                init::xavier_uniform(in_dim, out_dim, &mut rng),
                            )
                        })
                        .collect(),
                    b: params.add(format!("tag{l}.b"), Matrix::zeros(1, out_dim)),
                },
                GnnKind::Gat => {
                    let per_head = (out_dim / config.heads).max(1);
                    LayerParams::Gat {
                        heads: (0..config.heads)
                            .map(|h| GatHead {
                                w: params.add(
                                    format!("gat{l}.h{h}.w"),
                                    init::xavier_uniform(in_dim, per_head, &mut rng),
                                ),
                                a_src: params.add(
                                    format!("gat{l}.h{h}.asrc"),
                                    init::xavier_uniform(per_head, 1, &mut rng),
                                ),
                                a_dst: params.add(
                                    format!("gat{l}.h{h}.adst"),
                                    init::xavier_uniform(per_head, 1, &mut rng),
                                ),
                            })
                            .collect(),
                    }
                }
            };
            layers.push(lp);
            in_dim = match config.kind {
                GnnKind::Gat => (config.hidden / config.heads).max(1) * config.heads,
                _ => config.hidden,
            };
        }
        let head_w = params.add("head.w", init::xavier_uniform(in_dim, 2, &mut rng));
        let head_b = params.add("head.b", Matrix::zeros(1, 2));
        GnnClassifier {
            config,
            params,
            layers,
            head_w,
            head_b,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GnnConfig {
        &self.config
    }

    /// Model name (architecture name).
    pub fn name(&self) -> &'static str {
        self.config.kind.name()
    }

    /// Total trainable scalars.
    pub fn parameter_count(&self) -> usize {
        self.params.scalar_count()
    }

    /// Mutable access to the parameter store (the trainer steps it).
    pub(crate) fn params_mut(&mut self) -> &mut Parameters {
        &mut self.params
    }

    pub(crate) fn params(&self) -> &Parameters {
        &self.params
    }

    /// Forward pass; returns the logits `Var` — `1 x 2` for a single
    /// graph, `K x 2` for a [`GraphBatch`] (row `k` is graph `k`).
    ///
    /// Aggregation dispatches on the representation: CSR graphs and
    /// block-diagonal batches run [`Tape::spmm`] / edge-wise attention
    /// (batches additionally pool with the segment readouts); dense graphs
    /// run the original `n x n` algebra. Shared tensors enter the tape via
    /// interned `Arc` constants, so no path clones per-graph data per
    /// forward call.
    pub(crate) fn forward(&self, tape: &Tape, vars: &[Var], g: GraphRef<'_>) -> Var {
        let mut h = tape.constant_shared(g.x());

        // Aggregator application points, dispatched per representation.
        let agg_gcn = |v: Var| match g {
            GraphRef::Sparse(s) => tape.spmm(&s.agg_gcn, v),
            GraphRef::Batch(b) => tape.spmm(&b.agg_gcn, v),
            GraphRef::Dense(d) => tape.matmul(tape.constant_shared(&d.agg_gcn), v),
        };
        let agg_mean = |v: Var| match g {
            GraphRef::Sparse(s) => tape.spmm(&s.agg_mean, v),
            GraphRef::Batch(b) => tape.spmm(&b.agg_mean, v),
            GraphRef::Dense(d) => tape.matmul(tape.constant_shared(&d.agg_mean), v),
        };
        let agg_adj = |v: Var| match g {
            GraphRef::Sparse(s) => tape.spmm(&s.adj, v),
            GraphRef::Batch(b) => tape.spmm(&b.adj, v),
            GraphRef::Dense(d) => tape.matmul(tape.constant_shared(&d.adj), v),
        };

        for layer in &self.layers {
            h = match layer {
                LayerParams::Gcn { w, b } => {
                    let hw = tape.matmul(h, vars[w.index()]);
                    let agg = agg_gcn(hw);
                    let z = tape.add_bias(agg, vars[b.index()]);
                    tape.relu(z)
                }
                LayerParams::Sage { w, b } => {
                    let neigh = agg_mean(h);
                    let cat = tape.concat_cols(h, neigh);
                    let z = tape.matmul(cat, vars[w.index()]);
                    let z = tape.add_bias(z, vars[b.index()]);
                    tape.relu(z)
                }
                LayerParams::Gin {
                    eps,
                    w1,
                    b1,
                    w2,
                    b2,
                } => {
                    // (1 + eps) * h + A h
                    let one = tape.constant(Matrix::filled(1, 1, 1.0));
                    let one_eps = tape.add(one, vars[eps.index()]);
                    let self_term = tape.scalar_mul(one_eps, h);
                    let neigh = agg_adj(h);
                    let mixed = tape.add(self_term, neigh);
                    let z1 = tape.matmul(mixed, vars[w1.index()]);
                    let z1 = tape.add_bias(z1, vars[b1.index()]);
                    let z1 = tape.relu(z1);
                    let z2 = tape.matmul(z1, vars[w2.index()]);
                    let z2 = tape.add_bias(z2, vars[b2.index()]);
                    tape.relu(z2)
                }
                LayerParams::Tag { ws, b } => {
                    // sum_k  P^k h W_k  (P = gcn-normalised adjacency).
                    let mut acc: Option<Var> = None;
                    let mut prop = h; // P^0 h = h
                    for (k, w) in ws.iter().enumerate() {
                        if k > 0 {
                            prop = agg_gcn(prop);
                        }
                        let term = tape.matmul(prop, vars[w.index()]);
                        acc = Some(match acc {
                            None => term,
                            Some(a) => tape.add(a, term),
                        });
                    }
                    let z = tape.add_bias(acc.expect("K >= 0 gives one term"), vars[b.index()]);
                    tape.relu(z)
                }
                LayerParams::Gat { heads } => {
                    let mut outs: Option<Var> = None;
                    for head in heads {
                        let z = tape.matmul(h, vars[head.w.index()]);
                        let s_src = tape.matmul(z, vars[head.a_src.index()]); // n x 1
                        let s_dst = tape.matmul(z, vars[head.a_dst.index()]); // n x 1
                                                                              // Edge-wise attention over A + I only: the n x n
                                                                              // score matrix is never formed. Softmax normalises
                                                                              // per CSR row, so over a block-diagonal batch
                                                                              // structure it is per-segment automatically.
                        let sparse_attention = |mask: &Arc<scamdetect_tensor::CsrMatrix>| {
                            let e = tape.edge_score_sum(s_src, s_dst, mask);
                            let e = tape.leaky_relu(e, 0.2);
                            let alpha = tape.edge_softmax(e, mask);
                            tape.edge_gather(alpha, z, mask)
                        };
                        let ho = match g {
                            GraphRef::Sparse(s) => sparse_attention(&s.mask),
                            GraphRef::Batch(b) => sparse_attention(&b.mask),
                            GraphRef::Dense(d) => {
                                let e = tape.outer_sum(s_src, s_dst); // n x n
                                let e = tape.leaky_relu(e, 0.2);
                                let alpha = tape.masked_softmax_rows(e, &d.mask);
                                tape.matmul(alpha, z)
                            }
                        };
                        let ho = tape.elu(ho, 1.0);
                        outs = Some(match outs {
                            None => ho,
                            Some(prev) => tape.concat_cols(prev, ho),
                        });
                    }
                    outs.expect("at least one head")
                }
            };
        }

        // Readout: one pooled row per graph. Batches pool each node
        // segment independently; single graphs pool the whole matrix.
        let pooled = match g {
            GraphRef::Batch(b) => match self.config.readout {
                Readout::Mean => tape.segment_mean_rows(h, b.offsets()),
                Readout::Max => tape.segment_max_rows(h, b.offsets()),
                Readout::Sum => tape.segment_sum_rows(h, b.offsets()),
            },
            _ => match self.config.readout {
                Readout::Mean => tape.mean_rows(h),
                Readout::Max => tape.max_rows(h),
                Readout::Sum => tape.sum_rows(h),
            },
        };
        let logits = tape.matmul(pooled, vars[self.head_w.index()]);
        tape.add_bias(logits, vars[self.head_b.index()])
    }

    fn score_ref(&self, g: GraphRef<'_>) -> f64 {
        let tape = Tape::new();
        let vars = self.params.bind(&tape);
        let logits = self.forward(&tape, &vars, g);
        let probs = scamdetect_tensor::tape::softmax_rows(&tape.value(logits));
        probs.get(0, 1) as f64
    }

    /// P(malicious) for one graph (CSR path).
    pub fn score(&self, g: &PreparedGraph) -> f64 {
        self.score_ref(GraphRef::Sparse(g))
    }

    /// P(malicious) through the dense fallback path.
    pub fn score_dense(&self, g: &DenseGraph) -> f64 {
        self.score_ref(GraphRef::Dense(g))
    }

    /// P(malicious) for every graph of a packed batch, in packing order —
    /// one tape forward instead of `K`.
    ///
    /// Scores agree with per-graph [`GnnClassifier::score`] to float
    /// roundoff: the block-diagonal operators keep every graph's rows
    /// independent, and the per-segment softmax/readout never mix graphs.
    pub fn score_batch(&self, batch: &GraphBatch) -> Vec<f64> {
        let tape = Tape::new();
        let vars = self.params.bind(&tape);
        let logits = self.forward(&tape, &vars, GraphRef::Batch(batch));
        let probs = scamdetect_tensor::tape::softmax_rows(&tape.value(logits));
        (0..batch.len()).map(|k| probs.get(k, 1) as f64).collect()
    }

    /// Hard prediction (threshold 0.5).
    pub fn predict(&self, g: &PreparedGraph) -> usize {
        usize::from(self.score(g) >= 0.5)
    }
}

/// Decode-side bounds on the architecture a serialized [`GnnConfig`] may
/// describe: generous multiples of anything this framework trains, tight
/// enough that a crafted artifact cannot coerce the importer into
/// allocating absurd weight matrices.
const MAX_GNN_DIM: usize = 1 << 14;
const MAX_GNN_LAYERS: usize = 64;
const MAX_GNN_HEADS: usize = 32;
const MAX_GNN_TAG_K: usize = 32;

impl GnnConfig {
    /// Serializes the configuration (stable wire tags, little-endian).
    pub fn write_into(&self, w: &mut ByteWriter) {
        w.put_u8(self.kind.code());
        w.put_usize(self.input_dim);
        w.put_usize(self.hidden);
        w.put_usize(self.layers);
        w.put_u8(self.readout.code());
        w.put_usize(self.heads);
        w.put_usize(self.tag_k);
        w.put_u64(self.seed);
    }

    /// Reads a configuration written by [`GnnConfig::write_into`],
    /// validating tags and architecture bounds.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation, an unknown architecture/readout tag,
    /// or out-of-bounds dimensions.
    pub fn read_from(r: &mut ByteReader<'_>) -> Result<GnnConfig, CodecError> {
        let kind =
            GnnKind::from_code(r.get_u8("gnn architecture tag")?).ok_or(CodecError::Malformed {
                context: "unknown gnn architecture tag",
            })?;
        let input_dim = r.get_usize("gnn input dim")?;
        let hidden = r.get_usize("gnn hidden width")?;
        let layers = r.get_usize("gnn layer count")?;
        let readout =
            Readout::from_code(r.get_u8("gnn readout tag")?).ok_or(CodecError::Malformed {
                context: "unknown gnn readout tag",
            })?;
        let heads = r.get_usize("gnn head count")?;
        let tag_k = r.get_usize("gnn tag hop count")?;
        let seed = r.get_u64("gnn seed")?;
        let plausible = (1..=MAX_GNN_DIM).contains(&input_dim)
            && (1..=MAX_GNN_DIM).contains(&hidden)
            && (1..=MAX_GNN_LAYERS).contains(&layers)
            && (1..=MAX_GNN_HEADS).contains(&heads)
            && tag_k <= MAX_GNN_TAG_K;
        if !plausible {
            return Err(CodecError::Malformed {
                context: "gnn config: implausible architecture dimensions",
            });
        }
        Ok(GnnConfig {
            kind,
            input_dim,
            hidden,
            layers,
            readout,
            heads,
            tag_k,
            seed,
        })
    }
}

impl ParamIo for GnnClassifier {
    fn export_state(&self, sections: &mut Sections) {
        let mut w = ByteWriter::new();
        self.config.write_into(&mut w);
        sections.push("gnn.config", w.into_bytes());
        export_parameters(&self.params, "gnn.tensor.", sections);
    }

    fn import_state(&mut self, sections: &Sections) -> Result<(), CodecError> {
        let mut r = ByteReader::new(sections.require("gnn.config")?);
        let config = GnnConfig::read_from(&mut r)?;
        if !r.is_done() {
            return Err(CodecError::Malformed {
                context: "gnn.config: trailing bytes",
            });
        }
        // Rebuild the architecture from the config — layer layout and
        // parameter names are a pure function of it — then overwrite every
        // tensor, shape-checked, from its named section.
        let mut fresh = GnnClassifier::new(config);
        import_parameters(&mut fresh.params, "gnn.tensor.", sections)?;
        *self = fresh;
        Ok(())
    }

    fn state_matches_dim(&self, dim: usize) -> bool {
        self.config.input_dim == dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_graph(label: usize) -> PreparedGraph {
        let x = Matrix::from_fn(4, 6, |r, c| ((r + c) % 3) as f32 * 0.5);
        let mut adj = Matrix::zeros(4, 4);
        adj.set(0, 1, 1.0);
        adj.set(1, 2, 1.0);
        adj.set(2, 3, 1.0);
        adj.set(3, 1, 1.0);
        PreparedGraph::from_parts(x, adj, label)
    }

    #[test]
    fn all_architectures_forward() {
        for kind in GnnKind::all() {
            let model = GnnClassifier::new(GnnConfig::new(kind, 6));
            let s = model.score(&toy_graph(1));
            assert!((0.0..=1.0).contains(&s), "{kind}: {s}");
            assert!(model.parameter_count() > 0);
        }
    }

    #[test]
    fn readouts_all_work() {
        for readout in Readout::all() {
            let model = GnnClassifier::new(GnnConfig::new(GnnKind::Gcn, 6).with_readout(readout));
            let s = model.score(&toy_graph(0));
            assert!(s.is_finite(), "{}", readout.name());
        }
    }

    #[test]
    fn deeper_models_have_more_parameters() {
        let shallow = GnnClassifier::new(GnnConfig::new(GnnKind::Gcn, 6).with_layers(1));
        let deep = GnnClassifier::new(GnnConfig::new(GnnKind::Gcn, 6).with_layers(3));
        assert!(deep.parameter_count() > shallow.parameter_count());
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = GnnClassifier::new(GnnConfig::new(GnnKind::Gat, 6).with_seed(5));
        let b = GnnClassifier::new(GnnConfig::new(GnnKind::Gat, 6).with_seed(5));
        let g = toy_graph(0);
        assert_eq!(a.score(&g), b.score(&g));
    }

    #[test]
    fn isolated_graph_still_scores() {
        // No edges at all: message passing must degrade gracefully.
        let g = PreparedGraph::from_parts(Matrix::identity(3), Matrix::zeros(3, 3), 0);
        for kind in GnnKind::all() {
            let model = GnnClassifier::new(GnnConfig::new(kind, 3));
            assert!(model.score(&g).is_finite(), "{kind}");
        }
    }

    #[test]
    fn batched_scores_match_per_graph_for_every_architecture() {
        let a = toy_graph(1);
        let b = PreparedGraph::from_parts(Matrix::zeros(3, 6), Matrix::zeros(3, 3), 0);
        let c = {
            let mut adj = Matrix::zeros(2, 2);
            adj.set(0, 1, 1.0);
            PreparedGraph::from_parts(Matrix::from_fn(2, 6, |r, c| (r + c) as f32 * 0.1), adj, 1)
        };
        let batch = GraphBatch::pack(&[&a, &b, &c]);
        for kind in GnnKind::all() {
            for readout in Readout::all() {
                let model =
                    GnnClassifier::new(GnnConfig::new(kind, 6).with_readout(readout).with_seed(8));
                let batched = model.score_batch(&batch);
                let single = [model.score(&a), model.score(&b), model.score(&c)];
                for (k, (bs, ss)) in batched.iter().zip(&single).enumerate() {
                    assert!(
                        (bs - ss).abs() < 1e-6,
                        "{kind}/{}: graph {k} batched {bs} vs single {ss}",
                        readout.name()
                    );
                }
            }
        }
    }

    #[test]
    fn every_architecture_state_round_trips_bit_for_bit() {
        let g = toy_graph(1);
        for kind in GnnKind::all() {
            let model = GnnClassifier::new(
                GnnConfig::new(kind, 6)
                    .with_hidden(12)
                    .with_readout(Readout::Max)
                    .with_seed(41),
            );
            let mut sections = Sections::new();
            model.export_state(&mut sections);
            // A differently-seeded, differently-shaped fresh model must be
            // fully overwritten by the import.
            let mut restored = GnnClassifier::new(GnnConfig::new(GnnKind::Gcn, 3).with_seed(9));
            restored.import_state(&sections).expect("import succeeds");
            assert_eq!(restored.name(), model.name());
            assert_eq!(restored.config().hidden, 12);
            assert_eq!(
                model.score(&g).to_bits(),
                restored.score(&g).to_bits(),
                "{kind}: score drifted through persistence"
            );
        }
    }

    #[test]
    fn import_rejects_corrupt_config() {
        let model = GnnClassifier::new(GnnConfig::new(GnnKind::Gin, 6));
        let mut sections = Sections::new();
        model.export_state(&mut sections);
        // An unknown architecture tag must fail typed, not panic.
        let mut bad = Sections::new();
        for (name, bytes) in sections.iter() {
            let mut payload = bytes.to_vec();
            if name == "gnn.config" {
                payload[0] = 0xFF;
            }
            bad.push(name, payload);
        }
        let mut target = GnnClassifier::new(GnnConfig::new(GnnKind::Gcn, 6));
        assert!(target.import_state(&bad).is_err());
    }

    #[test]
    fn wire_codes_are_stable_and_invertible() {
        for kind in GnnKind::all() {
            assert_eq!(GnnKind::from_code(kind.code()), Some(kind));
        }
        for readout in Readout::all() {
            assert_eq!(Readout::from_code(readout.code()), Some(readout));
        }
        assert_eq!(GnnKind::from_code(200), None);
        assert_eq!(Readout::from_code(200), None);
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = GnnKind::all().iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
