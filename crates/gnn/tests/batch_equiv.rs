//! Equivalence of block-diagonal mini-batch execution against the
//! per-graph sparse path: packing K graphs into one [`GraphBatch`] must
//! not change any graph's logits, for any architecture, any readout, any
//! batch composition — including K = 1, graphs with no edges at all, and
//! batches mixing wildly different node counts.

use proptest::prelude::*;
use scamdetect_gnn::{
    synthetic_sparse_graph, train_batched, train_unbatched, BatchTrainConfig, GnnClassifier,
    GnnConfig, GnnKind, GraphBatch, PreparedGraph, Readout,
};
use scamdetect_tensor::Matrix;

/// An edge-free graph (isolated nodes only).
fn edgeless(nodes: usize, dim: usize, label: usize) -> PreparedGraph {
    let x = Matrix::from_fn(nodes, dim, |r, c| ((r * dim + c) % 5) as f32 * 0.3 - 0.6);
    PreparedGraph::from_edges(x, Vec::new(), label)
}

fn assert_batch_matches_per_graph(graphs: &[PreparedGraph], tag: &str) {
    let refs: Vec<&PreparedGraph> = graphs.iter().collect();
    let batch = GraphBatch::pack(&refs);
    for kind in GnnKind::all() {
        for readout in Readout::all() {
            let model = GnnClassifier::new(
                GnnConfig::new(kind, graphs[0].feature_dim())
                    .with_hidden(8)
                    .with_readout(readout)
                    .with_seed(13),
            );
            let batched = model.score_batch(&batch);
            assert_eq!(batched.len(), graphs.len());
            for (k, g) in graphs.iter().enumerate() {
                let single = model.score(g);
                assert!(
                    (batched[k] - single).abs() < 1e-4,
                    "{tag}/{kind}/{}: graph {k} batched {} vs single {single}",
                    readout.name(),
                    batched[k],
                );
            }
        }
    }
}

#[test]
fn all_architectures_match_across_mixed_batches() {
    // Mixed node counts (2..45 nodes), isolated tails, both labels.
    let graphs: Vec<PreparedGraph> = (0..6)
        .map(|i| synthetic_sparse_graph(2 + 8 * i, i % 3, 6, 101 + i as u64))
        .collect();
    assert_batch_matches_per_graph(&graphs, "mixed");
}

#[test]
fn batch_of_one_matches_single_graph() {
    let g = synthetic_sparse_graph(19, 1, 6, 77);
    assert_batch_matches_per_graph(std::slice::from_ref(&g), "k1");
}

#[test]
fn empty_edge_graphs_batch_correctly() {
    // All-edgeless, and edgeless mixed with connected graphs: attention
    // rows of isolated nodes must stay empty per graph, not borrow mass
    // from a neighbour block.
    let all_edgeless: Vec<PreparedGraph> = (0..3).map(|i| edgeless(3 + i, 6, i % 2)).collect();
    assert_batch_matches_per_graph(&all_edgeless, "edgeless");

    let mixed = vec![
        edgeless(4, 6, 0),
        synthetic_sparse_graph(12, 0, 6, 5),
        edgeless(1, 6, 1),
        synthetic_sparse_graph(7, 2, 6, 9),
    ];
    assert_batch_matches_per_graph(&mixed, "edgeless-mixed");
}

#[test]
fn batched_training_final_scores_match_unbatched() {
    // Beyond matching forward logits, a full batched training run must land
    // on (numerically) the same model as the per-graph reference.
    let data: Vec<PreparedGraph> = (0..10)
        .map(|i| synthetic_sparse_graph(6 + 2 * i, i % 2, 6, 31 + i as u64))
        .collect();
    let cfg = BatchTrainConfig {
        epochs: 3,
        batch_size: 4,
        lr: 1e-2,
        loss_target: 0.0,
        ..BatchTrainConfig::default()
    };
    for kind in GnnKind::all() {
        let mut mb = GnnClassifier::new(GnnConfig::new(kind, 6).with_hidden(8).with_seed(2));
        let mut mu = GnnClassifier::new(GnnConfig::new(kind, 6).with_hidden(8).with_seed(2));
        train_batched(&mut mb, &data, &cfg);
        train_unbatched(&mut mu, &data, &cfg.unbatched());
        for g in &data {
            let sb = mb.score(g);
            let su = mu.score(g);
            assert!((sb - su).abs() < 1e-3, "{kind}: {sb} vs {su}");
        }
    }
}

proptest! {
    /// Random batches: K graphs of random sizes (some edge-free via a tiny
    /// node count with isolated tails), batched logits equal the per-graph
    /// sparse logits on the two architectures most sensitive to structure
    /// handling (GAT: per-segment softmax; GCN: spectral normalisation).
    #[test]
    fn random_batches_score_equivalently(
        seeds in proptest::collection::vec(any::<u64>(), 1..6),
        base in 1usize..16,
        isolated in 0usize..3,
    ) {
        let graphs: Vec<PreparedGraph> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| synthetic_sparse_graph(base + 3 * i, (isolated + i) % 4, 6, s))
            .collect();
        let refs: Vec<&PreparedGraph> = graphs.iter().collect();
        let batch = GraphBatch::pack(&refs);
        for kind in [GnnKind::Gat, GnnKind::Gcn] {
            let model = GnnClassifier::new(GnnConfig::new(kind, 6).with_hidden(8));
            let batched = model.score_batch(&batch);
            for (k, g) in graphs.iter().enumerate() {
                let single = model.score(g);
                prop_assert!(
                    (batched[k] - single).abs() < 1e-4,
                    "{}: graph {} batched {} vs single {}",
                    kind, k, batched[k], single
                );
            }
        }
    }
}
