//! End-to-end equivalence of the CSR execution path against the dense
//! reference: every architecture, forward logits and training dynamics.

use proptest::prelude::*;
use scamdetect_gnn::{
    synthetic_sparse_graph, train_dense, train_unbatched, GnnClassifier, GnnConfig, GnnKind,
    PreparedGraph, Readout, TrainConfig,
};

#[test]
fn all_architectures_match_dense_logits() {
    for kind in GnnKind::all() {
        for (n, isolated) in [(6usize, 0usize), (17, 2), (40, 1)] {
            let g = synthetic_sparse_graph(n, isolated, 6, 11 + n as u64);
            let d = g.to_dense();
            for readout in Readout::all() {
                let model = GnnClassifier::new(
                    GnnConfig::new(kind, 6)
                        .with_hidden(8)
                        .with_readout(readout)
                        .with_seed(9),
                );
                let sparse = model.score(&g);
                let dense = model.score_dense(&d);
                assert!(
                    (sparse - dense).abs() < 1e-4,
                    "{kind}/{}: sparse {sparse} vs dense {dense} (n={n})",
                    readout.name()
                );
            }
        }
    }
}

#[test]
fn training_dynamics_match_dense_path() {
    // Same model seed, same data, same shuffle seed: the per-epoch losses
    // of the CSR path and the dense path must track each other closely.
    let data: Vec<PreparedGraph> = (0..8)
        .map(|i| synthetic_sparse_graph(8 + i, i % 2, 6, i as u64))
        .collect();
    let dense: Vec<_> = data.iter().map(|g| g.to_dense()).collect();
    let cfg = TrainConfig {
        epochs: 4,
        batch_size: 4,
        lr: 1e-2,
        loss_target: 0.0,
        ..TrainConfig::default()
    };
    for kind in GnnKind::all() {
        let mut ms = GnnClassifier::new(GnnConfig::new(kind, 6).with_hidden(8).with_seed(3));
        let mut md = GnnClassifier::new(GnnConfig::new(kind, 6).with_hidden(8).with_seed(3));
        let hs = train_unbatched(&mut ms, &data, &cfg);
        let hd = train_dense(&mut md, &dense, &cfg);
        assert_eq!(hs.epoch_loss.len(), hd.epoch_loss.len());
        for (ls, ld) in hs.epoch_loss.iter().zip(&hd.epoch_loss) {
            assert!(
                (ls - ld).abs() < 1e-3,
                "{kind}: epoch loss diverged, sparse {ls} vs dense {ld}"
            );
        }
        // Post-training scores agree too.
        let ss = ms.score(&data[0]);
        let sd = md.score_dense(&dense[0]);
        assert!((ss - sd).abs() < 1e-3, "{kind}: {ss} vs {sd}");
    }
}

proptest! {
    /// Random sparse graphs (including isolated nodes) score identically
    /// through both paths for the architecture most sensitive to the mask
    /// semantics (GAT) and the spectral one (GCN).
    #[test]
    fn random_graphs_score_equivalently(
        n in 2usize..20,
        isolated in 0usize..3,
        seed in any::<u64>(),
    ) {
        let g = synthetic_sparse_graph(n, isolated, 6, seed);
        let d = g.to_dense();
        for kind in [GnnKind::Gat, GnnKind::Gcn] {
            let model = GnnClassifier::new(GnnConfig::new(kind, 6).with_hidden(8));
            let sparse = model.score(&g);
            let dense = model.score_dense(&d);
            prop_assert!((sparse - dense).abs() < 1e-4,
                "{kind}: sparse {sparse} vs dense {dense}");
        }
    }
}
