//! Property-based equivalence of the CSR kernels against the dense
//! reference implementations, plus a finite-difference gradient check for
//! `Tape::spmm`.
//!
//! Graphs are drawn as random edge lists over small node counts, which
//! naturally covers isolated nodes (rows with no edges → fully-masked rows
//! in the dense formulation) and duplicate/parallel edges.

use proptest::prelude::*;
use scamdetect_tensor::{CsrMatrix, CsrPair, Matrix, Tape};
use std::sync::Arc;

/// Deterministically expands packed `(u64)` draws into an edge list over an
/// `n x n` structure with weights in (0, 1].
fn edges_from_seeds(n: usize, seeds: &[u64]) -> Vec<(u32, u32, f32)> {
    seeds
        .iter()
        .map(|&s| {
            let u = (s % n as u64) as u32;
            let v = ((s >> 16) % n as u64) as u32;
            let w = ((s >> 32) % 1000) as f32 / 1000.0 + 0.001;
            (u, v, w)
        })
        .collect()
}

/// Random dense feature matrix in [-1, 1), deterministic per seed.
fn features_from_seeds(rows: usize, cols: usize, seed: u64) -> Matrix {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(-1.0..1.0))
}

proptest! {
    #[test]
    fn spmm_matches_dense_matmul(
        n in 1usize..24,
        d in 1usize..8,
        seeds in proptest::collection::vec(any::<u64>(), 0..64),
        fseed in any::<u64>(),
    ) {
        let edges = edges_from_seeds(n, &seeds);
        let a = CsrMatrix::from_edges(n, n, &edges);
        let x = features_from_seeds(n, d, fseed);
        let sparse = a.spmm(&x);
        let dense = a.to_dense().matmul(&x);
        prop_assert!(sparse.max_abs_diff(&dense) < 1e-5,
            "spmm diverged: {} nnz, n={n}, d={d}", a.nnz());
    }

    #[test]
    fn csr_transpose_matches_dense_transpose(
        n in 1usize..24,
        seeds in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let a = CsrMatrix::from_edges(n, n, &edges_from_seeds(n, &seeds));
        prop_assert!(a.transpose().to_dense().max_abs_diff(&a.to_dense().transpose()) == 0.0);
    }

    /// The edge-wise GAT pipeline (score gather → per-row softmax →
    /// weighted gather) must equal the dense outer-sum + masked softmax +
    /// matmul on the same structure, including isolated nodes (empty CSR
    /// rows == fully-masked dense rows, which produce all-zero output).
    #[test]
    fn sparse_gat_attention_matches_masked_softmax_rows(
        n in 1usize..16,
        d in 1usize..6,
        seeds in proptest::collection::vec(any::<u64>(), 0..40),
        fseed in any::<u64>(),
    ) {
        let structure = Arc::new(CsrMatrix::from_edges(n, n, &edges_from_seeds(n, &seeds)));
        let mask = Arc::new(structure.to_dense());
        let s_src = features_from_seeds(n, 1, fseed ^ 0xA5A5);
        let s_dst = features_from_seeds(n, 1, fseed ^ 0x5A5A);
        let z = features_from_seeds(n, d, fseed);

        let dt = Tape::new();
        let (ud, vd, zd) = (dt.leaf(s_src.clone()), dt.leaf(s_dst.clone()), dt.leaf(z.clone()));
        let e = dt.outer_sum(ud, vd);
        let e = dt.leaky_relu(e, 0.2);
        let alpha = dt.masked_softmax_rows(e, &mask);
        let outd = dt.matmul(alpha, zd);

        let st = Tape::new();
        let (us, vs, zs) = (st.leaf(s_src), st.leaf(s_dst), st.leaf(z));
        let e = st.edge_score_sum(us, vs, &structure);
        let e = st.leaky_relu(e, 0.2);
        let alpha = st.edge_softmax(e, &structure);
        let outs = st.edge_gather(alpha, zs, &structure);

        prop_assert!(dt.value(outd).max_abs_diff(&st.value(outs)) < 1e-5);

        // Backward equivalence for all three inputs.
        let gd = dt.backward(dt.sum_all(outd));
        let gs = st.backward(st.sum_all(outs));
        prop_assert!(gd.of(ud).unwrap().max_abs_diff(gs.of(us).unwrap()) < 1e-4);
        prop_assert!(gd.of(vd).unwrap().max_abs_diff(gs.of(vs).unwrap()) < 1e-4);
        prop_assert!(gd.of(zd).unwrap().max_abs_diff(gs.of(zs).unwrap()) < 1e-4);
    }

    /// A node with no incident structure entries must receive an all-zero
    /// attention row through the sparse path, exactly like the dense
    /// fully-masked-row convention.
    #[test]
    fn isolated_nodes_get_zero_attention(
        n in 2usize..12,
        d in 1usize..5,
        fseed in any::<u64>(),
    ) {
        // Structure: every node except the last attends to itself.
        let edges: Vec<(u32, u32, f32)> =
            (0..n as u32 - 1).map(|i| (i, i, 1.0)).collect();
        let structure = Arc::new(CsrMatrix::from_edges(n, n, &edges));
        let tape = Tape::new();
        let u = tape.leaf(features_from_seeds(n, 1, fseed));
        let v = tape.leaf(features_from_seeds(n, 1, !fseed));
        let z = tape.leaf(features_from_seeds(n, d, fseed ^ 7));
        let e = tape.edge_score_sum(u, v, &structure);
        let alpha = tape.edge_softmax(e, &structure);
        let out = tape.edge_gather(alpha, z, &structure);
        let m = tape.value(out);
        for c in 0..d {
            prop_assert_eq!(m.get(n - 1, c), 0.0);
        }
    }
}

/// Finite-difference gradient check for `Tape::spmm`: perturb entries of
/// the dense operand and compare the numerical slope of a nonlinear scalar
/// loss against the analytic `Aᵀ @ g_out`.
#[test]
fn spmm_gradient_matches_finite_differences() {
    let n = 5;
    let d = 3;
    let edges = vec![
        (0u32, 1u32, 0.7f32),
        (1, 2, 1.0),
        (2, 0, 0.3),
        (3, 3, 2.0),
        (0, 4, 0.5),
        // node 4 is a sink: empty row in A.
    ];
    let pair = CsrPair::new(CsrMatrix::from_edges(n, n, &edges));
    let x0 = features_from_seeds(n, d, 0xFEED);

    let eval = |x: &Matrix| -> f32 {
        let tape = Tape::new();
        let xv = tape.leaf(x.clone());
        let out = tape.spmm(&pair, xv);
        let out = tape.tanh(out); // nonlinearity so the grad depends on x
        tape.value(tape.sum_all(out)).get(0, 0)
    };

    let tape = Tape::new();
    let xv = tape.leaf(x0.clone());
    let out = tape.spmm(&pair, xv);
    let out = tape.tanh(out);
    let loss = tape.sum_all(out);
    let grads = tape.backward(loss);
    let gx = grads.of(xv).unwrap();

    let eps = 1e-2;
    for r in 0..n {
        for c in 0..d {
            let mut xp = x0.clone();
            xp.set(r, c, xp.get(r, c) + eps);
            let mut xm = x0.clone();
            xm.set(r, c, xm.get(r, c) - eps);
            let num = (eval(&xp) - eval(&xm)) / (2.0 * eps);
            let ana = gx.get(r, c);
            assert!(
                (num - ana).abs() < 5e-3,
                "d/dx[{r},{c}]: numeric {num} vs analytic {ana}"
            );
        }
    }
}
