//! Row-major dense `f32` matrices.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A dense, row-major matrix of `f32`.
///
/// Shapes are validated eagerly: mismatched operands panic with a message
/// naming the operation, which surfaces model-wiring bugs at the call site
/// instead of producing silent garbage.
///
/// # Examples
///
/// ```
/// use scamdetect_tensor::Matrix;
///
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// assert_eq!(a.transpose().get(0, 1), 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(6) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>9.4} ", self.get(r, c))?;
            }
            if self.cols > 8 {
                write!(f, "…")?;
            }
            writeln!(f)?;
        }
        if self.rows > 6 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a single-row matrix from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Matrix::from_vec(1, values.len(), values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Entry at (`r`,`c`).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets entry (`r`,`c`) to `v`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self @ rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} @ {}x{} shape mismatch",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (n, k, m) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(n, m);
        // ikj loop order: stream over rhs rows for cache friendliness.
        for i in 0..n {
            for p in 0..k {
                let a = self.data[i * k + p];
                if a == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[p * m..(p + 1) * m];
                let orow = &mut out.data[i * m..(i + 1) * m];
                for j in 0..m {
                    orow[j] += a * rrow[j];
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise combination of two equally shaped matrices.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "zip: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a * b)
    }

    /// Multiplies every entry by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// In-place accumulation `self += rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all entries (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Column-wise sums as a `1 x cols` matrix.
    pub fn col_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Row-wise sums as a `rows x 1` matrix.
    pub fn row_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = self.row(r).iter().sum();
        }
        out
    }

    /// Maximum absolute difference to `rhs`; `f32::INFINITY` on shape
    /// mismatch. Intended for tests.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f32 {
        if self.shape() != rhs.shape() {
            return f32::INFINITY;
        }
        self.data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Index of the largest entry in row `r`.
    pub fn row_argmax(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        best
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a + b)
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a - b)
    }
}

impl Mul<f32> for &Matrix {
    type Output = Matrix;
    fn mul(self, s: f32) -> Matrix {
        self.scale(s)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert_eq!(z.sum(), 0.0);
        let f = Matrix::filled(2, 2, 1.5);
        assert_eq!(f.sum(), 6.0);
        let id = Matrix::identity(3);
        assert_eq!(id.get(1, 1), 1.0);
        assert_eq!(id.get(0, 1), 0.0);
        let g = Matrix::from_fn(2, 2, |r, c| (r * 10 + c) as f32);
        assert_eq!(g.get(1, 1), 11.0);
        assert_eq!(Matrix::row_vector(&[1.0, 2.0]).shape(), (1, 2));
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.get(0, 0), 58.0);
        assert_eq!(c.get(0, 1), 64.0);
        assert_eq!(c.get(1, 0), 139.0);
        assert_eq!(c.get(1, 1), 154.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), a.get(1, 2));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(1, 3, vec![1., -2., 3.]);
        let b = Matrix::from_vec(1, 3, vec![2., 2., 2.]);
        assert_eq!((&a + &b).as_slice(), &[3., 0., 5.]);
        assert_eq!((&a - &b).as_slice(), &[-1., -4., 1.]);
        assert_eq!(a.hadamard(&b).as_slice(), &[2., -4., 6.]);
        assert_eq!((&a * 2.0).as_slice(), &[2., -4., 6.]);
        assert_eq!((-&a).as_slice(), &[-1., 2., -3.]);
        assert_eq!(a.map(f32::abs).as_slice(), &[1., 2., 3.]);
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.col_sums().as_slice(), &[4., 6.]);
        assert_eq!(a.row_sums().as_slice(), &[3., 7.]);
        assert!((a.norm() - 30f32.sqrt()).abs() < 1e-6);
        assert_eq!(a.row_argmax(1), 1);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = Matrix::zeros(1, 2);
        a.add_assign(&Matrix::row_vector(&[1.0, 2.0]));
        a.add_assign(&Matrix::row_vector(&[1.0, 2.0]));
        assert_eq!(a.as_slice(), &[2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_length_mismatch_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn max_abs_diff_detects_shape_mismatch() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(2, 1);
        assert_eq!(a.max_abs_diff(&b), f32::INFINITY);
        assert_eq!(a.max_abs_diff(&Matrix::zeros(1, 2)), 0.0);
    }

    #[test]
    fn debug_output_is_nonempty() {
        let a = Matrix::zeros(1, 1);
        assert!(!format!("{a:?}").is_empty());
    }
}
