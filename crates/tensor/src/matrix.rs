//! Row-major dense `f32` matrices.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A dense, row-major matrix of `f32`.
///
/// Shapes are validated eagerly: mismatched operands panic with a message
/// naming the operation, which surfaces model-wiring bugs at the call site
/// instead of producing silent garbage.
///
/// # Examples
///
/// ```
/// use scamdetect_tensor::Matrix;
///
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// assert_eq!(a.transpose().get(0, 1), 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// One output row of `matmul`: `orow += Σ_p arow[p] · rhs[p, ·]`, skipping
/// zero scalars (post-ReLU activations are around half zeros).
#[inline]
fn stream_row(arow: &[f32], rhs: &Matrix, orow: &mut [f32]) {
    let m = rhs.cols;
    for (p, &a) in arow.iter().enumerate() {
        if a == 0.0 {
            continue;
        }
        let rrow = &rhs.data[p * m..(p + 1) * m];
        for (o, &bv) in orow.iter_mut().zip(rrow) {
            *o += a * bv;
        }
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(6) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>9.4} ", self.get(r, c))?;
            }
            if self.cols > 8 {
                write!(f, "…")?;
            }
            writeln!(f)?;
        }
        if self.rows > 6 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Writes the matrix as `u32 rows, u32 cols, f32 data` — exact
    /// little-endian bit patterns, so a round trip reproduces every entry
    /// bit-for-bit on any architecture.
    pub fn write_le(&self, w: &mut crate::io::ByteWriter) {
        w.put_u32(u32::try_from(self.rows).expect("rows fit u32"));
        w.put_u32(u32::try_from(self.cols).expect("cols fit u32"));
        for &v in &self.data {
            w.put_f32(v);
        }
    }

    /// Reads a matrix written by [`Matrix::write_le`].
    ///
    /// The declared shape is validated against the bytes actually present
    /// before any allocation, so truncated or corrupted input fails with a
    /// typed error instead of panicking or over-allocating.
    ///
    /// # Errors
    ///
    /// [`crate::io::CodecError`] on truncation or an impossible shape.
    pub fn read_le(r: &mut crate::io::ByteReader<'_>) -> Result<Matrix, crate::io::CodecError> {
        let rows = r.get_u32("matrix rows")? as usize;
        let cols = r.get_u32("matrix cols")? as usize;
        let count = rows
            .checked_mul(cols)
            .ok_or(crate::io::CodecError::Malformed {
                context: "matrix shape overflows",
            })?;
        let needed = count
            .checked_mul(4)
            .ok_or(crate::io::CodecError::Malformed {
                context: "matrix payload size overflows",
            })?;
        if needed > r.remaining() {
            return Err(crate::io::CodecError::Truncated {
                context: "matrix data",
                needed,
                available: r.remaining(),
            });
        }
        let mut data = Vec::with_capacity(count);
        for _ in 0..count {
            data.push(r.get_f32("matrix entry")?);
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a single-row matrix from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Matrix::from_vec(1, values.len(), values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Entry at (`r`,`c`).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets entry (`r`,`c`) to `v`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self @ rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} @ {}x{} shape mismatch",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (n, k, m) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(n, m);
        if m <= 4 && n >= 8 {
            // Narrow outputs (attention score columns, logit heads): the
            // per-scalar rhs-row loads dominate, so amortise them across
            // four output rows at a time. Accumulation order over `p` is
            // unchanged, so for finite operands results match the
            // streaming kernel (which additionally skips zero scalars —
            // only observable through non-finite rhs values).
            let mut i = 0;
            while i + 4 <= n {
                let (a0, a1, a2, a3) = (
                    &self.data[i * k..(i + 1) * k],
                    &self.data[(i + 1) * k..(i + 2) * k],
                    &self.data[(i + 2) * k..(i + 3) * k],
                    &self.data[(i + 3) * k..(i + 4) * k],
                );
                let (o01, o23) = out.data[i * m..(i + 4) * m].split_at_mut(2 * m);
                let (o0, o1) = o01.split_at_mut(m);
                let (o2, o3) = o23.split_at_mut(m);
                for p in 0..k {
                    let rrow = &rhs.data[p * m..(p + 1) * m];
                    let (v0, v1, v2, v3) = (a0[p], a1[p], a2[p], a3[p]);
                    for j in 0..m {
                        let bv = rrow[j];
                        o0[j] += v0 * bv;
                        o1[j] += v1 * bv;
                        o2[j] += v2 * bv;
                        o3[j] += v3 * bv;
                    }
                }
                i += 4;
            }
            for i in i..n {
                stream_row(
                    &self.data[i * k..(i + 1) * k],
                    rhs,
                    &mut out.data[i * m..(i + 1) * m],
                );
            }
        } else {
            // ikj loop order: stream over rhs rows for cache friendliness.
            for i in 0..n {
                stream_row(
                    &self.data[i * k..(i + 1) * k],
                    rhs,
                    &mut out.data[i * m..(i + 1) * m],
                );
            }
        }
        out
    }

    /// `selfᵀ @ rhs` without materialising the transpose.
    ///
    /// This is the weight-gradient product of reverse mode
    /// (`gW = Hᵀ @ g_out`): accumulating rank-1 updates row by row keeps
    /// both operands in sequential order and the `k x m` accumulator hot,
    /// where the transpose-then-multiply formulation strides over the
    /// (large, batched) activation matrix twice.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != rhs.rows`.
    pub fn matmul_at(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_at: {}x{} ᵀ@ {}x{} shape mismatch",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (n, k, m) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(k, m);
        for i in 0..n {
            let arow = &self.data[i * k..(i + 1) * k];
            let rrow = &rhs.data[i * m..(i + 1) * m];
            for (p, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[p * m..(p + 1) * m];
                for (o, &bv) in orow.iter_mut().zip(rrow) {
                    *o += a * bv;
                }
            }
        }
        out
    }

    /// `self @ rhsᵀ` without materialising the transpose.
    ///
    /// This is the input-gradient product of reverse mode
    /// (`gH = g_out @ Wᵀ`): each output entry is a dot product of two
    /// row slices, so the (small, L1-resident) weight matrix is read in
    /// row-major order instead of being copied transposed first.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_bt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_bt: {}x{} @ {}x{} ᵀ shape mismatch",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (n, k, m) = (self.rows, self.cols, rhs.rows);
        let mut out = Matrix::zeros(n, m);
        for i in 0..n {
            let arow = &self.data[i * k..(i + 1) * k];
            let orow = &mut out.data[i * m..(i + 1) * m];
            for (o, brow) in orow.iter_mut().zip(rhs.data.chunks_exact(k.max(1))) {
                *o = arow.iter().zip(brow).map(|(&a, &b)| a * b).sum();
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise combination of two equally shaped matrices.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "zip: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a * b)
    }

    /// Multiplies every entry by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// In-place accumulation `self += rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all entries (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Column-wise sums as a `1 x cols` matrix.
    pub fn col_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Row-wise sums as a `rows x 1` matrix.
    pub fn row_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = self.row(r).iter().sum();
        }
        out
    }

    /// Maximum absolute difference to `rhs`; `f32::INFINITY` on shape
    /// mismatch. Intended for tests.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f32 {
        if self.shape() != rhs.shape() {
            return f32::INFINITY;
        }
        self.data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Index of the largest entry in row `r`.
    pub fn row_argmax(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        best
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a + b)
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a - b)
    }
}

impl Mul<f32> for &Matrix {
    type Output = Matrix;
    fn mul(self, s: f32) -> Matrix {
        self.scale(s)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert_eq!(z.sum(), 0.0);
        let f = Matrix::filled(2, 2, 1.5);
        assert_eq!(f.sum(), 6.0);
        let id = Matrix::identity(3);
        assert_eq!(id.get(1, 1), 1.0);
        assert_eq!(id.get(0, 1), 0.0);
        let g = Matrix::from_fn(2, 2, |r, c| (r * 10 + c) as f32);
        assert_eq!(g.get(1, 1), 11.0);
        assert_eq!(Matrix::row_vector(&[1.0, 2.0]).shape(), (1, 2));
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.get(0, 0), 58.0);
        assert_eq!(c.get(0, 1), 64.0);
        assert_eq!(c.get(1, 0), 139.0);
        assert_eq!(c.get(1, 1), 154.0);
    }

    #[test]
    fn narrow_output_matmul_matches_streaming_kernel() {
        // n >= 8, m <= 4 takes the 4-row-blocked path; compare against the
        // reference computed through the wide path (m > 4) and sliced.
        let a = Matrix::from_fn(11, 5, |r, c| {
            if (r + c) % 3 == 0 {
                0.0
            } else {
                (r as f32 - c as f32) * 0.25
            }
        });
        let b = Matrix::from_fn(5, 2, |r, c| (r * 2 + c) as f32 * 0.5 - 2.0);
        let wide = Matrix::from_fn(5, 6, |r, c| if c < 2 { b.get(r, c) } else { 0.0 });
        let blocked = a.matmul(&b);
        let reference = a.matmul(&wide);
        for r in 0..11 {
            for c in 0..2 {
                assert_eq!(blocked.get(r, c), reference.get(r, c), "({r},{c})");
            }
        }
    }

    #[test]
    fn transpose_free_products_match_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |r, c| {
            if r == c {
                0.0
            } else {
                (r * 3 + c) as f32 * 0.1 - 0.5
            }
        });
        let g = Matrix::from_fn(4, 2, |r, c| (r as f32) - (c as f32) * 0.3);
        let w = Matrix::from_fn(5, 3, |r, c| (r + c) as f32 * 0.2 - 1.0);
        assert_eq!(a.matmul_at(&g), a.transpose().matmul(&g));
        assert_eq!(g.matmul_bt(&g), g.matmul(&g.transpose()));
        assert_eq!(a.matmul_bt(&w), a.matmul(&w.transpose()));
    }

    #[test]
    #[should_panic(expected = "matmul_at")]
    fn matmul_at_shape_mismatch_panics() {
        let _ = Matrix::zeros(2, 3).matmul_at(&Matrix::zeros(3, 2));
    }

    #[test]
    #[should_panic(expected = "matmul_bt")]
    fn matmul_bt_shape_mismatch_panics() {
        let _ = Matrix::zeros(2, 3).matmul_bt(&Matrix::zeros(2, 2));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), a.get(1, 2));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(1, 3, vec![1., -2., 3.]);
        let b = Matrix::from_vec(1, 3, vec![2., 2., 2.]);
        assert_eq!((&a + &b).as_slice(), &[3., 0., 5.]);
        assert_eq!((&a - &b).as_slice(), &[-1., -4., 1.]);
        assert_eq!(a.hadamard(&b).as_slice(), &[2., -4., 6.]);
        assert_eq!((&a * 2.0).as_slice(), &[2., -4., 6.]);
        assert_eq!((-&a).as_slice(), &[-1., 2., -3.]);
        assert_eq!(a.map(f32::abs).as_slice(), &[1., 2., 3.]);
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.col_sums().as_slice(), &[4., 6.]);
        assert_eq!(a.row_sums().as_slice(), &[3., 7.]);
        assert!((a.norm() - 30f32.sqrt()).abs() < 1e-6);
        assert_eq!(a.row_argmax(1), 1);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = Matrix::zeros(1, 2);
        a.add_assign(&Matrix::row_vector(&[1.0, 2.0]));
        a.add_assign(&Matrix::row_vector(&[1.0, 2.0]));
        assert_eq!(a.as_slice(), &[2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_length_mismatch_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn max_abs_diff_detects_shape_mismatch() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(2, 1);
        assert_eq!(a.max_abs_diff(&b), f32::INFINITY);
        assert_eq!(a.max_abs_diff(&Matrix::zeros(1, 2)), 0.0);
    }

    #[test]
    fn debug_output_is_nonempty() {
        let a = Matrix::zeros(1, 1);
        assert!(!format!("{a:?}").is_empty());
    }
}
