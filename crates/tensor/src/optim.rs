//! First-order optimizers over a [`Parameters`] store.

use crate::matrix::Matrix;
use crate::params::{ParamId, Parameters};

/// Plain stochastic gradient descent with optional momentum and weight decay.
///
/// # Examples
///
/// ```
/// use scamdetect_tensor::{Matrix, Parameters, optim::Sgd};
///
/// let mut params = Parameters::new();
/// let w = params.add("w", Matrix::filled(1, 1, 1.0));
/// let mut sgd = Sgd::new(0.5);
/// let grad = Matrix::filled(1, 1, 2.0);
/// sgd.step(&mut params, |_| Some(&grad));
/// assert_eq!(params.get(w).get(0, 0), 0.0); // 1.0 - 0.5 * 2.0
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Option<Matrix>>,
}

impl Sgd {
    /// Creates SGD with learning rate `lr`, no momentum, no weight decay.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Sets classical momentum `mu` (0 disables).
    pub fn with_momentum(mut self, mu: f32) -> Self {
        self.momentum = mu;
        self
    }

    /// Sets decoupled L2 weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Applies one update. `grad_of` maps each parameter id to its gradient
    /// for this step (`None` leaves the parameter untouched).
    pub fn step<'g>(
        &mut self,
        params: &mut Parameters,
        grad_of: impl Fn(ParamId) -> Option<&'g Matrix>,
    ) {
        self.velocity.resize(params.len(), None);
        let ids: Vec<ParamId> = params.iter().map(|(id, _, _)| id).collect();
        for id in ids {
            let Some(grad) = grad_of(id) else { continue };
            let mut update = grad.clone();
            if self.weight_decay > 0.0 {
                update.add_assign(&params.get(id).scale(self.weight_decay));
            }
            if self.momentum > 0.0 {
                let v = self.velocity[id.index()]
                    .get_or_insert_with(|| Matrix::zeros(update.rows(), update.cols()));
                *v = &v.scale(self.momentum) + &update;
                update = v.clone();
            }
            let new = params.get(id) - &update.scale(self.lr);
            *params.get_mut(id) = new;
        }
    }
}

/// Adam (Kingma & Ba) with bias correction and optional weight decay.
///
/// The default hyperparameters are the standard `beta1 = 0.9`,
/// `beta2 = 0.999`, `eps = 1e-8`.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Option<Matrix>>,
    v: Vec<Option<Matrix>>,
}

impl Adam {
    /// Creates Adam with learning rate `lr` and standard betas.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Overrides the exponential decay rates.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Sets decoupled (AdamW-style) weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one Adam update; see [`Sgd::step`] for the `grad_of` contract.
    pub fn step<'g>(
        &mut self,
        params: &mut Parameters,
        grad_of: impl Fn(ParamId) -> Option<&'g Matrix>,
    ) {
        self.t += 1;
        self.m.resize(params.len(), None);
        self.v.resize(params.len(), None);
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let ids: Vec<ParamId> = params.iter().map(|(id, _, _)| id).collect();
        for id in ids {
            let Some(grad) = grad_of(id) else { continue };
            let m =
                self.m[id.index()].get_or_insert_with(|| Matrix::zeros(grad.rows(), grad.cols()));
            *m = &m.scale(self.beta1) + &grad.scale(1.0 - self.beta1);
            let v =
                self.v[id.index()].get_or_insert_with(|| Matrix::zeros(grad.rows(), grad.cols()));
            *v = &v.scale(self.beta2) + &grad.hadamard(grad).scale(1.0 - self.beta2);

            let m_hat = m.scale(1.0 / bc1);
            let v_hat = v.scale(1.0 / bc2);
            let eps = self.eps;
            let update = m_hat.zip(&v_hat, |mh, vh| mh / (vh.sqrt() + eps));

            let mut new = params.get(id) - &update.scale(self.lr);
            if self.weight_decay > 0.0 {
                new = &new - &params.get(id).scale(self.lr * self.weight_decay);
            }
            *params.get_mut(id) = new;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimises f(w) = (w - 3)^2 and expects convergence to 3.
    fn quadratic_descent(mut apply: impl FnMut(&mut Parameters, ParamId, &Matrix)) -> f32 {
        let mut params = Parameters::new();
        let w = params.add("w", Matrix::filled(1, 1, 0.0));
        for _ in 0..400 {
            let tape = Tape::new();
            let vars = params.bind(&tape);
            let target = tape.constant(Matrix::filled(1, 1, 3.0));
            let diff = tape.sub(vars[w.index()], target);
            let loss = tape.mul(diff, diff);
            let g = tape.backward(loss);
            let gw = g.of(vars[w.index()]).unwrap().clone();
            apply(&mut params, w, &gw);
        }
        params.get(w).get(0, 0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.1);
        let final_w = quadratic_descent(|p, id, g| sgd.step(p, |q| (q == id).then_some(g)));
        assert!((final_w - 3.0).abs() < 1e-3, "got {final_w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut sgd = Sgd::new(0.05).with_momentum(0.9);
        let final_w = quadratic_descent(|p, id, g| sgd.step(p, |q| (q == id).then_some(g)));
        assert!((final_w - 3.0).abs() < 1e-2, "got {final_w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.1);
        let final_w = quadratic_descent(|p, id, g| adam.step(p, |q| (q == id).then_some(g)));
        assert!((final_w - 3.0).abs() < 1e-2, "got {final_w}");
        assert_eq!(adam.steps(), 400);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut params = Parameters::new();
        let w = params.add("w", Matrix::filled(1, 1, 1.0));
        let mut sgd = Sgd::new(0.1).with_weight_decay(1.0);
        let zero = Matrix::zeros(1, 1);
        for _ in 0..10 {
            sgd.step(&mut params, |_| Some(&zero));
        }
        assert!(params.get(w).get(0, 0) < 1.0);
    }

    #[test]
    fn missing_gradient_leaves_param_untouched() {
        let mut params = Parameters::new();
        let w = params.add("w", Matrix::filled(1, 1, 7.0));
        let mut adam = Adam::new(0.1);
        adam.step(&mut params, |_| None);
        assert_eq!(params.get(w).get(0, 0), 7.0);
    }
}
