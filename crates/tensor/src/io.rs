//! Little-endian state codec for model persistence.
//!
//! The workspace is fully offline and dependency-free, so trained model
//! state is serialized with a hand-rolled binary codec instead of serde:
//!
//! * [`ByteWriter`] / [`ByteReader`] — primitive little-endian encoding
//!   (integers, floats, strings, vectors) with typed, non-panicking
//!   decode errors ([`CodecError`]),
//! * [`Sections`] — an ordered collection of *named* byte payloads; the
//!   unit a model artifact stores and checksums,
//! * [`ParamIo`] — the state export/import trait every trained detector
//!   implements. `export_state` must capture *everything* that influences
//!   scoring, so that `import_state` on a freshly constructed model
//!   reproduces scores bit-for-bit,
//! * [`export_parameters`] / [`import_parameters`] — helpers mapping a
//!   named [`Parameters`] registry onto one section per tensor.
//!
//! Every multi-byte value is little-endian **by definition** (not host
//! order), so artifacts are portable across architectures.

use crate::matrix::Matrix;
use crate::params::Parameters;
use std::error::Error;
use std::fmt;

/// A non-panicking decode failure.
///
/// Decoding untrusted bytes (a corrupted or truncated artifact) must
/// never panic or make unbounded allocations; every failure mode maps to
/// one of these variants with enough context to diagnose it.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The input ended before a value could be read.
    Truncated {
        /// What was being decoded.
        context: &'static str,
        /// Bytes the value needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The bytes decoded to a structurally impossible value.
    Malformed {
        /// What was being decoded and why it is invalid.
        context: &'static str,
    },
    /// A required named section was absent.
    MissingSection {
        /// The missing section's name.
        name: String,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated {
                context,
                needed,
                available,
            } => write!(
                f,
                "truncated while reading {context}: needed {needed} bytes, {available} available"
            ),
            CodecError::Malformed { context } => write!(f, "malformed {context}"),
            CodecError::MissingSection { name } => write!(f, "missing section '{name}'"),
        }
    }
}

impl Error for CodecError {}

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f32` as its little-endian bit pattern (exact).
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its little-endian bit pattern (exact).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a UTF-8 string with a `u16` length prefix.
    ///
    /// # Panics
    ///
    /// Panics if the string exceeds `u16::MAX` bytes (section and
    /// parameter names are short by construction).
    pub fn put_str(&mut self, s: &str) {
        let len = u16::try_from(s.len()).expect("string fits u16 length prefix");
        self.put_u16(len);
        self.put_bytes(s.as_bytes());
    }

    /// Appends an `f64` slice with a `u32` length prefix.
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_u32(u32::try_from(vs.len()).expect("vector fits u32 length prefix"));
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Appends a rectangular `f64` row set (`u32` rows, `u32` cols, data).
    ///
    /// # Panics
    ///
    /// Panics on ragged rows.
    pub fn put_f64_rows(&mut self, rows: &[Vec<f64>]) {
        let cols = rows.first().map_or(0, Vec::len);
        self.put_u32(u32::try_from(rows.len()).expect("rows fit u32"));
        self.put_u32(u32::try_from(cols).expect("cols fit u32"));
        for row in rows {
            assert_eq!(row.len(), cols, "put_f64_rows: ragged rows");
            for &v in row {
                self.put_f64(v);
            }
        }
    }

    /// Appends `Option<usize>` as a presence byte plus a `u64`.
    pub fn put_opt_usize(&mut self, v: Option<usize>) {
        match v {
            Some(v) => {
                self.put_bool(true);
                self.put_usize(v);
            }
            None => self.put_bool(false),
        }
    }
}

/// Bounds-checked little-endian decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// `true` when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                context,
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn array<const N: usize>(&mut self, context: &'static str) -> Result<[u8; N], CodecError> {
        let slice = self.take(N, context)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input.
    pub fn get_u8(&mut self, context: &'static str) -> Result<u8, CodecError> {
        Ok(self.array::<1>(context)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input.
    pub fn get_u16(&mut self, context: &'static str) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.array(context)?))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input.
    pub fn get_u32(&mut self, context: &'static str) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.array(context)?))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input.
    pub fn get_u64(&mut self, context: &'static str) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.array(context)?))
    }

    /// Reads a `usize` stored as `u64`.
    ///
    /// # Errors
    ///
    /// Truncation, or [`CodecError::Malformed`] when the value does not
    /// fit the host `usize`.
    pub fn get_usize(&mut self, context: &'static str) -> Result<usize, CodecError> {
        usize::try_from(self.get_u64(context)?).map_err(|_| CodecError::Malformed { context })
    }

    /// Reads an `f32` bit pattern.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input.
    pub fn get_f32(&mut self, context: &'static str) -> Result<f32, CodecError> {
        Ok(f32::from_le_bytes(self.array(context)?))
    }

    /// Reads an `f64` bit pattern.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input.
    pub fn get_f64(&mut self, context: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.array(context)?))
    }

    /// Reads a bool byte, rejecting values other than 0/1.
    ///
    /// # Errors
    ///
    /// Truncation, or [`CodecError::Malformed`] on a non-boolean byte.
    pub fn get_bool(&mut self, context: &'static str) -> Result<bool, CodecError> {
        match self.get_u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Malformed { context }),
        }
    }

    /// Reads a `u16`-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Truncation, or [`CodecError::Malformed`] on invalid UTF-8.
    pub fn get_str(&mut self, context: &'static str) -> Result<String, CodecError> {
        let len = self.get_u16(context)? as usize;
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Malformed { context })
    }

    /// Reads a `u32`-prefixed `f64` vector, bounding the allocation by
    /// the bytes actually present.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when the declared length exceeds the
    /// remaining input.
    pub fn get_f64_vec(&mut self, context: &'static str) -> Result<Vec<f64>, CodecError> {
        let len = self.get_u32(context)? as usize;
        let needed = len
            .checked_mul(8)
            .ok_or(CodecError::Malformed { context })?;
        if needed > self.remaining() {
            return Err(CodecError::Truncated {
                context,
                needed,
                available: self.remaining(),
            });
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_f64(context)?);
        }
        Ok(out)
    }

    /// Reads a rectangular `f64` row set written by
    /// [`ByteWriter::put_f64_rows`].
    ///
    /// # Errors
    ///
    /// Truncation when the declared shape exceeds the remaining input.
    pub fn get_f64_rows(&mut self, context: &'static str) -> Result<Vec<Vec<f64>>, CodecError> {
        let rows = self.get_u32(context)? as usize;
        let cols = self.get_u32(context)? as usize;
        let needed = rows
            .checked_mul(cols)
            .and_then(|n| n.checked_mul(8))
            .ok_or(CodecError::Malformed { context })?;
        if needed > self.remaining() {
            return Err(CodecError::Truncated {
                context,
                needed,
                available: self.remaining(),
            });
        }
        let mut out = Vec::with_capacity(rows);
        for _ in 0..rows {
            let mut row = Vec::with_capacity(cols);
            for _ in 0..cols {
                row.push(self.get_f64(context)?);
            }
            out.push(row);
        }
        Ok(out)
    }

    /// Reads an `Option<usize>` written by [`ByteWriter::put_opt_usize`].
    ///
    /// # Errors
    ///
    /// Truncation or malformed presence byte.
    pub fn get_opt_usize(&mut self, context: &'static str) -> Result<Option<usize>, CodecError> {
        if self.get_bool(context)? {
            Ok(Some(self.get_usize(context)?))
        } else {
            Ok(None)
        }
    }
}

/// An ordered collection of named byte payloads — the content unit of a
/// model artifact. Order is preserved so re-serialization is stable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Sections {
    entries: Vec<(String, Vec<u8>)>,
}

impl Sections {
    /// An empty collection.
    pub fn new() -> Self {
        Sections::default()
    }

    /// Appends a named payload (later pushes with the same name shadow
    /// earlier ones on lookup; writers never duplicate names).
    pub fn push(&mut self, name: impl Into<String>, bytes: Vec<u8>) {
        self.entries.push((name.into(), bytes));
    }

    /// Looks a section up by name.
    pub fn get(&self, name: &str) -> Option<&[u8]> {
        self.entries
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_slice())
    }

    /// Looks a section up by name, failing with
    /// [`CodecError::MissingSection`] when absent.
    ///
    /// # Errors
    ///
    /// [`CodecError::MissingSection`] when no section carries `name`.
    pub fn require(&self, name: &str) -> Result<&[u8], CodecError> {
        self.get(name).ok_or_else(|| CodecError::MissingSection {
            name: name.to_string(),
        })
    }

    /// Iterates `(name, payload)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.entries.iter().map(|(n, b)| (n.as_str(), b.as_slice()))
    }

    /// Number of sections.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no sections are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// State export/import for trained models.
///
/// The contract: `export_state` writes every value that influences
/// scoring into named sections; `import_state` on a freshly constructed
/// instance restores them so scores reproduce the exporter's
/// **bit-for-bit**. Hyperparameters that only matter during `fit` (learning
/// rates, epoch counts) are exported too, for provenance.
///
/// Implementations must not panic on corrupted input — every decode
/// failure surfaces as a [`CodecError`].
pub trait ParamIo {
    /// Serializes the complete trained state into `sections`.
    fn export_state(&self, sections: &mut Sections);

    /// Restores state previously produced by [`ParamIo::export_state`].
    ///
    /// # Errors
    ///
    /// [`CodecError`] when the payloads are missing, truncated or
    /// structurally invalid. On error `self` may be partially updated and
    /// must be discarded.
    fn import_state(&mut self, sections: &Sections) -> Result<(), CodecError>;

    /// `true` when the fitted state is consistent with scoring inputs of
    /// width `dim` (unfitted state is trivially consistent). Artifact
    /// loaders call this after [`ParamIo::import_state`] to refuse
    /// dimension-skewed state — which individual section checks cannot
    /// see — before it can silently mis-score or panic at scan time.
    fn state_matches_dim(&self, _dim: usize) -> bool {
        true
    }
}

/// Exports every matrix of a [`Parameters`] registry as its own named
/// section (`{prefix}{param-name}`), preceded by a `{prefix}index`
/// section listing the expected names in slot order.
pub fn export_parameters(params: &Parameters, prefix: &str, sections: &mut Sections) {
    let mut index = ByteWriter::new();
    index.put_u32(u32::try_from(params.len()).expect("parameter count fits u32"));
    for (_, name, _) in params.iter() {
        index.put_str(name);
    }
    sections.push(format!("{prefix}index"), index.into_bytes());
    for (_, name, mat) in params.iter() {
        let mut w = ByteWriter::new();
        mat.write_le(&mut w);
        sections.push(format!("{prefix}{name}"), w.into_bytes());
    }
}

/// Imports tensors written by [`export_parameters`] into an
/// already-allocated registry: every parameter of `params` must have a
/// matching section whose matrix has the same shape.
///
/// The shape check makes corrupted artifacts and config/state mismatches
/// fail loudly instead of silently mis-wiring a model.
///
/// # Errors
///
/// [`CodecError`] on a missing section, a tensor-count or name mismatch
/// with the `{prefix}index` section, a shape mismatch, or a truncated
/// matrix payload.
pub fn import_parameters(
    params: &mut Parameters,
    prefix: &str,
    sections: &Sections,
) -> Result<(), CodecError> {
    let mut index = ByteReader::new(sections.require(&format!("{prefix}index"))?);
    let count = index.get_u32("parameter index count")? as usize;
    if count != params.len() {
        return Err(CodecError::Malformed {
            context: "parameter index: tensor count does not match the model architecture",
        });
    }
    let ids: Vec<crate::params::ParamId> = params.iter().map(|(id, _, _)| id).collect();
    for id in ids {
        let expected = index.get_str("parameter index name")?;
        if expected != params.name(id) {
            return Err(CodecError::Malformed {
                context: "parameter index: tensor name does not match the model architecture",
            });
        }
        let payload = sections.require(&format!("{prefix}{}", params.name(id)))?;
        let mut r = ByteReader::new(payload);
        let mat = Matrix::read_le(&mut r)?;
        let current = params.get(id);
        if mat.rows() != current.rows() || mat.cols() != current.cols() {
            return Err(CodecError::Malformed {
                context: "parameter tensor: shape does not match the model architecture",
            });
        }
        *params.get_mut(id) = mat;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f32(1.5);
        w.put_f64(-0.125);
        w.put_bool(true);
        w.put_str("hello");
        w.put_f64_slice(&[1.0, -2.0]);
        w.put_opt_usize(Some(42));
        w.put_opt_usize(None);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8("a").unwrap(), 7);
        assert_eq!(r.get_u16("b").unwrap(), 0xBEEF);
        assert_eq!(r.get_u32("c").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64("d").unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f32("e").unwrap(), 1.5);
        assert_eq!(r.get_f64("f").unwrap(), -0.125);
        assert!(r.get_bool("g").unwrap());
        assert_eq!(r.get_str("h").unwrap(), "hello");
        assert_eq!(r.get_f64_vec("i").unwrap(), vec![1.0, -2.0]);
        assert_eq!(r.get_opt_usize("j").unwrap(), Some(42));
        assert_eq!(r.get_opt_usize("k").unwrap(), None);
        assert!(r.is_done());
    }

    #[test]
    fn truncation_is_typed_not_panicking() {
        let mut w = ByteWriter::new();
        w.put_u64(5);
        let bytes = w.into_bytes();
        for k in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..k]);
            assert!(matches!(
                r.get_u64("value"),
                Err(CodecError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn oversized_vector_length_rejected_without_allocation() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX); // declares 4 billion doubles
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_f64_vec("huge").is_err());
    }

    #[test]
    fn bad_bool_rejected() {
        let mut r = ByteReader::new(&[2]);
        assert!(matches!(
            r.get_bool("flag"),
            Err(CodecError::Malformed { .. })
        ));
    }

    #[test]
    fn rows_round_trip_and_ragged_guard() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let mut w = ByteWriter::new();
        w.put_f64_rows(&rows);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_f64_rows("rows").unwrap(), rows);
    }

    #[test]
    fn sections_lookup() {
        let mut s = Sections::new();
        s.push("a", vec![1]);
        s.push("b", vec![2, 3]);
        assert_eq!(s.get("a"), Some(&[1][..]));
        assert_eq!(s.require("b").unwrap(), &[2, 3]);
        assert!(matches!(
            s.require("missing"),
            Err(CodecError::MissingSection { .. })
        ));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn parameters_export_import_round_trip() {
        let mut src = Parameters::new();
        src.add("w", Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32));
        src.add("b", Matrix::filled(1, 3, -0.5));
        let mut sections = Sections::new();
        export_parameters(&src, "tensor.", &mut sections);
        assert_eq!(sections.len(), 3); // index + 2 tensors

        let mut dst = Parameters::new();
        let w = dst.add("w", Matrix::zeros(2, 3));
        let b = dst.add("b", Matrix::zeros(1, 3));
        import_parameters(&mut dst, "tensor.", &sections).unwrap();
        assert_eq!(dst.get(w).get(1, 2), 5.0);
        assert_eq!(dst.get(b).get(0, 0), -0.5);
    }

    #[test]
    fn parameters_import_rejects_shape_and_name_mismatch() {
        let mut src = Parameters::new();
        src.add("w", Matrix::zeros(2, 3));
        let mut sections = Sections::new();
        export_parameters(&src, "p.", &mut sections);

        // Shape mismatch.
        let mut wrong_shape = Parameters::new();
        wrong_shape.add("w", Matrix::zeros(3, 2));
        assert!(import_parameters(&mut wrong_shape, "p.", &sections).is_err());

        // Name mismatch.
        let mut wrong_name = Parameters::new();
        wrong_name.add("v", Matrix::zeros(2, 3));
        assert!(import_parameters(&mut wrong_name, "p.", &sections).is_err());

        // Count mismatch.
        let mut extra = Parameters::new();
        extra.add("w", Matrix::zeros(2, 3));
        extra.add("b", Matrix::zeros(1, 3));
        assert!(import_parameters(&mut extra, "p.", &sections).is_err());
    }
}
