//! Sparse matrices in compressed sparse row (CSR) form.
//!
//! Contract CFGs have a handful of successors per block, so their
//! aggregation operators are overwhelmingly zero. [`CsrMatrix`] stores only
//! the nonzeros and performs the one product GNN message passing needs —
//! `sparse @ dense` ([`CsrMatrix::spmm`]) — in `O(nnz · d)` instead of
//! `O(n² · d)`. [`CsrPair`] bundles a matrix with its precomputed transpose
//! so reverse-mode autodiff (`gX = Aᵀ @ g_out`) never re-transposes inside
//! the training loop.

use crate::matrix::Matrix;
use std::fmt;
use std::sync::Arc;

/// A sparse `f32` matrix in compressed sparse row form.
///
/// Within each row, column indices are strictly increasing; duplicate
/// coordinates passed to [`CsrMatrix::from_edges`] are combined by
/// summation (standard COO → CSR semantics).
///
/// # Examples
///
/// ```
/// use scamdetect_tensor::{CsrMatrix, Matrix};
///
/// // [[0, 2], [0, 0]] @ [[1, 1], [3, 5]] = [[6, 10], [0, 0]]
/// let a = CsrMatrix::from_edges(2, 2, &[(0, 1, 2.0)]);
/// let x = Matrix::from_vec(2, 2, vec![1.0, 1.0, 3.0, 5.0]);
/// assert_eq!(a.spmm(&x).as_slice(), &[6.0, 10.0, 0.0, 0.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `rows + 1` offsets into `col_idx` / `vals`.
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    vals: Vec<f32>,
}

impl fmt::Debug for CsrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CsrMatrix {}x{} ({} nnz)",
            self.rows,
            self.cols,
            self.nnz()
        )
    }
}

impl CsrMatrix {
    /// Builds a CSR matrix from an unordered `(row, col, value)` edge list.
    ///
    /// Duplicate coordinates are summed; explicit zeros are kept (callers
    /// that want them dropped should filter first).
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    pub fn from_edges(rows: usize, cols: usize, edges: &[(u32, u32, f32)]) -> Self {
        let mut sorted: Vec<(u32, u32, f32)> = edges.to_vec();
        for &(r, c, _) in &sorted {
            assert!(
                (r as usize) < rows && (c as usize) < cols,
                "from_edges: coordinate ({r},{c}) out of bounds for {rows}x{cols}"
            );
        }
        // Graph preparation hands over lists that are already strictly
        // sorted and duplicate-free; skip the O(e log e) normalisation then.
        let strictly_sorted = sorted
            .windows(2)
            .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1));
        if !strictly_sorted {
            sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));
            sorted.dedup_by(|cur, prev| {
                if prev.0 == cur.0 && prev.1 == cur.1 {
                    prev.2 += cur.2;
                    true
                } else {
                    false
                }
            });
        }

        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut vals = Vec::with_capacity(sorted.len());
        row_ptr.push(0);
        let mut k = 0usize;
        for r in 0..rows as u32 {
            while k < sorted.len() && sorted[k].0 == r {
                col_idx.push(sorted[k].1);
                vals.push(sorted[k].2);
                k += 1;
            }
            row_ptr.push(col_idx.len() as u32);
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Stacks `blocks` into one block-diagonal CSR matrix.
    ///
    /// Block `k` occupies the row range `[Σ rows_{<k}, Σ rows_{≤k})` and the
    /// column range `[Σ cols_{<k}, Σ cols_{≤k})`; no entries couple distinct
    /// blocks. This is the packing step of mini-batched GNN training: `K`
    /// per-graph aggregators become one operator whose single `spmm` scores
    /// all `K` graphs at once. Runs in `O(Σ nnz + Σ rows)` — the per-block
    /// CSR arrays are copied with offsets, never re-sorted.
    pub fn block_diag(blocks: &[&CsrMatrix]) -> CsrMatrix {
        let rows: usize = blocks.iter().map(|b| b.rows).sum();
        let cols: usize = blocks.iter().map(|b| b.cols).sum();
        let nnz: usize = blocks.iter().map(|b| b.nnz()).sum();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut vals = Vec::with_capacity(nnz);
        row_ptr.push(0u32);
        let mut col_off = 0u32;
        let mut nnz_off = 0u32;
        for b in blocks {
            row_ptr.extend(b.row_ptr[1..].iter().map(|&p| p + nnz_off));
            col_idx.extend(b.col_idx.iter().map(|&c| c + col_off));
            vals.extend_from_slice(&b.vals);
            col_off += b.cols as u32;
            nnz_off += b.nnz() as u32;
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Builds a CSR matrix from the nonzeros of a dense matrix.
    pub fn from_dense(m: &Matrix) -> Self {
        let mut edges = Vec::new();
        for r in 0..m.rows() {
            for (c, &v) in m.row(r).iter().enumerate() {
                if v != 0.0 {
                    edges.push((r as u32, c as u32, v));
                }
            }
        }
        CsrMatrix::from_edges(m.rows(), m.cols(), &edges)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Half-open index range of row `r` into [`Self::col_indices`] /
    /// [`Self::values`].
    #[inline]
    pub fn row_range(&self, r: usize) -> std::ops::Range<usize> {
        self.row_ptr[r] as usize..self.row_ptr[r + 1] as usize
    }

    /// Column indices of row `r` (strictly increasing).
    #[inline]
    pub fn row_cols(&self, r: usize) -> &[u32] {
        &self.col_idx[self.row_range(r)]
    }

    /// Values of row `r`, aligned with [`Self::row_cols`].
    #[inline]
    pub fn row_vals(&self, r: usize) -> &[f32] {
        &self.vals[self.row_range(r)]
    }

    /// All column indices in CSR order.
    #[inline]
    pub fn col_indices(&self) -> &[u32] {
        &self.col_idx
    }

    /// All stored values in CSR order.
    #[inline]
    pub fn values(&self) -> &[f32] {
        &self.vals
    }

    /// Iterates over `(row, col, value)` in CSR order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.rows).flat_map(move |r| {
            self.row_cols(r)
                .iter()
                .zip(self.row_vals(r))
                .map(move |(&c, &v)| (r, c as usize, v))
        })
    }

    /// Entry at (`r`,`c`); zero when not stored.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        let cols = self.row_cols(r);
        match cols.binary_search(&(c as u32)) {
            Ok(k) => self.row_vals(r)[k],
            Err(_) => 0.0,
        }
    }

    /// Sparse-dense product `self @ x` in `O(nnz · x.cols())`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != x.rows`.
    pub fn spmm(&self, x: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            x.rows(),
            "spmm: {}x{} @ {}x{} shape mismatch",
            self.rows,
            self.cols,
            x.rows(),
            x.cols()
        );
        let d = x.cols();
        let mut out = Matrix::zeros(self.rows, d);
        let out_data = out.as_mut_slice();
        for r in 0..self.rows {
            let orow = &mut out_data[r * d..(r + 1) * d];
            for (&c, &v) in self.row_cols(r).iter().zip(self.row_vals(r)) {
                let xrow = x.row(c as usize);
                for (o, xv) in orow.iter_mut().zip(xrow) {
                    *o += v * xv;
                }
            }
        }
        out
    }

    /// Transposed copy (counting sort over columns, `O(nnz + cols)`).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0u32; self.cols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut vals = vec![0.0f32; self.nnz()];
        let mut next = counts;
        for (r, c, v) in self.iter() {
            let slot = next[c] as usize;
            col_idx[slot] = r as u32;
            vals[slot] = v;
            next[c] += 1;
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Expands to a dense matrix (tests and the dense fallback path).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            m.set(r, c, v);
        }
        m
    }
}

/// A CSR matrix paired with its precomputed transpose.
///
/// [`crate::Tape::spmm`] records `A @ X` forward and replays
/// `gX = Aᵀ @ g_out` backward; precomputing `Aᵀ` once per graph means the
/// training loop never re-sorts the structure. Clones are cheap (`Arc`).
#[derive(Debug, Clone)]
pub struct CsrPair {
    fwd: Arc<CsrMatrix>,
    bwd: Arc<CsrMatrix>,
}

impl CsrPair {
    /// Wraps `a`, computing its transpose once.
    pub fn new(a: CsrMatrix) -> Self {
        let t = a.transpose();
        CsrPair {
            fwd: Arc::new(a),
            bwd: Arc::new(t),
        }
    }

    /// The matrix itself.
    #[inline]
    pub fn matrix(&self) -> &CsrMatrix {
        &self.fwd
    }

    /// The precomputed transpose.
    #[inline]
    pub fn transposed(&self) -> &CsrMatrix {
        &self.bwd
    }

    /// Shared handle to the matrix (for tape closures).
    #[inline]
    pub fn matrix_arc(&self) -> &Arc<CsrMatrix> {
        &self.fwd
    }

    /// Stacks `pairs` into one block-diagonal pair.
    ///
    /// Because the transpose of a block-diagonal matrix is the block
    /// diagonal of the per-block transposes (in the same block order), the
    /// batched backward operator is assembled from the transposes already
    /// precomputed inside each pair — packing a training batch never
    /// re-transposes anything.
    pub fn block_diag(pairs: &[&CsrPair]) -> CsrPair {
        let fwd: Vec<&CsrMatrix> = pairs.iter().map(|p| p.matrix()).collect();
        let bwd: Vec<&CsrMatrix> = pairs.iter().map(|p| p.transposed()).collect();
        CsrPair {
            fwd: Arc::new(CsrMatrix::block_diag(&fwd)),
            bwd: Arc::new(CsrMatrix::block_diag(&bwd)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[0, 2, 0], [1, 0, 3], [0, 0, 0]]
        CsrMatrix::from_edges(3, 3, &[(1, 2, 3.0), (0, 1, 2.0), (1, 0, 1.0)])
    }

    #[test]
    fn from_edges_sorts_and_indexes() {
        let a = sample();
        assert_eq!(a.shape(), (3, 3));
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 1), 2.0);
        assert_eq!(a.get(1, 0), 1.0);
        assert_eq!(a.get(1, 2), 3.0);
        assert_eq!(a.get(0, 0), 0.0);
        assert_eq!(a.row_cols(1), &[0, 2]);
        assert_eq!(a.row_cols(2), &[] as &[u32]);
    }

    #[test]
    fn duplicate_edges_sum() {
        let a = CsrMatrix::from_edges(2, 2, &[(0, 0, 1.0), (0, 0, 2.5)]);
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.get(0, 0), 3.5);
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let a = sample();
        let x = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 - 3.0);
        assert_eq!(a.spmm(&x), a.to_dense().matmul(&x));
    }

    #[test]
    fn transpose_roundtrip_and_values() {
        let a = sample();
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 3));
        assert_eq!(t.get(1, 0), 2.0);
        assert_eq!(t.get(2, 1), 3.0);
        assert_eq!(t.transpose().to_dense(), a.to_dense());
        assert_eq!(t.to_dense(), a.to_dense().transpose());
    }

    #[test]
    fn dense_roundtrip() {
        let m = Matrix::from_vec(2, 3, vec![0.0, 1.5, 0.0, -2.0, 0.0, 4.0]);
        let a = CsrMatrix::from_dense(&m);
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.to_dense(), m);
    }

    #[test]
    fn empty_matrix_spmm() {
        let a = CsrMatrix::from_edges(2, 3, &[]);
        let x = Matrix::filled(3, 2, 1.0);
        assert_eq!(a.spmm(&x), Matrix::zeros(2, 2));
    }

    #[test]
    fn pair_precomputes_transpose() {
        let p = CsrPair::new(sample());
        assert_eq!(p.transposed().to_dense(), p.matrix().to_dense().transpose());
    }

    #[test]
    fn block_diag_places_blocks_on_the_diagonal() {
        let a = sample(); // 3x3
        let b = CsrMatrix::from_edges(2, 2, &[(0, 1, 7.0), (1, 0, -1.0)]);
        let empty = CsrMatrix::from_edges(1, 1, &[]);
        let d = CsrMatrix::block_diag(&[&a, &empty, &b]);
        assert_eq!(d.shape(), (6, 6));
        assert_eq!(d.nnz(), a.nnz() + b.nnz());
        // Block A in the top-left, untouched.
        assert_eq!(d.get(0, 1), 2.0);
        assert_eq!(d.get(1, 2), 3.0);
        // Block B offset by 3 (A) + 1 (empty) rows/cols.
        assert_eq!(d.get(4, 5), 7.0);
        assert_eq!(d.get(5, 4), -1.0);
        // No cross-block coupling.
        assert_eq!(d.get(0, 4), 0.0);
        assert_eq!(d.get(4, 0), 0.0);
    }

    #[test]
    fn block_diag_matches_dense_construction() {
        let a = sample();
        let b = CsrMatrix::from_edges(2, 3, &[(1, 2, 4.0)]);
        let d = CsrMatrix::block_diag(&[&a, &b]);
        let mut dense = Matrix::zeros(5, 6);
        for (r, c, v) in a.iter() {
            dense.set(r, c, v);
        }
        for (r, c, v) in b.iter() {
            dense.set(r + 3, c + 3, v);
        }
        assert_eq!(d.to_dense(), dense);
        // spmm over the packed operator equals per-block spmm stacked.
        let x = Matrix::from_fn(6, 2, |r, c| (r * 2 + c) as f32 - 4.0);
        assert_eq!(d.spmm(&x), d.to_dense().matmul(&x));
    }

    #[test]
    fn block_diag_of_nothing_is_empty() {
        let d = CsrMatrix::block_diag(&[]);
        assert_eq!(d.shape(), (0, 0));
        assert_eq!(d.nnz(), 0);
    }

    #[test]
    fn pair_block_diag_reuses_transposes() {
        let p1 = CsrPair::new(sample());
        let p2 = CsrPair::new(CsrMatrix::from_edges(2, 2, &[(0, 1, 5.0)]));
        let packed = CsrPair::block_diag(&[&p1, &p2]);
        assert_eq!(
            packed.transposed().to_dense(),
            packed.matrix().to_dense().transpose()
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_edges_rejects_out_of_bounds() {
        let _ = CsrMatrix::from_edges(2, 2, &[(2, 0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "spmm")]
    fn spmm_shape_mismatch_panics() {
        let _ = sample().spmm(&Matrix::zeros(2, 2));
    }
}
