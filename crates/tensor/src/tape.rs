//! Eager reverse-mode automatic differentiation.
//!
//! A [`Tape`] records every differentiable operation as it is evaluated.
//! [`Tape::backward`] then walks the record in reverse, multiplying local
//! Jacobians, and returns a [`Gradients`] table addressed by [`Var`].

use crate::matrix::Matrix;
use crate::sparse::{CsrMatrix, CsrPair};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// Handle to a value recorded on a [`Tape`].
///
/// `Var`s are cheap copies and only meaningful for the tape that created
/// them; mixing tapes panics on the first shape mismatch or out-of-bounds
/// access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var {
    id: u32,
}

impl Var {
    #[inline]
    fn index(self) -> usize {
        self.id as usize
    }
}

type BackwardFn = Box<dyn Fn(&Matrix, &[&Matrix], &Matrix, &[bool]) -> Vec<Option<Matrix>>>;

struct Step {
    out: usize,
    inputs: Vec<usize>,
    backward: BackwardFn,
}

#[derive(Default)]
struct Inner {
    values: Vec<Arc<Matrix>>,
    needs_grad: Vec<bool>,
    steps: Vec<Step>,
    /// Interned shared constants, keyed by `Arc` pointer identity: recording
    /// the same `Arc<Matrix>` twice on one tape yields the same `Var`
    /// instead of a second copy.
    interned: HashMap<usize, Var>,
}

/// Gradient table produced by [`Tape::backward`].
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Option<Matrix>>,
}

impl Gradients {
    /// Gradient of the loss with respect to `v`, if `v` required one.
    pub fn of(&self, v: Var) -> Option<&Matrix> {
        self.grads.get(v.index()).and_then(|g| g.as_ref())
    }
}

/// An autodiff tape.
///
/// All operations are methods on the tape so the recording is explicit at
/// every call site. Values are computed eagerly; nothing is lazy.
///
/// # Examples
///
/// ```
/// use scamdetect_tensor::{Matrix, Tape};
///
/// let tape = Tape::new();
/// let x = tape.leaf(Matrix::row_vector(&[2.0]));
/// let y = tape.mul(x, x); // y = x^2
/// let grads = tape.backward(y);
/// assert_eq!(grads.of(x).unwrap().get(0, 0), 4.0); // dy/dx = 2x
/// ```
#[derive(Default)]
pub struct Tape {
    inner: RefCell<Inner>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    fn push_value(&self, m: Matrix, needs_grad: bool) -> Var {
        self.push_arc(Arc::new(m), needs_grad)
    }

    fn push_arc(&self, m: Arc<Matrix>, needs_grad: bool) -> Var {
        let mut inner = self.inner.borrow_mut();
        let id = inner.values.len() as u32;
        inner.values.push(m);
        inner.needs_grad.push(needs_grad);
        Var { id }
    }

    /// Records a constant: no gradient will be computed for it.
    pub fn constant(&self, m: Matrix) -> Var {
        self.push_value(m, false)
    }

    /// Records a shared constant without copying its data.
    ///
    /// The `Arc` is interned by pointer identity: recording the same handle
    /// again on this tape returns the original `Var`. This is how per-graph
    /// tensors (node features, dense aggregators) are placed on a training
    /// tape in O(1) instead of an O(n²) clone per forward pass.
    pub fn constant_shared(&self, m: &Arc<Matrix>) -> Var {
        let key = Arc::as_ptr(m) as usize;
        if let Some(&v) = self.inner.borrow().interned.get(&key) {
            return v;
        }
        let v = self.push_arc(Arc::clone(m), false);
        self.inner.borrow_mut().interned.insert(key, v);
        v
    }

    /// Records a differentiable leaf (a parameter or input requiring grad).
    pub fn leaf(&self, m: Matrix) -> Var {
        self.push_value(m, true)
    }

    /// Clones the current value of `v` off the tape.
    pub fn value(&self, v: Var) -> Matrix {
        self.inner.borrow().values[v.index()].as_ref().clone()
    }

    /// Shape of `v` without cloning.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.inner.borrow().values[v.index()].shape()
    }

    /// Number of recorded values (diagnostic).
    pub fn len(&self) -> usize {
        self.inner.borrow().values.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn record(&self, inputs: Vec<Var>, out: Matrix, backward: BackwardFn) -> Var {
        let needs = {
            let inner = self.inner.borrow();
            inputs.iter().any(|v| inner.needs_grad[v.index()])
        };
        let out_var = self.push_value(out, needs);
        if needs {
            self.inner.borrow_mut().steps.push(Step {
                out: out_var.index(),
                inputs: inputs.iter().map(|v| v.index()).collect(),
                backward,
            });
        }
        out_var
    }

    // ------------------------------------------------------------------
    // Binary ops
    // ------------------------------------------------------------------

    /// Matrix product `a @ b`.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let out = {
            let inner = self.inner.borrow();
            inner.values[a.index()].matmul(inner.values[b.index()].as_ref())
        };
        self.record(
            vec![a, b],
            out,
            Box::new(|gout, ins, _, needs| {
                let (a, b) = (ins[0], ins[1]);
                // Transpose-free gradient products: `g_out @ bᵀ` and
                // `aᵀ @ g_out` read every operand in row-major order, which
                // matters most for the large stacked activations of a
                // block-diagonal training batch.
                let ga = needs[0].then(|| gout.matmul_bt(b));
                let gb = needs[1].then(|| a.matmul_at(gout));
                vec![ga, gb]
            }),
        )
    }

    /// Elementwise sum `a + b` (same shape).
    pub fn add(&self, a: Var, b: Var) -> Var {
        let out = {
            let inner = self.inner.borrow();
            inner.values[a.index()].as_ref() + inner.values[b.index()].as_ref()
        };
        self.record(
            vec![a, b],
            out,
            Box::new(|gout, _, _, needs| {
                vec![
                    needs[0].then(|| gout.clone()),
                    needs[1].then(|| gout.clone()),
                ]
            }),
        )
    }

    /// Elementwise difference `a - b` (same shape).
    pub fn sub(&self, a: Var, b: Var) -> Var {
        let out = {
            let inner = self.inner.borrow();
            inner.values[a.index()].as_ref() - inner.values[b.index()].as_ref()
        };
        self.record(
            vec![a, b],
            out,
            Box::new(|gout, _, _, needs| {
                vec![
                    needs[0].then(|| gout.clone()),
                    needs[1].then(|| gout.scale(-1.0)),
                ]
            }),
        )
    }

    /// Elementwise (Hadamard) product `a ⊙ b`.
    pub fn mul(&self, a: Var, b: Var) -> Var {
        let out = {
            let inner = self.inner.borrow();
            inner.values[a.index()].hadamard(inner.values[b.index()].as_ref())
        };
        self.record(
            vec![a, b],
            out,
            Box::new(|gout, ins, _, needs| {
                vec![
                    needs[0].then(|| gout.hadamard(ins[1])),
                    needs[1].then(|| gout.hadamard(ins[0])),
                ]
            }),
        )
    }

    /// Broadcast add of a `1 x d` bias row onto every row of `h` (`n x d`).
    pub fn add_bias(&self, h: Var, bias: Var) -> Var {
        let out = {
            let inner = self.inner.borrow();
            let hm = &inner.values[h.index()];
            let bm = &inner.values[bias.index()];
            assert_eq!(bm.rows(), 1, "add_bias: bias must be 1 x d");
            assert_eq!(hm.cols(), bm.cols(), "add_bias: width mismatch");
            let d = hm.cols();
            let mut out = hm.as_ref().clone();
            let brow = bm.row(0);
            for orow in out.as_mut_slice().chunks_exact_mut(d.max(1)) {
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += bv;
                }
            }
            out
        };
        self.record(
            vec![h, bias],
            out,
            Box::new(|gout, _, _, needs| {
                vec![
                    needs[0].then(|| gout.clone()),
                    needs[1].then(|| gout.col_sums()),
                ]
            }),
        )
    }

    /// Multiplies `m` by a learnable `1 x 1` scalar `s`.
    pub fn scalar_mul(&self, s: Var, m: Var) -> Var {
        let out = {
            let inner = self.inner.borrow();
            let sv = inner.values[s.index()].get(0, 0);
            inner.values[m.index()].scale(sv)
        };
        self.record(
            vec![s, m],
            out,
            Box::new(|gout, ins, _, needs| {
                let gs =
                    needs[0].then(|| Matrix::from_vec(1, 1, vec![gout.hadamard(ins[1]).sum()]));
                let gm = needs[1].then(|| gout.scale(ins[0].get(0, 0)));
                vec![gs, gm]
            }),
        )
    }

    /// Concatenates `a` (`n x d1`) and `b` (`n x d2`) along columns.
    pub fn concat_cols(&self, a: Var, b: Var) -> Var {
        let out = {
            let inner = self.inner.borrow();
            let am = &inner.values[a.index()];
            let bm = &inner.values[b.index()];
            assert_eq!(am.rows(), bm.rows(), "concat_cols: row mismatch");
            let (d1, d2) = (am.cols(), bm.cols());
            let mut out = Matrix::zeros(am.rows(), d1 + d2);
            let data = out.as_mut_slice();
            for r in 0..am.rows() {
                let base = r * (d1 + d2);
                data[base..base + d1].copy_from_slice(am.row(r));
                data[base + d1..base + d1 + d2].copy_from_slice(bm.row(r));
            }
            out
        };
        self.record(
            vec![a, b],
            out,
            Box::new(|gout, ins, _, needs| {
                let d1 = ins[0].cols();
                let d2 = gout.cols() - d1;
                let split = |off: usize, d: usize| {
                    let mut m = Matrix::zeros(gout.rows(), d);
                    let data = m.as_mut_slice();
                    for r in 0..gout.rows() {
                        data[r * d..(r + 1) * d].copy_from_slice(&gout.row(r)[off..off + d]);
                    }
                    m
                };
                let ga = needs[0].then(|| split(0, d1));
                let gb = needs[1].then(|| split(d1, d2));
                vec![ga, gb]
            }),
        )
    }

    /// Outer sum of two `n x 1` columns: `out[i][j] = u[i] + v[j]`.
    ///
    /// This is the pre-activation attention score matrix of GAT.
    pub fn outer_sum(&self, u: Var, v: Var) -> Var {
        let out = {
            let inner = self.inner.borrow();
            let um = &inner.values[u.index()];
            let vm = &inner.values[v.index()];
            assert_eq!(um.cols(), 1, "outer_sum: u must be n x 1");
            assert_eq!(vm.cols(), 1, "outer_sum: v must be n x 1");
            assert_eq!(um.rows(), vm.rows(), "outer_sum: length mismatch");
            Matrix::from_fn(um.rows(), vm.rows(), |i, j| um.get(i, 0) + vm.get(j, 0))
        };
        self.record(
            vec![u, v],
            out,
            Box::new(|gout, _, _, needs| {
                let gu = needs[0].then(|| gout.row_sums());
                let gv = needs[1].then(|| gout.col_sums().transpose());
                vec![gu, gv]
            }),
        )
    }

    // ------------------------------------------------------------------
    // Sparse message passing
    // ------------------------------------------------------------------

    /// Sparse-dense product `A @ x` where `A` is a constant CSR aggregator.
    ///
    /// The backward pass is `gX = Aᵀ @ g_out`, served by the transpose
    /// precomputed inside the [`CsrPair`] — no per-step transposition and no
    /// dense `n x n` materialisation anywhere.
    pub fn spmm(&self, a: &CsrPair, x: Var) -> Var {
        let out = a.matrix().spmm(&self.inner.borrow().values[x.index()]);
        let pair = a.clone();
        self.record(
            vec![x],
            out,
            Box::new(move |gout, _, _, needs| vec![needs[0].then(|| pair.transposed().spmm(gout))]),
        )
    }

    /// Per-edge score gather `out[k] = u[row(k)] + v[col(k)]` over the edges
    /// of `structure`, in CSR order. `u` and `v` are `n x 1`; the result is
    /// `nnz x 1`.
    ///
    /// This is the sparse counterpart of [`Tape::outer_sum`]: instead of the
    /// full `n x n` pre-activation attention matrix, only the entries that
    /// the GAT mask would keep are ever produced.
    pub fn edge_score_sum(&self, u: Var, v: Var, structure: &Arc<CsrMatrix>) -> Var {
        let out = {
            let inner = self.inner.borrow();
            let um = inner.values[u.index()].as_ref();
            let vm = inner.values[v.index()].as_ref();
            assert_eq!(um.cols(), 1, "edge_score_sum: u must be n x 1");
            assert_eq!(vm.cols(), 1, "edge_score_sum: v must be n x 1");
            assert_eq!(um.rows(), structure.rows(), "edge_score_sum: u length");
            assert_eq!(vm.rows(), structure.cols(), "edge_score_sum: v length");
            let mut data = Vec::with_capacity(structure.nnz());
            let us = um.as_slice();
            let vs = vm.as_slice();
            for (r, &ur) in us.iter().enumerate() {
                for &c in structure.row_cols(r) {
                    data.push(ur + vs[c as usize]);
                }
            }
            Matrix::from_vec(structure.nnz(), 1, data)
        };
        let s = Arc::clone(structure);
        self.record(
            vec![u, v],
            out,
            Box::new(move |gout, ins, _, needs| {
                let g = gout.as_slice();
                let gu = needs[0].then(|| {
                    let mut m = Matrix::zeros(ins[0].rows(), 1);
                    for (r, slot) in m.as_mut_slice().iter_mut().enumerate() {
                        *slot = s.row_range(r).map(|k| g[k]).sum();
                    }
                    m
                });
                let gv = needs[1].then(|| {
                    let mut m = Matrix::zeros(ins[1].rows(), 1);
                    let md = m.as_mut_slice();
                    for r in 0..s.rows() {
                        for (k, &c) in s.row_range(r).zip(s.row_cols(r)) {
                            md[c as usize] += g[k];
                        }
                    }
                    m
                });
                vec![gu, gv]
            }),
        )
    }

    /// Softmax of per-edge `scores` (`nnz x 1`, CSR order) normalised within
    /// each row segment of `structure`.
    ///
    /// Rows of `structure` without edges contribute nothing; together with
    /// [`Tape::edge_gather`] this reproduces [`Tape::masked_softmax_rows`]
    /// exactly — isolated nodes end up with an all-zero attention row —
    /// without ever touching the `n x n` mask.
    pub fn edge_softmax(&self, scores: Var, structure: &Arc<CsrMatrix>) -> Var {
        let out = {
            let inner = self.inner.borrow();
            let sm = inner.values[scores.index()].as_ref();
            assert_eq!(
                sm.shape(),
                (structure.nnz(), 1),
                "edge_softmax: scores must be nnz x 1"
            );
            let mut data = sm.as_slice().to_vec();
            for r in 0..structure.rows() {
                let seg = structure.row_range(r);
                if seg.is_empty() {
                    continue;
                }
                let mx = data[seg.clone()].iter().copied().fold(f32::MIN, f32::max);
                let mut denom = 0.0;
                for x in &mut data[seg.clone()] {
                    *x = (*x - mx).exp();
                    denom += *x;
                }
                for x in &mut data[seg] {
                    *x /= denom;
                }
            }
            Matrix::from_vec(structure.nnz(), 1, data)
        };
        let s = Arc::clone(structure);
        self.record(
            vec![scores],
            out,
            Box::new(move |gout, _, outv, needs| {
                vec![needs[0].then(|| {
                    // Per segment: g_k = α_k (gout_k − Σ_l α_l gout_l).
                    let alpha = outv.as_slice();
                    let g = gout.as_slice();
                    let mut res = vec![0.0f32; alpha.len()];
                    for r in 0..s.rows() {
                        let seg = s.row_range(r);
                        let dot: f32 = seg.clone().map(|k| alpha[k] * g[k]).sum();
                        for k in seg {
                            res[k] = alpha[k] * (g[k] - dot);
                        }
                    }
                    Matrix::from_vec(alpha.len(), 1, res)
                })]
            }),
        )
    }

    /// Edge-weighted neighbourhood gather:
    /// `out[i] = Σ_{k ∈ row(i)} alpha[k] · z[col(k)]`.
    ///
    /// `alpha` is `nnz x 1` (CSR order over `structure`), `z` is `n x d`;
    /// the result is `n x d`. This is the sparse `α @ Z` of GAT.
    pub fn edge_gather(&self, alpha: Var, z: Var, structure: &Arc<CsrMatrix>) -> Var {
        let out = {
            let inner = self.inner.borrow();
            let am = inner.values[alpha.index()].as_ref();
            let zm = inner.values[z.index()].as_ref();
            assert_eq!(
                am.shape(),
                (structure.nnz(), 1),
                "edge_gather: alpha must be nnz x 1"
            );
            assert_eq!(zm.rows(), structure.cols(), "edge_gather: z row count");
            let d = zm.cols();
            let mut outm = Matrix::zeros(structure.rows(), d);
            let a = am.as_slice();
            let data = outm.as_mut_slice();
            for r in 0..structure.rows() {
                let orow = &mut data[r * d..(r + 1) * d];
                for (k, &c) in structure.row_range(r).zip(structure.row_cols(r)) {
                    let zrow = zm.row(c as usize);
                    for (o, zv) in orow.iter_mut().zip(zrow) {
                        *o += a[k] * zv;
                    }
                }
            }
            outm
        };
        let s = Arc::clone(structure);
        self.record(
            vec![alpha, z],
            out,
            Box::new(move |gout, ins, _, needs| {
                let (am, zm) = (ins[0], ins[1]);
                let ga = needs[0].then(|| {
                    let mut res = vec![0.0f32; am.rows()];
                    for r in 0..s.rows() {
                        let grow = gout.row(r);
                        for (k, &c) in s.row_range(r).zip(s.row_cols(r)) {
                            res[k] = grow
                                .iter()
                                .zip(zm.row(c as usize))
                                .map(|(g, zv)| g * zv)
                                .sum();
                        }
                    }
                    Matrix::from_vec(am.rows(), 1, res)
                });
                let gz = needs[1].then(|| {
                    let d = zm.cols();
                    let a = am.as_slice();
                    let mut res = Matrix::zeros(zm.rows(), d);
                    let data = res.as_mut_slice();
                    for r in 0..s.rows() {
                        let grow = gout.row(r);
                        for (k, &c) in s.row_range(r).zip(s.row_cols(r)) {
                            let zrow = &mut data[c as usize * d..(c as usize + 1) * d];
                            for (o, g) in zrow.iter_mut().zip(grow) {
                                *o += a[k] * g;
                            }
                        }
                    }
                    res
                });
                vec![ga, gz]
            }),
        )
    }

    // ------------------------------------------------------------------
    // Unary ops / activations
    // ------------------------------------------------------------------

    /// Scales by a fixed constant.
    pub fn scale(&self, a: Var, s: f32) -> Var {
        let out = self.inner.borrow().values[a.index()].scale(s);
        self.record(
            vec![a],
            out,
            Box::new(move |gout, _, _, needs| vec![needs[0].then(|| gout.scale(s))]),
        )
    }

    /// Rectified linear unit.
    pub fn relu(&self, a: Var) -> Var {
        let out = self.inner.borrow().values[a.index()].map(|x| x.max(0.0));
        self.record(
            vec![a],
            out,
            Box::new(|gout, ins, _, needs| {
                vec![needs[0].then(|| gout.zip(ins[0], |g, x| if x > 0.0 { g } else { 0.0 }))]
            }),
        )
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&self, a: Var, alpha: f32) -> Var {
        let out =
            self.inner.borrow().values[a.index()].map(|x| if x > 0.0 { x } else { alpha * x });
        self.record(
            vec![a],
            out,
            Box::new(move |gout, ins, _, needs| {
                vec![needs[0].then(|| gout.zip(ins[0], |g, x| if x > 0.0 { g } else { alpha * g }))]
            }),
        )
    }

    /// Exponential linear unit.
    pub fn elu(&self, a: Var, alpha: f32) -> Var {
        let out = self.inner.borrow().values[a.index()].map(|x| {
            if x > 0.0 {
                x
            } else {
                alpha * (x.exp() - 1.0)
            }
        });
        self.record(
            vec![a],
            out,
            Box::new(move |gout, _, outv, needs| {
                vec![needs[0]
                    .then(|| gout.zip(outv, |g, y| if y > 0.0 { g } else { g * (y + alpha) }))]
            }),
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self, a: Var) -> Var {
        let out = self.inner.borrow().values[a.index()].map(|x| 1.0 / (1.0 + (-x).exp()));
        self.record(
            vec![a],
            out,
            Box::new(|gout, _, outv, needs| {
                vec![needs[0].then(|| gout.zip(outv, |g, y| g * y * (1.0 - y)))]
            }),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self, a: Var) -> Var {
        let out = self.inner.borrow().values[a.index()].map(f32::tanh);
        self.record(
            vec![a],
            out,
            Box::new(|gout, _, outv, needs| {
                vec![needs[0].then(|| gout.zip(outv, |g, y| g * (1.0 - y * y)))]
            }),
        )
    }

    // ------------------------------------------------------------------
    // Reductions / pooling
    // ------------------------------------------------------------------

    /// Column-wise mean over rows: `n x d -> 1 x d` (mean readout).
    pub fn mean_rows(&self, a: Var) -> Var {
        let out = {
            let m = &self.inner.borrow().values[a.index()];
            m.col_sums().scale(1.0 / m.rows().max(1) as f32)
        };
        self.record(
            vec![a],
            out,
            Box::new(|gout, ins, _, needs| {
                let n = ins[0].rows().max(1) as f32;
                vec![needs[0].then(|| {
                    Matrix::from_fn(ins[0].rows(), ins[0].cols(), |_, c| gout.get(0, c) / n)
                })]
            }),
        )
    }

    /// Column-wise sum over rows: `n x d -> 1 x d` (sum readout).
    pub fn sum_rows(&self, a: Var) -> Var {
        let out = self.inner.borrow().values[a.index()].col_sums();
        self.record(
            vec![a],
            out,
            Box::new(|gout, ins, _, needs| {
                vec![needs[0]
                    .then(|| Matrix::from_fn(ins[0].rows(), ins[0].cols(), |_, c| gout.get(0, c)))]
            }),
        )
    }

    /// Column-wise max over rows: `n x d -> 1 x d` (max readout).
    ///
    /// Gradients flow to the first row attaining each column maximum.
    pub fn max_rows(&self, a: Var) -> Var {
        let out = {
            let m = &self.inner.borrow().values[a.index()];
            Matrix::from_fn(1, m.cols(), |_, c| {
                (0..m.rows()).map(|r| m.get(r, c)).fold(f32::MIN, f32::max)
            })
        };
        self.record(
            vec![a],
            out,
            Box::new(|gout, ins, _, needs| {
                vec![needs[0].then(|| {
                    let m = ins[0];
                    let mut g = Matrix::zeros(m.rows(), m.cols());
                    for c in 0..m.cols() {
                        let mut best = 0;
                        for r in 1..m.rows() {
                            if m.get(r, c) > m.get(best, c) {
                                best = r;
                            }
                        }
                        g.set(best, c, gout.get(0, c));
                    }
                    g
                })]
            }),
        )
    }

    /// Column-wise sum over each row segment: `n x d -> K x d`.
    ///
    /// `offsets` has `K + 1` nondecreasing entries with `offsets[0] == 0`
    /// and `offsets[K] == n`; output row `k` is the sum of input rows
    /// `offsets[k]..offsets[k+1]`. This is the sum readout of a
    /// block-diagonal graph batch: one tape op pools every graph.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` does not partition the rows of `a`.
    pub fn segment_sum_rows(&self, a: Var, offsets: &[usize]) -> Var {
        let offsets = offsets.to_vec();
        let out = {
            let inner = self.inner.borrow();
            let m = inner.values[a.index()].as_ref();
            validate_offsets(&offsets, m.rows(), "segment_sum_rows");
            segment_apply(m, &offsets, |_| 1.0)
        };
        self.record(
            vec![a],
            out,
            Box::new(move |gout, ins, _, needs| {
                vec![needs[0].then(|| segment_spread(gout, ins[0], &offsets, |_| 1.0))]
            }),
        )
    }

    /// Column-wise mean over each row segment: `n x d -> K x d`.
    ///
    /// Same contract as [`Tape::segment_sum_rows`], but each segment is
    /// scaled by `1 / len`; empty segments produce an all-zero row. This is
    /// the mean readout of a block-diagonal graph batch, and for `K = 1` it
    /// reproduces [`Tape::mean_rows`] exactly.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` does not partition the rows of `a`.
    pub fn segment_mean_rows(&self, a: Var, offsets: &[usize]) -> Var {
        let offsets = offsets.to_vec();
        let inv = |len: usize| 1.0 / len.max(1) as f32;
        let out = {
            let inner = self.inner.borrow();
            let m = inner.values[a.index()].as_ref();
            validate_offsets(&offsets, m.rows(), "segment_mean_rows");
            segment_apply(m, &offsets, inv)
        };
        self.record(
            vec![a],
            out,
            Box::new(move |gout, ins, _, needs| {
                vec![needs[0].then(|| segment_spread(gout, ins[0], &offsets, inv))]
            }),
        )
    }

    /// Column-wise max over each row segment: `n x d -> K x d`.
    ///
    /// Same contract as [`Tape::segment_sum_rows`]. Gradients flow to the
    /// first row attaining each column maximum within its segment (matching
    /// [`Tape::max_rows`] for `K = 1`); empty segments produce an all-zero
    /// row and receive no gradient.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` does not partition the rows of `a`.
    pub fn segment_max_rows(&self, a: Var, offsets: &[usize]) -> Var {
        let offsets = offsets.to_vec();
        let out = {
            let inner = self.inner.borrow();
            let m = inner.values[a.index()].as_ref();
            validate_offsets(&offsets, m.rows(), "segment_max_rows");
            let k = offsets.len() - 1;
            Matrix::from_fn(k, m.cols(), |s, c| {
                let seg = offsets[s]..offsets[s + 1];
                if seg.is_empty() {
                    0.0
                } else {
                    seg.map(|r| m.get(r, c)).fold(f32::MIN, f32::max)
                }
            })
        };
        self.record(
            vec![a],
            out,
            Box::new(move |gout, ins, _, needs| {
                vec![needs[0].then(|| {
                    let m = ins[0];
                    let mut g = Matrix::zeros(m.rows(), m.cols());
                    for s in 0..offsets.len() - 1 {
                        let seg = offsets[s]..offsets[s + 1];
                        if seg.is_empty() {
                            continue;
                        }
                        for c in 0..m.cols() {
                            let mut best = seg.start;
                            for r in seg.clone().skip(1) {
                                if m.get(r, c) > m.get(best, c) {
                                    best = r;
                                }
                            }
                            g.set(best, c, gout.get(s, c));
                        }
                    }
                    g
                })]
            }),
        )
    }

    /// Sum of all entries: `n x d -> 1 x 1`.
    pub fn sum_all(&self, a: Var) -> Var {
        let out = Matrix::from_vec(1, 1, vec![self.inner.borrow().values[a.index()].sum()]);
        self.record(
            vec![a],
            out,
            Box::new(|gout, ins, _, needs| {
                let g0 = gout.get(0, 0);
                vec![needs[0].then(|| Matrix::filled(ins[0].rows(), ins[0].cols(), g0))]
            }),
        )
    }

    // ------------------------------------------------------------------
    // Softmax family
    // ------------------------------------------------------------------

    /// Row-wise softmax restricted to positions where `mask > 0`.
    ///
    /// Masked-out entries are exactly zero in the output. Rows whose mask is
    /// entirely zero produce an all-zero row (isolated CFG nodes receive no
    /// attention mass). This is the attention normaliser of the dense GAT
    /// fallback; the CSR path uses [`Tape::edge_softmax`] instead. The mask
    /// is taken as a shared handle so repeated heads/layers never copy it.
    pub fn masked_softmax_rows(&self, a: Var, mask: &Arc<Matrix>) -> Var {
        let mask = Arc::clone(mask);
        let out = {
            let m = self.inner.borrow();
            let m = m.values[a.index()].as_ref();
            assert_eq!(m.shape(), mask.shape(), "masked_softmax_rows: mask shape");
            masked_softmax(m, &mask)
        };
        self.record(
            vec![a],
            out,
            Box::new(move |gout, _, outv, needs| {
                vec![needs[0].then(|| {
                    // dE = S ⊙ (G - rowsum(G ⊙ S)); masked entries have S=0.
                    let mut g = Matrix::zeros(outv.rows(), outv.cols());
                    for r in 0..outv.rows() {
                        let dot: f32 = (0..outv.cols())
                            .map(|c| gout.get(r, c) * outv.get(r, c))
                            .sum();
                        for c in 0..outv.cols() {
                            let s = outv.get(r, c);
                            g.set(r, c, s * (gout.get(r, c) - dot));
                        }
                    }
                    g
                })]
            }),
        )
    }

    /// Mean softmax cross-entropy of `logits` (`n x C`) against integer
    /// class `targets` (length `n`). Returns a `1 x 1` loss.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len() != logits.rows()` or a target is `>= C`.
    pub fn softmax_cross_entropy(&self, logits: Var, targets: &[usize]) -> Var {
        let targets = targets.to_vec();
        let out = {
            let inner = self.inner.borrow();
            let m = inner.values[logits.index()].as_ref();
            assert_eq!(targets.len(), m.rows(), "softmax_ce: target count");
            let probs = softmax_rows(m);
            let mut loss = 0.0;
            for (r, &t) in targets.iter().enumerate() {
                assert!(t < m.cols(), "softmax_ce: target class out of range");
                loss -= probs.get(r, t).max(1e-12).ln();
            }
            Matrix::from_vec(1, 1, vec![loss / targets.len().max(1) as f32])
        };
        self.record(
            vec![logits],
            out,
            Box::new(move |gout, ins, _, needs| {
                vec![needs[0].then(|| {
                    let mut g = softmax_rows(ins[0]);
                    let scale = gout.get(0, 0) / targets.len().max(1) as f32;
                    for (r, &t) in targets.iter().enumerate() {
                        let v = g.get(r, t);
                        g.set(r, t, v - 1.0);
                    }
                    g.scale(scale)
                })]
            }),
        )
    }

    /// Inverted-dropout regularisation: keeps each entry with probability
    /// `1 - p` and rescales kept entries by `1/(1-p)`. The mask is drawn from
    /// `rng` at call time so training stays fully deterministic under a
    /// seeded generator.
    pub fn dropout(&self, a: Var, p: f32, rng: &mut impl rand::Rng) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout: p must be in [0, 1)");
        let keep = 1.0 - p;
        let mask = {
            let m = &self.inner.borrow().values[a.index()];
            Matrix::from_fn(m.rows(), m.cols(), |_, _| {
                if rng.random::<f32>() < keep {
                    1.0 / keep
                } else {
                    0.0
                }
            })
        };
        let out = self.inner.borrow().values[a.index()].hadamard(&mask);
        self.record(
            vec![a],
            out,
            Box::new(move |gout, _, _, needs| vec![needs[0].then(|| gout.hadamard(&mask))]),
        )
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Runs reverse-mode accumulation from `loss` (seeded with ones).
    ///
    /// Every recorded step is replayed in reverse; gradients are accumulated
    /// into each variable that (transitively) required them.
    pub fn backward(&self, loss: Var) -> Gradients {
        let inner = self.inner.borrow();
        let mut grads: Vec<Option<Matrix>> = vec![None; inner.values.len()];
        let seed = &inner.values[loss.index()];
        grads[loss.index()] = Some(Matrix::filled(seed.rows(), seed.cols(), 1.0));

        for step in inner.steps.iter().rev() {
            let Some(gout) = grads[step.out].take() else {
                continue;
            };
            let input_values: Vec<&Matrix> = step
                .inputs
                .iter()
                .map(|&i| inner.values[i].as_ref())
                .collect();
            let needs: Vec<bool> = step.inputs.iter().map(|&i| inner.needs_grad[i]).collect();
            let out_value = inner.values[step.out].as_ref();
            let input_grads = (step.backward)(&gout, &input_values, out_value, &needs);
            debug_assert_eq!(input_grads.len(), step.inputs.len());
            for (&idx, grad) in step.inputs.iter().zip(input_grads) {
                if let Some(g) = grad {
                    match &mut grads[idx] {
                        Some(acc) => acc.add_assign(&g),
                        slot => *slot = Some(g),
                    }
                }
            }
            // Re-install gout if the loss var itself is a leaf someone queries.
            if step.out == loss.index() {
                grads[step.out] = Some(gout);
            }
        }
        Gradients { grads }
    }
}

/// Row-wise softmax of a plain matrix (numerically stabilised).
pub fn softmax_rows(m: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for r in 0..m.rows() {
        let mx = m.row(r).iter().copied().fold(f32::MIN, f32::max);
        let mut denom = 0.0;
        for c in 0..m.cols() {
            denom += (m.get(r, c) - mx).exp();
        }
        for c in 0..m.cols() {
            out.set(r, c, (m.get(r, c) - mx).exp() / denom);
        }
    }
    out
}

/// Checks that `offsets` is a nondecreasing partition `0 = o_0 ≤ … ≤ o_K = rows`.
fn validate_offsets(offsets: &[usize], rows: usize, op: &str) {
    assert!(
        offsets.len() >= 2,
        "{op}: offsets need at least two entries"
    );
    assert_eq!(offsets[0], 0, "{op}: offsets must start at 0");
    assert_eq!(
        *offsets.last().expect("nonempty"),
        rows,
        "{op}: offsets must end at the row count"
    );
    assert!(
        offsets.windows(2).all(|w| w[0] <= w[1]),
        "{op}: offsets must be nondecreasing"
    );
}

/// Per-segment column sums scaled by `scale(len)`: the shared forward of
/// the sum/mean segment readouts.
fn segment_apply(m: &Matrix, offsets: &[usize], scale: impl Fn(usize) -> f32) -> Matrix {
    let d = m.cols();
    let mut out = Matrix::zeros(offsets.len() - 1, d);
    let data = out.as_mut_slice();
    for s in 0..offsets.len() - 1 {
        let seg = offsets[s]..offsets[s + 1];
        let w = scale(seg.len());
        let orow = &mut data[s * d..(s + 1) * d];
        for r in seg {
            for (o, &x) in orow.iter_mut().zip(m.row(r)) {
                *o += w * x;
            }
        }
    }
    out
}

/// Broadcasts each `gout` row back over its segment scaled by `scale(len)`:
/// the shared backward of the sum/mean segment readouts.
fn segment_spread(
    gout: &Matrix,
    input: &Matrix,
    offsets: &[usize],
    scale: impl Fn(usize) -> f32,
) -> Matrix {
    let d = input.cols();
    let mut g = Matrix::zeros(input.rows(), input.cols());
    let data = g.as_mut_slice();
    for s in 0..offsets.len() - 1 {
        let seg = offsets[s]..offsets[s + 1];
        let w = scale(seg.len());
        let grow = gout.row(s);
        for r in seg {
            let target = &mut data[r * d..(r + 1) * d];
            for (t, &gv) in target.iter_mut().zip(grow) {
                *t = w * gv;
            }
        }
    }
    g
}

fn masked_softmax(m: &Matrix, mask: &Matrix) -> Matrix {
    let (rows, cols) = m.shape();
    let mut out = Matrix::zeros(rows, cols);
    for r in 0..rows {
        // Row slices: one bounds check per row instead of one per entry.
        let mrow = m.row(r);
        let krow = mask.row(r);
        let mut mx = f32::MIN;
        let mut any = false;
        for (&x, &k) in mrow.iter().zip(krow) {
            if k > 0.0 {
                mx = mx.max(x);
                any = true;
            }
        }
        if !any {
            continue;
        }
        let mut denom = 0.0;
        for (&x, &k) in mrow.iter().zip(krow) {
            if k > 0.0 {
                denom += (x - mx).exp();
            }
        }
        let orow = &mut out.as_mut_slice()[r * cols..(r + 1) * cols];
        for ((o, &x), &k) in orow.iter_mut().zip(mrow).zip(krow) {
            if k > 0.0 {
                *o = (x - mx).exp() / denom;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f32, b: f32, tol: f32) {
        assert!((a - b).abs() <= tol, "{a} !~ {b} (tol {tol})");
    }

    #[test]
    fn matmul_gradients() {
        // loss = sum(A @ B); dA = 1 @ B^T, dB = A^T @ 1.
        let tape = Tape::new();
        let a = tape.leaf(Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let b = tape.leaf(Matrix::from_vec(2, 2, vec![5., 6., 7., 8.]));
        let c = tape.matmul(a, b);
        let loss = tape.sum_all(c);
        let g = tape.backward(loss);
        let ga = g.of(a).unwrap();
        let gb = g.of(b).unwrap();
        assert_eq!(ga.as_slice(), &[11., 15., 11., 15.]);
        assert_eq!(gb.as_slice(), &[4., 4., 6., 6.]);
    }

    #[test]
    fn constants_receive_no_gradient() {
        let tape = Tape::new();
        let a = tape.constant(Matrix::identity(2));
        let b = tape.leaf(Matrix::identity(2));
        let c = tape.matmul(a, b);
        let loss = tape.sum_all(c);
        let g = tape.backward(loss);
        assert!(g.of(a).is_none());
        assert!(g.of(b).is_some());
    }

    #[test]
    fn shared_input_accumulates() {
        // y = x ⊙ x; dy/dx = 2x.
        let tape = Tape::new();
        let x = tape.leaf(Matrix::row_vector(&[3.0, -2.0]));
        let y = tape.mul(x, x);
        let loss = tape.sum_all(y);
        let g = tape.backward(loss);
        assert_eq!(g.of(x).unwrap().as_slice(), &[6.0, -4.0]);
    }

    #[test]
    fn activation_values_and_grads() {
        let tape = Tape::new();
        let x = tape.leaf(Matrix::row_vector(&[1.0, -1.0]));
        let r = tape.relu(x);
        assert_eq!(tape.value(r).as_slice(), &[1.0, 0.0]);
        let l = tape.leaky_relu(x, 0.1);
        assert_eq!(tape.value(l).as_slice(), &[1.0, -0.1]);
        let s = tape.sigmoid(x);
        assert_close(tape.value(s).get(0, 0), 0.731058, 1e-5);
        let t = tape.tanh(x);
        assert_close(tape.value(t).get(0, 1), -0.761594, 1e-5);
        let e = tape.elu(x, 1.0);
        assert_close(tape.value(e).get(0, 1), (-1f32).exp() - 1.0, 1e-6);

        let loss = tape.sum_all(l);
        let g = tape.backward(loss);
        assert_eq!(g.of(x).unwrap().as_slice(), &[1.0, 0.1]);
    }

    #[test]
    fn bias_broadcast_and_grad() {
        let tape = Tape::new();
        let h = tape.leaf(Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let b = tape.leaf(Matrix::row_vector(&[10., 20.]));
        let y = tape.add_bias(h, b);
        assert_eq!(tape.value(y).as_slice(), &[11., 22., 13., 24.]);
        let loss = tape.sum_all(y);
        let g = tape.backward(loss);
        assert_eq!(g.of(b).unwrap().as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn pooling_grads() {
        let tape = Tape::new();
        let h = tape.leaf(Matrix::from_vec(2, 2, vec![1., 5., 3., 2.]));
        let mean = tape.mean_rows(h);
        assert_eq!(tape.value(mean).as_slice(), &[2.0, 3.5]);
        let mx = tape.max_rows(h);
        assert_eq!(tape.value(mx).as_slice(), &[3.0, 5.0]);
        let sm = tape.sum_rows(h);
        assert_eq!(tape.value(sm).as_slice(), &[4.0, 7.0]);

        let loss = tape.sum_all(mx);
        let g = tape.backward(loss);
        // Max picked (row1,col0) and (row0,col1).
        assert_eq!(g.of(h).unwrap().as_slice(), &[0., 1., 1., 0.]);
    }

    #[test]
    fn segment_pooling_values_and_grads() {
        // Two segments: rows {0,1} and {2}; plus one empty segment at the end.
        let tape = Tape::new();
        let h = tape.leaf(Matrix::from_vec(3, 2, vec![1., 5., 3., 2., -4., 8.]));
        let offsets = [0usize, 2, 3, 3];

        let sum = tape.segment_sum_rows(h, &offsets);
        assert_eq!(tape.value(sum).as_slice(), &[4., 7., -4., 8., 0., 0.]);
        let mean = tape.segment_mean_rows(h, &offsets);
        assert_eq!(tape.value(mean).as_slice(), &[2., 3.5, -4., 8., 0., 0.]);
        let mx = tape.segment_max_rows(h, &offsets);
        assert_eq!(tape.value(mx).as_slice(), &[3., 5., -4., 8., 0., 0.]);

        let loss = tape.sum_all(mean);
        let g = tape.backward(loss);
        assert_eq!(g.of(h).unwrap().as_slice(), &[0.5, 0.5, 0.5, 0.5, 1., 1.]);

        let loss_mx = tape.sum_all(mx);
        let gm = tape.backward(loss_mx);
        // Max picked row1/col0, row0/col1 in segment 0; row 2 in segment 1.
        assert_eq!(gm.of(h).unwrap().as_slice(), &[0., 1., 1., 0., 1., 1.]);
    }

    #[test]
    fn single_segment_matches_whole_matrix_pooling() {
        let tape = Tape::new();
        let h = tape.leaf(Matrix::from_vec(2, 2, vec![1., 5., 3., 2.]));
        let offsets = [0usize, 2];
        assert_eq!(
            tape.value(tape.segment_mean_rows(h, &offsets)),
            tape.value(tape.mean_rows(h))
        );
        assert_eq!(
            tape.value(tape.segment_sum_rows(h, &offsets)),
            tape.value(tape.sum_rows(h))
        );
        assert_eq!(
            tape.value(tape.segment_max_rows(h, &offsets)),
            tape.value(tape.max_rows(h))
        );
    }

    #[test]
    #[should_panic(expected = "offsets must end at the row count")]
    fn segment_offsets_must_cover_rows() {
        let tape = Tape::new();
        let h = tape.leaf(Matrix::zeros(3, 1));
        let _ = tape.segment_sum_rows(h, &[0, 2]);
    }

    #[test]
    fn concat_and_outer_sum() {
        let tape = Tape::new();
        let a = tape.leaf(Matrix::from_vec(2, 1, vec![1., 2.]));
        let b = tape.leaf(Matrix::from_vec(2, 1, vec![10., 20.]));
        let cat = tape.concat_cols(a, b);
        assert_eq!(tape.value(cat).as_slice(), &[1., 10., 2., 20.]);
        let os = tape.outer_sum(a, b);
        assert_eq!(tape.value(os).as_slice(), &[11., 21., 12., 22.]);
        let loss = tape.sum_all(os);
        let g = tape.backward(loss);
        assert_eq!(g.of(a).unwrap().as_slice(), &[2., 2.]);
        assert_eq!(g.of(b).unwrap().as_slice(), &[2., 2.]);
    }

    #[test]
    fn masked_softmax_rows_behaviour() {
        let tape = Tape::new();
        let e = tape.leaf(Matrix::from_vec(2, 2, vec![1., 1., 5., 0.]));
        let mask = Arc::new(Matrix::from_vec(2, 2, vec![1., 1., 0., 0.]));
        let s = tape.masked_softmax_rows(e, &mask);
        let v = tape.value(s);
        assert_close(v.get(0, 0), 0.5, 1e-6);
        assert_close(v.get(0, 1), 0.5, 1e-6);
        assert_eq!(v.get(1, 0), 0.0); // fully masked row
        assert_eq!(v.get(1, 1), 0.0);
    }

    #[test]
    fn shared_constants_are_interned() {
        let tape = Tape::new();
        let m = Arc::new(Matrix::identity(3));
        let a = tape.constant_shared(&m);
        let b = tape.constant_shared(&m);
        assert_eq!(a, b);
        let before = tape.len();
        let _ = tape.constant_shared(&m);
        assert_eq!(tape.len(), before, "re-interning must not grow the tape");
        // A distinct allocation with equal contents is a different constant.
        let other = Arc::new(Matrix::identity(3));
        assert_ne!(tape.constant_shared(&other), a);
    }

    #[test]
    fn spmm_matches_dense_matmul_forward_and_backward() {
        let adj = Matrix::from_vec(3, 3, vec![0., 1., 0., 0.5, 0., 2., 0., 0., 0.]);
        let x0 = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32 - 2.0);

        let dense_tape = Tape::new();
        let xd = dense_tape.leaf(x0.clone());
        let ad = dense_tape.constant(adj.clone());
        let outd = dense_tape.matmul(ad, xd);
        let lossd = dense_tape.sum_all(outd);
        let gd = dense_tape.backward(lossd);

        let sparse_tape = Tape::new();
        let xs = sparse_tape.leaf(x0.clone());
        let pair = CsrPair::new(CsrMatrix::from_dense(&adj));
        let outs = sparse_tape.spmm(&pair, xs);
        let losss = sparse_tape.sum_all(outs);
        let gs = sparse_tape.backward(losss);

        assert!(
            dense_tape
                .value(outd)
                .max_abs_diff(&sparse_tape.value(outs))
                < 1e-6
        );
        assert!(gd.of(xd).unwrap().max_abs_diff(gs.of(xs).unwrap()) < 1e-6);
    }

    #[test]
    fn edge_ops_match_dense_gat_attention() {
        // mask = chain 0->1->2 plus self-loops.
        let mut mask = Matrix::identity(3);
        mask.set(0, 1, 1.0);
        mask.set(1, 2, 1.0);
        let structure = Arc::new(CsrMatrix::from_dense(&mask));
        let s_src = Matrix::from_vec(3, 1, vec![0.3, -1.0, 0.7]);
        let s_dst = Matrix::from_vec(3, 1, vec![-0.2, 0.9, 0.1]);
        let z0 = Matrix::from_fn(3, 2, |r, c| (r as f32) - (c as f32) * 0.5);

        // Dense reference.
        let dt = Tape::new();
        let (ud, vd) = (dt.leaf(s_src.clone()), dt.leaf(s_dst.clone()));
        let zd = dt.leaf(z0.clone());
        let ed = dt.outer_sum(ud, vd);
        let ed = dt.leaky_relu(ed, 0.2);
        let alphad = dt.masked_softmax_rows(ed, &Arc::new(mask.clone()));
        let outd = dt.matmul(alphad, zd);
        let lossd = dt.sum_all(outd);
        let gd = dt.backward(lossd);

        // Sparse path.
        let st = Tape::new();
        let (us, vs) = (st.leaf(s_src.clone()), st.leaf(s_dst.clone()));
        let zs = st.leaf(z0.clone());
        let es = st.edge_score_sum(us, vs, &structure);
        let es = st.leaky_relu(es, 0.2);
        let alphas = st.edge_softmax(es, &structure);
        let outs = st.edge_gather(alphas, zs, &structure);
        let losss = st.sum_all(outs);
        let gs = st.backward(losss);

        assert!(dt.value(outd).max_abs_diff(&st.value(outs)) < 1e-6);
        assert!(gd.of(ud).unwrap().max_abs_diff(gs.of(us).unwrap()) < 1e-5);
        assert!(gd.of(vd).unwrap().max_abs_diff(gs.of(vs).unwrap()) < 1e-5);
        assert!(gd.of(zd).unwrap().max_abs_diff(gs.of(zs).unwrap()) < 1e-5);
    }

    #[test]
    fn edge_softmax_handles_empty_rows() {
        // Row 1 has no edges at all.
        let structure = Arc::new(CsrMatrix::from_edges(2, 2, &[(0, 0, 1.0), (0, 1, 1.0)]));
        let tape = Tape::new();
        let scores = tape.leaf(Matrix::from_vec(2, 1, vec![1.0, 1.0]));
        let alpha = tape.edge_softmax(scores, &structure);
        let v = tape.value(alpha);
        assert_close(v.get(0, 0), 0.5, 1e-6);
        assert_close(v.get(1, 0), 0.5, 1e-6);
    }

    #[test]
    fn softmax_ce_loss_and_grad_direction() {
        let tape = Tape::new();
        let logits = tape.leaf(Matrix::from_vec(1, 2, vec![2.0, 0.0]));
        let loss = tape.softmax_cross_entropy(logits, &[0]);
        let lv = tape.value(loss).get(0, 0);
        assert!(lv > 0.0 && lv < 0.2, "confident correct answer: small loss");
        let g = tape.backward(loss);
        let gl = g.of(logits).unwrap();
        assert!(gl.get(0, 0) < 0.0, "push correct logit up");
        assert!(gl.get(0, 1) > 0.0, "push wrong logit down");
    }

    #[test]
    fn scalar_mul_grads() {
        let tape = Tape::new();
        let s = tape.leaf(Matrix::from_vec(1, 1, vec![3.0]));
        let m = tape.leaf(Matrix::row_vector(&[1.0, 2.0]));
        let y = tape.scalar_mul(s, m);
        assert_eq!(tape.value(y).as_slice(), &[3.0, 6.0]);
        let loss = tape.sum_all(y);
        let g = tape.backward(loss);
        assert_eq!(g.of(s).unwrap().get(0, 0), 3.0); // sum(m)
        assert_eq!(g.of(m).unwrap().as_slice(), &[3.0, 3.0]);
    }

    #[test]
    fn dropout_zero_p_is_identity() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let tape = Tape::new();
        let x = tape.leaf(Matrix::row_vector(&[1.0, 2.0, 3.0]));
        let y = tape.dropout(x, 0.0, &mut rng);
        assert_eq!(tape.value(y).as_slice(), &[1.0, 2.0, 3.0]);
    }

    /// Numerical gradient check on a composite expression exercising most ops.
    #[test]
    fn numerical_gradient_check() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let x0 = Matrix::from_fn(3, 4, |_, _| rand::Rng::random_range(&mut rng, -1.0..1.0));
        let w0 = Matrix::from_fn(4, 2, |_, _| rand::Rng::random_range(&mut rng, -1.0..1.0));

        let eval = |x: &Matrix, w: &Matrix| -> f32 {
            let tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let wv = tape.leaf(w.clone());
            let h = tape.matmul(xv, wv);
            let h = tape.tanh(h);
            let p = tape.mean_rows(h);
            let loss = tape.softmax_cross_entropy(p, &[1]);
            tape.value(loss).get(0, 0)
        };

        // Analytic grads.
        let tape = Tape::new();
        let xv = tape.leaf(x0.clone());
        let wv = tape.leaf(w0.clone());
        let h = tape.matmul(xv, wv);
        let h = tape.tanh(h);
        let p = tape.mean_rows(h);
        let loss = tape.softmax_cross_entropy(p, &[1]);
        let g = tape.backward(loss);
        let gw = g.of(wv).unwrap().clone();
        let gx = g.of(xv).unwrap().clone();

        let eps = 1e-3;
        for (r, c) in [(0usize, 0usize), (1, 1), (3, 0), (2, 1)] {
            let mut wp = w0.clone();
            wp.set(r, c, wp.get(r, c) + eps);
            let mut wm = w0.clone();
            wm.set(r, c, wm.get(r, c) - eps);
            let num = (eval(&x0, &wp) - eval(&x0, &wm)) / (2.0 * eps);
            assert_close(gw.get(r, c), num, 2e-2);
        }
        for (r, c) in [(0usize, 0usize), (2, 3)] {
            let mut xp = x0.clone();
            xp.set(r, c, xp.get(r, c) + eps);
            let mut xm = x0.clone();
            xm.set(r, c, xm.get(r, c) - eps);
            let num = (eval(&xp, &w0) - eval(&xm, &w0)) / (2.0 * eps);
            assert_close(gx.get(r, c), num, 2e-2);
        }
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]);
        let s = softmax_rows(&m);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert_close(sum, 1.0, 1e-6);
        }
    }
}
