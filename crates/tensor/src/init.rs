//! Seeded weight initialisation schemes.

use crate::matrix::Matrix;
use rand::Rng;

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. The default for tanh/sigmoid layers
/// and the GNN weight matrices.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(-a..a))
}

/// He/Kaiming normal initialisation: `N(0, sqrt(2 / fan_in))`, suited to
/// ReLU-family activations. Uses a Box–Muller transform so only `rand`'s
/// uniform source is required.
pub fn he_normal(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let std = (2.0 / rows as f32).sqrt();
    Matrix::from_fn(rows, cols, |_, _| std * standard_normal(rng))
}

/// A single standard-normal draw via Box–Muller.
pub fn standard_normal(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.random_range(f32::EPSILON..1.0);
    let u2: f32 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds_hold() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let m = xavier_uniform(16, 32, &mut rng);
        let a = (6.0 / 48.0f32).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= a));
        assert!(m.as_slice().iter().any(|&x| x != 0.0));
    }

    #[test]
    fn he_normal_has_roughly_right_scale() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let m = he_normal(64, 64, &mut rng);
        let var: f32 = m.as_slice().iter().map(|x| x * x).sum::<f32>() / (64.0 * 64.0);
        let expected = 2.0 / 64.0;
        assert!(
            (var - expected).abs() < expected,
            "sample variance {var} vs expected {expected}"
        );
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = xavier_uniform(4, 4, &mut rand::rngs::StdRng::seed_from_u64(3));
        let b = xavier_uniform(4, 4, &mut rand::rngs::StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }
}
