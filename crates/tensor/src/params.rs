//! Named parameter storage shared between models and optimizers.

use crate::matrix::Matrix;
use crate::tape::{Tape, Var};

/// Identifier of a parameter inside a [`Parameters`] store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

impl ParamId {
    /// Zero-based slot of this parameter.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// An ordered, named collection of trainable matrices.
///
/// Models allocate their weights here once; every training step *binds* the
/// current values onto a fresh [`Tape`] (producing one differentiable leaf
/// [`Var`] per parameter, in slot order) and optimizers write updates back.
///
/// # Examples
///
/// ```
/// use scamdetect_tensor::{Matrix, Parameters, Tape};
///
/// let mut params = Parameters::new();
/// let w = params.add("weight", Matrix::identity(2));
/// let tape = Tape::new();
/// let vars = params.bind(&tape);
/// assert_eq!(tape.value(vars[w.index()]), Matrix::identity(2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Parameters {
    names: Vec<String>,
    mats: Vec<Matrix>,
}

impl Parameters {
    /// Creates an empty store.
    pub fn new() -> Self {
        Parameters::default()
    }

    /// Registers a parameter and returns its id.
    pub fn add(&mut self, name: impl Into<String>, init: Matrix) -> ParamId {
        self.names.push(name.into());
        self.mats.push(init);
        ParamId(self.mats.len() - 1)
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.mats.len()
    }

    /// Returns `true` if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.mats.is_empty()
    }

    /// Current value of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` comes from a different store.
    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.mats[id.0]
    }

    /// Mutable access to the value of `id`.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.mats[id.0]
    }

    /// Name of `id`.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Binds every parameter onto `tape` as a differentiable leaf, returning
    /// the `Var`s in slot order (index with [`ParamId::index`]).
    pub fn bind(&self, tape: &Tape) -> Vec<Var> {
        self.mats.iter().map(|m| tape.leaf(m.clone())).collect()
    }

    /// Iterates over `(id, name, matrix)`.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Matrix)> {
        self.mats
            .iter()
            .enumerate()
            .map(|(i, m)| (ParamId(i), self.names[i].as_str(), m))
    }

    /// Total scalar count across all parameters.
    pub fn scalar_count(&self) -> usize {
        self.mats.iter().map(|m| m.rows() * m.cols()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_and_names() {
        let mut p = Parameters::new();
        let a = p.add("a", Matrix::zeros(2, 3));
        let b = p.add("b", Matrix::identity(2));
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.name(a), "a");
        assert_eq!(p.get(b).get(1, 1), 1.0);
        assert_eq!(p.scalar_count(), 10);
        p.get_mut(a).set(0, 0, 5.0);
        assert_eq!(p.get(a).get(0, 0), 5.0);
    }

    #[test]
    fn bind_produces_leaves_in_order() {
        let mut p = Parameters::new();
        let a = p.add("a", Matrix::filled(1, 1, 1.0));
        let b = p.add("b", Matrix::filled(1, 1, 2.0));
        let tape = Tape::new();
        let vars = p.bind(&tape);
        assert_eq!(vars.len(), 2);
        assert_eq!(tape.value(vars[a.index()]).get(0, 0), 1.0);
        assert_eq!(tape.value(vars[b.index()]).get(0, 0), 2.0);
    }

    #[test]
    fn iter_yields_all() {
        let mut p = Parameters::new();
        p.add("x", Matrix::zeros(1, 1));
        p.add("y", Matrix::zeros(1, 2));
        let names: Vec<&str> = p.iter().map(|(_, n, _)| n).collect();
        assert_eq!(names, vec!["x", "y"]);
    }
}
