//! Dense matrices with reverse-mode automatic differentiation.
//!
//! ScamDetect's neural models (MLP baselines and the five GNN architectures)
//! are built from scratch on this crate. It provides:
//!
//! * [`Matrix`] — a row-major dense `f32` matrix with the usual linear
//!   algebra (`matmul`, transpose, elementwise maps),
//! * [`CsrMatrix`] / [`CsrPair`] — compressed-sparse-row matrices with an
//!   `sparse @ dense` kernel ([`CsrMatrix::spmm`]) and a precomputed
//!   transpose for reverse mode,
//! * [`Tape`] / [`Var`] — an eager autodiff tape: every operation computes
//!   its value immediately and records a backward closure; calling
//!   [`Tape::backward`] accumulates gradients for every variable that
//!   requires them,
//! * [`optim`] — SGD and Adam optimizers over a [`Parameters`] store,
//! * [`init`] — seeded Xavier/He initialisation,
//! * [`io`] — the hand-rolled little-endian persistence codec: the
//!   [`ParamIo`] state export/import trait, named [`Sections`], and raw
//!   [`Matrix`] read/write ([`Matrix::write_le`] / [`Matrix::read_le`])
//!   backing the versioned `ModelArtifact` format upstream.
//!
//! # Sparse message passing
//!
//! Contract CFGs are sparse — a handful of successors per basic block — so
//! the GNN aggregation operators are kept in CSR form and applied with
//! [`Tape::spmm`] (`O(nnz · d)` per layer instead of `O(n² · d)`), whose
//! backward pass `gX = Aᵀ @ g_out` reuses the transpose precomputed in a
//! [`CsrPair`]. GAT attention follows the same structure edge-wise:
//! [`Tape::edge_score_sum`] gathers per-edge scores,
//! [`Tape::edge_softmax`] normalises them per source row, and
//! [`Tape::edge_gather`] scatters the weighted neighbour features — no
//! `n x n` score matrix or mask is ever materialised. Dense mirrors of
//! these ops ([`Tape::matmul`], [`Tape::masked_softmax_rows`]) remain for
//! the reference/fallback path and for equivalence tests. Shared per-graph
//! tensors are placed on a tape via [`Tape::constant_shared`], which interns
//! `Arc` handles so repeated forward passes never clone them.
//!
//! # Mini-batch training
//!
//! Multiple graphs train on one tape by stacking their aggregators into a
//! block-diagonal operator ([`CsrMatrix::block_diag`] /
//! [`CsrPair::block_diag`], which reuses the per-block precomputed
//! transposes) and pooling per graph with the segment readouts
//! ([`Tape::segment_mean_rows`], [`Tape::segment_sum_rows`],
//! [`Tape::segment_max_rows`]), each of which reduces the row range of one
//! graph to one output row with exact gradients. [`Tape::edge_softmax`]
//! normalises per CSR row, so attention over a block-diagonal structure is
//! already per-segment — no cross-graph mass can leak.
//!
//! # Examples
//!
//! Training `y = 2x` with one weight:
//!
//! ```
//! use scamdetect_tensor::{Matrix, Parameters, Tape, optim::Sgd};
//!
//! let mut params = Parameters::new();
//! let w = params.add("w", Matrix::from_vec(1, 1, vec![0.0]));
//! let mut sgd = Sgd::new(0.1);
//! for _ in 0..100 {
//!     let tape = Tape::new();
//!     let vars = params.bind(&tape);
//!     let x = tape.constant(Matrix::from_vec(1, 1, vec![3.0]));
//!     let y = tape.matmul(x, vars[w.index()]);
//!     let target = tape.constant(Matrix::from_vec(1, 1, vec![6.0]));
//!     let diff = tape.sub(y, target);
//!     let loss = tape.mul(diff, diff);
//!     let grads = tape.backward(loss);
//!     sgd.step(&mut params, |id| grads.of(vars[id.index()]));
//! }
//! assert!((params.get(w).get(0, 0) - 2.0).abs() < 1e-3);
//! ```

pub mod init;
pub mod io;
pub mod matrix;
pub mod optim;
pub mod params;
pub mod sparse;
pub mod tape;

pub use io::{ByteReader, ByteWriter, CodecError, ParamIo, Sections};
pub use matrix::Matrix;
pub use params::{ParamId, Parameters};
pub use sparse::{CsrMatrix, CsrPair};
pub use tape::{Gradients, Tape, Var};
