//! Dense matrices with reverse-mode automatic differentiation.
//!
//! ScamDetect's neural models (MLP baselines and the five GNN architectures)
//! are built from scratch on this crate. It provides:
//!
//! * [`Matrix`] — a row-major dense `f32` matrix with the usual linear
//!   algebra (`matmul`, transpose, elementwise maps),
//! * [`Tape`] / [`Var`] — an eager autodiff tape: every operation computes
//!   its value immediately and records a backward closure; calling
//!   [`Tape::backward`] accumulates gradients for every variable that
//!   requires them,
//! * [`optim`] — SGD and Adam optimizers over a [`Parameters`] store,
//! * [`init`] — seeded Xavier/He initialisation.
//!
//! Control-flow graphs from smart contracts are small (≤ a few hundred
//! nodes), so all graph operations use dense adjacency matrices; clarity and
//! auditability of the layer math beat sparse cleverness at this scale.
//!
//! # Examples
//!
//! Training `y = 2x` with one weight:
//!
//! ```
//! use scamdetect_tensor::{Matrix, Parameters, Tape, optim::Sgd};
//!
//! let mut params = Parameters::new();
//! let w = params.add("w", Matrix::from_vec(1, 1, vec![0.0]));
//! let mut sgd = Sgd::new(0.1);
//! for _ in 0..100 {
//!     let tape = Tape::new();
//!     let vars = params.bind(&tape);
//!     let x = tape.constant(Matrix::from_vec(1, 1, vec![3.0]));
//!     let y = tape.matmul(x, vars[w.index()]);
//!     let target = tape.constant(Matrix::from_vec(1, 1, vec![6.0]));
//!     let diff = tape.sub(y, target);
//!     let loss = tape.mul(diff, diff);
//!     let grads = tape.backward(loss);
//!     sgd.step(&mut params, |id| grads.of(vars[id.index()]));
//! }
//! assert!((params.get(w).get(0, 0) - 2.0).abs() < 1e-3);
//! ```

pub mod init;
pub mod matrix;
pub mod optim;
pub mod params;
pub mod tape;

pub use matrix::Matrix;
pub use params::{ParamId, Parameters};
pub use tape::{Gradients, Tape, Var};
