//! Embedded serving: score contracts with pre-trained weights, anywhere.
//!
//! This crate is the **serve-anywhere** end of the train-once /
//! serve-anywhere split for hosts that have *nothing but bytes*: no
//! filesystem, no threads, no clocks. That is exactly the environment of
//! a browser embed compiled to `wasm32-unknown-unknown` — and also of
//! plugin sandboxes, mobile FFI layers and unikernels.
//!
//! [`EmbedScanner`] deliberately avoids every host facility the full
//! [`scamdetect::Scanner`] leans on:
//!
//! * **No filesystem** — models arrive as an in-memory
//!   `ModelArtifact` byte buffer ([`EmbedScanner::from_artifact_bytes`]),
//!   e.g. `fetch()`ed next to the wasm module.
//! * **No threads** — scoring is a plain `&self` call on the calling
//!   "thread"; there is no worker fan-out to spawn.
//! * **No clocks** — no `Instant::now()`, which traps on
//!   `wasm32-unknown-unknown`.
//!
//! Verdicts are **bit-for-bit identical** to the training process's: the
//! artifact restores the exact trained state, and scoring runs the same
//! deterministic pipeline.
//!
//! A browser embed wraps this with its favourite bindgen; the API is
//! plain bytes-in / numbers-out so no binding layer is assumed:
//!
//! ```
//! use scamdetect::{ClassicModel, FeatureKind, ModelKind, ScannerBuilder};
//! use scamdetect_dataset::{Corpus, CorpusConfig};
//! use scamdetect_embed::EmbedScanner;
//!
//! # fn main() -> Result<(), scamdetect::ScamDetectError> {
//! // Server side, once: train and export the artifact bytes.
//! let corpus = Corpus::generate(&CorpusConfig { size: 40, seed: 9, ..CorpusConfig::default() });
//! let trained = ScannerBuilder::new()
//!     .model(ModelKind::Classic(ClassicModel::RandomForest, FeatureKind::Unified))
//!     .train(&corpus)?;
//! let artifact_bytes = trained.to_artifact()?.to_bytes();
//!
//! // Embedded side, everywhere: reconstruct from bytes and score.
//! let embed = EmbedScanner::from_artifact_bytes(&artifact_bytes)?;
//! let verdict = embed.classify(&corpus.contracts()[0].bytes)?;
//! println!("{verdict}");
//! # Ok(())
//! # }
//! ```

use scamdetect::featurize::{detect_platform, Lifted};
use scamdetect::{Detector, ModelArtifact, ScamDetectError, Verdict};
use scamdetect_ir::Platform;

/// A pre-trained detector serving from an in-memory artifact: the
/// filesystem-free, thread-free, clock-free scoring surface.
#[derive(Debug)]
pub struct EmbedScanner {
    detector: Detector,
    model_name: String,
    threshold: f64,
}

impl EmbedScanner {
    /// Reconstructs the trained model from `ModelArtifact` bytes.
    ///
    /// The artifact's saved decision threshold is adopted; override it
    /// with [`EmbedScanner::with_threshold`].
    ///
    /// # Errors
    ///
    /// Typed [`ScamDetectError::Artifact`] diagnostics on truncated,
    /// corrupted or version-mismatched buffers — never a panic, which
    /// matters doubly inside a wasm sandbox where a trap kills the host
    /// page's worker.
    pub fn from_artifact_bytes(bytes: &[u8]) -> Result<EmbedScanner, ScamDetectError> {
        let artifact = ModelArtifact::from_bytes(bytes)?;
        let detector = artifact.into_detector()?;
        Ok(EmbedScanner {
            model_name: detector.name(),
            detector,
            threshold: artifact.threshold(),
        })
    }

    /// Overrides the decision threshold.
    ///
    /// # Panics
    ///
    /// Panics when `threshold` is not a finite value in `[0, 1]`.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && (0.0..=1.0).contains(&threshold),
            "threshold must be in [0, 1], got {threshold}"
        );
        self.threshold = threshold;
        self
    }

    /// The active decision threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The model's name (architecture + feature representation).
    pub fn model_name(&self) -> &str {
        &self.model_name
    }

    /// The reconstructed detector (for direct feature-level access).
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// P(malicious) of raw contract bytes, platform auto-detected.
    ///
    /// # Errors
    ///
    /// Frontend errors when the bytes are not a valid contract.
    pub fn score(&self, bytes: &[u8]) -> Result<f64, ScamDetectError> {
        self.score_on(detect_platform(bytes), bytes)
    }

    /// P(malicious) of raw contract bytes on a pinned platform.
    ///
    /// # Errors
    ///
    /// Frontend errors when the bytes are not a valid contract.
    pub fn score_on(&self, platform: Platform, bytes: &[u8]) -> Result<f64, ScamDetectError> {
        let lifted = Lifted::from_bytes(platform, bytes)?;
        Ok(self.detector.score_lifted(&lifted))
    }

    /// Full verdict (label, probability, CFG statistics), platform
    /// auto-detected.
    ///
    /// # Errors
    ///
    /// Frontend errors when the bytes are not a valid contract.
    pub fn classify(&self, bytes: &[u8]) -> Result<Verdict, ScamDetectError> {
        self.classify_on(detect_platform(bytes), bytes)
    }

    /// Full verdict on a pinned platform.
    ///
    /// # Errors
    ///
    /// Frontend errors when the bytes are not a valid contract.
    pub fn classify_on(
        &self,
        platform: Platform,
        bytes: &[u8],
    ) -> Result<Verdict, ScamDetectError> {
        let lifted = Lifted::from_bytes(platform, bytes)?;
        let probability = self.detector.score_lifted(&lifted);
        Ok(Verdict::decide(
            probability,
            self.threshold,
            platform,
            self.model_name.clone(),
            lifted.cfg.block_count(),
            lifted.cfg.instruction_count(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scamdetect::{ClassicModel, FeatureKind, GnnKind, ModelKind, ScannerBuilder, TrainOptions};
    use scamdetect_dataset::{Corpus, CorpusConfig};

    fn corpus() -> Corpus {
        Corpus::generate(&CorpusConfig {
            size: 30,
            seed: 0xE3B,
            ..CorpusConfig::default()
        })
    }

    #[test]
    fn embed_matches_native_scanner_bit_for_bit() {
        let c = corpus();
        let trained = ScannerBuilder::new()
            .model(ModelKind::Classic(
                ClassicModel::RandomForest,
                FeatureKind::Combined,
            ))
            .threshold(0.4)
            .train(&c)
            .expect("trains");
        let bytes = trained.to_artifact().unwrap().to_bytes();
        let embed = EmbedScanner::from_artifact_bytes(&bytes).expect("loads");
        assert_eq!(embed.threshold(), 0.4);
        for contract in c.contracts().iter().take(10) {
            let native = trained.scan(&contract.bytes).unwrap().verdict;
            let embedded = embed.classify(&contract.bytes).unwrap();
            assert_eq!(
                native.malicious_probability.to_bits(),
                embedded.malicious_probability.to_bits()
            );
            assert_eq!(native.label, embedded.label);
            assert_eq!(native.platform, embedded.platform);
        }
    }

    #[test]
    fn embed_serves_gnn_artifacts() {
        let c = corpus();
        let mut options = TrainOptions::default();
        options.gnn.epochs = 2;
        let trained = ScannerBuilder::new()
            .model(ModelKind::Gnn(GnnKind::Gcn))
            .train_options(options)
            .train(&c)
            .expect("trains");
        let bytes = trained.to_artifact().unwrap().to_bytes();
        let embed = EmbedScanner::from_artifact_bytes(&bytes).expect("loads");
        let native = trained.scan(&c.contracts()[0].bytes).unwrap().verdict;
        let embedded = embed.classify(&c.contracts()[0].bytes).unwrap();
        assert_eq!(
            native.malicious_probability.to_bits(),
            embedded.malicious_probability.to_bits()
        );
    }

    #[test]
    fn corrupted_buffer_fails_typed() {
        let err = EmbedScanner::from_artifact_bytes(b"not an artifact").unwrap_err();
        assert!(matches!(err, ScamDetectError::Artifact(_)));
    }

    #[test]
    fn threshold_override() {
        let c = corpus();
        let trained = ScannerBuilder::new().train(&c).unwrap();
        let bytes = trained.to_artifact().unwrap().to_bytes();
        let embed = EmbedScanner::from_artifact_bytes(&bytes)
            .unwrap()
            .with_threshold(0.0);
        // Threshold 0 flags everything.
        let verdict = embed.classify(&c.contracts()[0].bytes).unwrap();
        assert!(verdict.is_malicious());
    }
}
