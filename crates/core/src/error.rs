//! Framework error type.

use scamdetect_ir::FrontendError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the ScamDetect pipeline.
///
/// `Clone` so batch scanning can report one underlying failure to every
/// deduplicated request that shares the failing skeleton.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ScamDetectError {
    /// The contract bytes could not be lifted by any frontend.
    Frontend(FrontendError),
    /// A detector was asked to score before being trained.
    Untrained,
    /// The training corpus was empty (or single-class).
    BadCorpus {
        /// Explanation of the problem.
        reason: &'static str,
    },
    /// A model artifact could not be written, parsed or reconstructed
    /// (corruption, truncation, version mismatch, I/O failure) — see
    /// [`crate::artifact::ArtifactError`] for the precise diagnosis.
    Artifact(crate::artifact::ArtifactError),
}

impl fmt::Display for ScamDetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScamDetectError::Frontend(e) => write!(f, "frontend: {e}"),
            ScamDetectError::Untrained => write!(f, "detector has not been trained"),
            ScamDetectError::BadCorpus { reason } => {
                write!(f, "unusable training corpus: {reason}")
            }
            ScamDetectError::Artifact(e) => write!(f, "model artifact: {e}"),
        }
    }
}

impl Error for ScamDetectError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScamDetectError::Frontend(e) => Some(e),
            ScamDetectError::Artifact(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrontendError> for ScamDetectError {
    fn from(e: FrontendError) -> Self {
        ScamDetectError::Frontend(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ScamDetectError::from(FrontendError::EmptyContract);
        assert!(e.to_string().contains("frontend"));
        assert!(e.source().is_some());
        assert!(ScamDetectError::Untrained.source().is_none());
        assert!(!ScamDetectError::BadCorpus { reason: "empty" }
            .to_string()
            .is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Error + Send + Sync + 'static>() {}
        check::<ScamDetectError>();
    }
}
