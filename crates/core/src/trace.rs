//! Request tracing primitives: ids, hierarchical spans, bounded rings.
//!
//! This module is the std-only core of the serving stack's distributed
//! tracing subsystem. It deliberately knows nothing about HTTP, threads,
//! or Prometheus — it defines the *data model* and the two lock-light
//! containers everything else composes:
//!
//! * [`TraceId`] — a 64-bit id produced by a splitmix64 mix over a
//!   process-global counter (seeded from wall clock ⊕ pid), rendered as
//!   16 lowercase hex digits. Ids travel between processes in the
//!   `x-trace-id` header, so [`TraceId::parse`] accepts exactly what
//!   [`TraceId::to_hex`] emits.
//! * [`Stage`] — the closed vocabulary of span tags. Serve-side stages
//!   follow the request path (`queue_wait` → `parse` → `admission` →
//!   `handler` → `cache_lookup`/`prep`/`score` → `serialize` → `write`);
//!   router-side stages describe fleet forwarding (`route`, `forward`,
//!   `retry`, `breaker`). A typed enum (not free-form strings) keeps the
//!   per-stage histogram array dense and the wire format stable.
//! * [`ActiveTrace`] — the per-request span collector. It is owned by
//!   exactly one request and carried *inside* the request object, so
//!   recording a span is a plain `Vec::push` with no shared-state
//!   contention; cross-thread hand-off happens at most twice per request
//!   (dispatch → worker → writer), piggy-backing on existing channels.
//! * [`TraceRing`] — the bounded completed-trace ring. Pushes use
//!   `try_lock` and **drop rather than block** (the same discipline as
//!   the shadow-scoring queue): tracing must never add tail latency to
//!   the request path it observes.
//! * [`Sampler`] — head-based 1-in-N sampling with a slow-request
//!   override threshold. The decision to *record* is made once at
//!   request start; the decision to *keep* is made once at finish.
//!
//! Timestamps are monotonic ([`std::time::Instant`]) relative to a
//! per-trace origin; only the origin itself is stamped with wall-clock
//! time (`unix_start_us`) so cross-process timelines can be aligned
//! approximately by the stitcher.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// The splitmix64 increment (golden-ratio gamma). Shared with the
/// jittered-backoff helper in the fleet layer by value, not by import.
const SPLITMIX64_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// One round of splitmix64: a fast, well-dispersed 64-bit mixer.
/// Good enough for trace-id uniqueness (we never need cryptographic
/// unpredictability, only collision resistance across a fleet).
pub fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(SPLITMIX64_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

static TRACE_COUNTER: AtomicU64 = AtomicU64::new(0);

fn trace_seed() -> u64 {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    nanos ^ ((std::process::id() as u64) << 32)
}

/// A non-zero 64-bit trace identifier, wire-encoded as 16 hex digits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TraceId(u64);

impl TraceId {
    /// Generates a fresh id: splitmix64 over a global counter whose
    /// first use seeds it from wall clock ⊕ pid. Zero is reserved as
    /// "no id" and never produced.
    pub fn generate() -> TraceId {
        loop {
            let n = TRACE_COUNTER.fetch_add(1, Ordering::Relaxed);
            let seed = if n == 0 {
                trace_seed()
            } else {
                trace_seed().wrapping_add(n)
            };
            let mixed = splitmix64(seed);
            if mixed != 0 {
                return TraceId(mixed);
            }
        }
    }

    /// Wraps a raw value; zero means "absent" and is rejected.
    pub fn from_raw(raw: u64) -> Option<TraceId> {
        if raw == 0 {
            None
        } else {
            Some(TraceId(raw))
        }
    }

    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// The canonical wire form: exactly 16 lowercase hex digits.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the wire form. Accepts 1–16 hex digits (case-insensitive)
    /// so hand-typed short ids work at the CLI; rejects zero and junk.
    pub fn parse(s: &str) -> Option<TraceId> {
        let s = s.trim();
        if s.is_empty() || s.len() > 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u64::from_str_radix(s, 16).ok().and_then(TraceId::from_raw)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Typed span tags covering both the replica request path and the fleet
/// router's forwarding path. The numeric order is the canonical render
/// order for per-stage metrics.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Stage {
    /// The root span: covers the whole request from origin to finish.
    Request,
    /// Time between enqueue (accept or dispatch) and a worker picking
    /// the request up.
    QueueWait,
    /// Receiving and parsing the request head + body off the wire.
    Parse,
    /// Admission control decision (shed watermark check, load snapshot).
    Admission,
    /// The registered handler, end to end. Stage spans below nest here.
    Handler,
    /// Verdict-cache fingerprint + probe inside the scanner.
    CacheLookup,
    /// Input preparation: wire decode, hex/base64 lift, featurization.
    Prep,
    /// Model scoring (detector inference) on a cache miss.
    Score,
    /// Rendering the response body (report JSON).
    Serialize,
    /// Encoding + writing the response bytes to the socket.
    Write,
    /// Router: consistent-hash ring lookup choosing the owning replica.
    Route,
    /// Router: one forward attempt to a replica (note carries
    /// `replica=ADDR status=N attempt=K`).
    Forward,
    /// Router: the decision to retry after a failed attempt.
    Retry,
    /// Router: a replica skipped or request refused by breaker state.
    Breaker,
}

impl Stage {
    /// Every stage, in canonical order. `Stage::ALL[s.index()] == s`.
    pub const ALL: [Stage; 14] = [
        Stage::Request,
        Stage::QueueWait,
        Stage::Parse,
        Stage::Admission,
        Stage::Handler,
        Stage::CacheLookup,
        Stage::Prep,
        Stage::Score,
        Stage::Serialize,
        Stage::Write,
        Stage::Route,
        Stage::Forward,
        Stage::Retry,
        Stage::Breaker,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Request => "request",
            Stage::QueueWait => "queue_wait",
            Stage::Parse => "parse",
            Stage::Admission => "admission",
            Stage::Handler => "handler",
            Stage::CacheLookup => "cache_lookup",
            Stage::Prep => "prep",
            Stage::Score => "score",
            Stage::Serialize => "serialize",
            Stage::Write => "write",
            Stage::Route => "route",
            Stage::Forward => "forward",
            Stage::Retry => "retry",
            Stage::Breaker => "breaker",
        }
    }

    pub fn parse(s: &str) -> Option<Stage> {
        Stage::ALL.iter().copied().find(|stage| stage.as_str() == s)
    }

    /// Dense index into [`Stage::ALL`]; used for per-stage histograms.
    pub fn index(self) -> usize {
        Stage::ALL.iter().position(|s| *s == self).unwrap_or(0)
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One completed span: microsecond offsets relative to the trace origin.
#[derive(Clone, Debug)]
pub struct TraceSpan {
    /// Span id, unique within the trace. The root span is always id 0.
    pub id: u32,
    /// Parent span id; `None` only for the root.
    pub parent: Option<u32>,
    pub stage: Stage,
    /// Start offset from the trace origin, µs.
    pub start_us: u64,
    pub duration_us: u64,
    /// Free-form detail (`replica=127.0.0.1:4100 status=200 attempt=0`).
    pub note: Option<String>,
}

/// A finished, immutable trace ready for the ring and the wire.
#[derive(Clone, Debug)]
pub struct Trace {
    pub id: TraceId,
    /// Wall-clock stamp of the trace origin, µs since the Unix epoch.
    /// Approximate — used only to align cross-process timelines.
    pub unix_start_us: u64,
    /// Origin-to-finish duration, µs (root span duration).
    pub total_us: u64,
    /// True when `total_us` met the slow-trace threshold at finish.
    pub slow: bool,
    /// True when head sampling elected this trace.
    pub sampled: bool,
    /// True when the id arrived from upstream via `x-trace-id`.
    pub forced: bool,
    pub spans: Vec<TraceSpan>,
}

impl Trace {
    /// First span with the given stage, if any.
    pub fn span_of(&self, stage: Stage) -> Option<&TraceSpan> {
        self.spans.iter().find(|s| s.stage == stage)
    }

    /// True when every non-root span's parent exists and the child's
    /// interval is contained in the parent's (1µs slack per edge, since
    /// offsets truncate to whole microseconds).
    pub fn nesting_consistent(&self) -> bool {
        self.spans.iter().all(|span| match span.parent {
            None => span.id == 0,
            Some(parent) => self.spans.iter().any(|p| {
                p.id == parent
                    && p.start_us <= span.start_us.saturating_add(1)
                    && span.start_us + span.duration_us <= p.start_us + p.duration_us + 1
            }),
        })
    }
}

/// The per-request span collector. Owned by one request at a time and
/// mutated without shared locks; finished into an immutable [`Trace`].
#[derive(Debug)]
pub struct ActiveTrace {
    id: TraceId,
    origin: Instant,
    unix_start_us: u64,
    sampled: bool,
    forced: bool,
    spans: Vec<TraceSpan>,
    /// Open span ids, innermost last. The root (id 0) is open from
    /// `start` until `finish`.
    stack: Vec<u32>,
    next: u32,
}

impl ActiveTrace {
    /// Opens a trace whose root `request` span starts at `origin`.
    pub fn start(id: TraceId, origin: Instant, sampled: bool, forced: bool) -> ActiveTrace {
        let unix_start_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0)
            .saturating_sub(origin.elapsed().as_micros() as u64);
        ActiveTrace {
            id,
            origin,
            unix_start_us,
            sampled,
            forced,
            spans: vec![TraceSpan {
                id: 0,
                parent: None,
                stage: Stage::Request,
                start_us: 0,
                duration_us: 0,
                note: None,
            }],
            stack: vec![0],
            next: 1,
        }
    }

    pub fn id(&self) -> TraceId {
        self.id
    }

    pub fn sampled(&self) -> bool {
        self.sampled
    }

    pub fn forced(&self) -> bool {
        self.forced
    }

    fn offset_us(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.origin).as_micros() as u64
    }

    /// Opens a span now, nested under the innermost open span. Returns
    /// the span id to pass to [`ActiveTrace::end`].
    pub fn begin(&mut self, stage: Stage) -> u32 {
        let id = self.next;
        self.next += 1;
        let parent = self.stack.last().copied();
        self.spans.push(TraceSpan {
            id,
            parent,
            stage,
            start_us: self.offset_us(Instant::now()),
            duration_us: 0,
            note: None,
        });
        self.stack.push(id);
        id
    }

    /// Closes an open span (and, tolerantly, anything opened inside it
    /// that was never closed) at the current instant.
    pub fn end(&mut self, span_id: u32) {
        self.end_at(span_id, Instant::now(), None);
    }

    /// Closes an open span and attaches a note.
    pub fn end_with_note(&mut self, span_id: u32, note: String) {
        self.end_at(span_id, Instant::now(), Some(note));
    }

    fn end_at(&mut self, span_id: u32, at: Instant, note: Option<String>) {
        let end = self.offset_us(at);
        while let Some(open) = self.stack.pop() {
            if open == 0 {
                // Never implicitly close the root; put it back.
                self.stack.push(0);
                break;
            }
            if let Some(span) = self.spans.iter_mut().find(|s| s.id == open) {
                span.duration_us = end.saturating_sub(span.start_us);
                if open == span_id {
                    span.note = note;
                    return;
                }
            }
            if open == span_id {
                return;
            }
        }
    }

    /// Records an already-measured interval as a closed span nested
    /// under the innermost open span.
    pub fn record(&mut self, stage: Stage, start: Instant, end: Instant) -> u32 {
        self.record_note(stage, start, end, None)
    }

    /// [`ActiveTrace::record`] with a note attached.
    pub fn record_note(
        &mut self,
        stage: Stage,
        start: Instant,
        end: Instant,
        note: Option<String>,
    ) -> u32 {
        let id = self.next;
        self.next += 1;
        let start_us = self.offset_us(start);
        let end_us = self.offset_us(end);
        self.spans.push(TraceSpan {
            id,
            parent: self.stack.last().copied(),
            stage,
            start_us,
            duration_us: end_us.saturating_sub(start_us),
            note,
        });
        id
    }

    /// Seals the trace: closes every still-open span (including the
    /// root) at `now` and stamps the slow flag against `slow_us`.
    pub fn finish(mut self, now: Instant, slow_us: u64) -> Trace {
        let end = self.offset_us(now);
        while let Some(open) = self.stack.pop() {
            if let Some(span) = self.spans.iter_mut().find(|s| s.id == open) {
                span.duration_us = end.saturating_sub(span.start_us);
            }
        }
        Trace {
            id: self.id,
            unix_start_us: self.unix_start_us,
            total_us: end,
            slow: slow_us > 0 && end >= slow_us,
            sampled: self.sampled,
            forced: self.forced,
            spans: self.spans,
        }
    }
}

/// Bounded ring of completed traces. Push uses `try_lock` and drops on
/// contention — the same drop-not-block discipline as the shadow queue:
/// observability must never stall the request path.
#[derive(Debug)]
pub struct TraceRing {
    ring: Mutex<VecDeque<Arc<Trace>>>,
    capacity: usize,
    kept: AtomicU64,
    dropped: AtomicU64,
}

impl TraceRing {
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            ring: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            capacity: capacity.max(1),
            kept: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a trace, evicting the oldest at capacity. Returns false
    /// (and counts a drop) when the ring lock is contended or poisoned.
    pub fn push(&self, trace: Arc<Trace>) -> bool {
        match self.ring.try_lock() {
            Ok(mut ring) => {
                if ring.len() >= self.capacity {
                    ring.pop_front();
                }
                ring.push_back(trace);
                self.kept.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Newest-first snapshot of up to `limit` traces.
    pub fn recent(&self, limit: usize) -> Vec<Arc<Trace>> {
        match self.ring.lock() {
            Ok(ring) => ring.iter().rev().take(limit).cloned().collect(),
            Err(_) => Vec::new(),
        }
    }

    pub fn find(&self, id: TraceId) -> Option<Arc<Trace>> {
        match self.ring.lock() {
            Ok(ring) => ring.iter().rev().find(|t| t.id == id).cloned(),
            Err(_) => None,
        }
    }

    /// Traces accepted into the ring since start.
    pub fn kept(&self) -> u64 {
        self.kept.load(Ordering::Relaxed)
    }

    /// Traces dropped at the door (lock contention) since start.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Head-based 1-in-N sampler with a slow-request override threshold.
/// `every == 0` disables tracing entirely.
#[derive(Debug)]
pub struct Sampler {
    every: u32,
    slow_us: u64,
    counter: AtomicU64,
}

impl Sampler {
    pub fn new(every: u32, slow_us: u64) -> Sampler {
        Sampler {
            every,
            slow_us,
            counter: AtomicU64::new(0),
        }
    }

    /// False when tracing is off (`every == 0`).
    pub fn enabled(&self) -> bool {
        self.every != 0
    }

    /// The head decision: true for one request in `every`. The first
    /// request is always sampled so a cold process has a trace to show.
    pub fn sample(&self) -> bool {
        if self.every == 0 {
            return false;
        }
        self.counter
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(u64::from(self.every))
    }

    pub fn every(&self) -> u32 {
        self.every
    }

    pub fn slow_us(&self) -> u64 {
        self.slow_us
    }

    /// The keep override: a request at or past the slow threshold is
    /// kept even when head sampling passed on it.
    pub fn is_slow(&self, total_us: u64) -> bool {
        self.slow_us > 0 && total_us >= self.slow_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn trace_ids_are_nonzero_unique_and_roundtrip_hex() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = TraceId::generate();
            assert_ne!(id.as_u64(), 0);
            assert!(seen.insert(id.as_u64()), "duplicate trace id");
            let hex = id.to_hex();
            assert_eq!(hex.len(), 16);
            assert_eq!(TraceId::parse(&hex), Some(id));
        }
        assert_eq!(TraceId::parse(""), None);
        assert_eq!(TraceId::parse("0"), None);
        assert_eq!(TraceId::parse("xyz"), None);
        assert_eq!(TraceId::parse("00112233445566778"), None); // 17 digits
        assert_eq!(TraceId::parse("ABC").map(|i| i.as_u64()), Some(0xabc));
    }

    #[test]
    fn stage_names_roundtrip_and_index_matches_all() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
            assert_eq!(Stage::parse(stage.as_str()), Some(*stage));
        }
        assert_eq!(Stage::parse("bogus"), None);
    }

    #[test]
    fn spans_nest_under_the_innermost_open_span() {
        let origin = Instant::now();
        let mut at = ActiveTrace::start(TraceId::generate(), origin, true, false);
        let handler = at.begin(Stage::Handler);
        let score = at.begin(Stage::Score);
        at.end(score);
        at.record(Stage::Serialize, Instant::now(), Instant::now());
        at.end_with_note(handler, "status=200".to_string());
        let trace = at.finish(Instant::now(), 0);

        let root = trace.span_of(Stage::Request).unwrap();
        assert_eq!(root.id, 0);
        assert_eq!(root.parent, None);
        let h = trace.span_of(Stage::Handler).unwrap();
        assert_eq!(h.parent, Some(0));
        assert_eq!(h.note.as_deref(), Some("status=200"));
        let s = trace.span_of(Stage::Score).unwrap();
        assert_eq!(s.parent, Some(h.id));
        let ser = trace.span_of(Stage::Serialize).unwrap();
        assert_eq!(ser.parent, Some(h.id));
        assert!(trace.nesting_consistent());
    }

    #[test]
    fn finish_closes_open_spans_and_flags_slow() {
        let origin = Instant::now() - Duration::from_millis(10);
        let mut at = ActiveTrace::start(TraceId::generate(), origin, false, false);
        let handler = at.begin(Stage::Handler);
        let trace = at.finish(Instant::now(), 1_000);
        assert!(trace.slow, "10ms trace must trip a 1ms threshold");
        assert!(trace.total_us >= 10_000);
        let h = trace.spans.iter().find(|s| s.id == handler).unwrap();
        assert!(h.duration_us > 0, "finish must close the open handler span");
        assert_eq!(trace.spans[0].duration_us, trace.total_us);
    }

    #[test]
    fn ring_bounds_capacity_and_finds_by_id() {
        let ring = TraceRing::new(4);
        let origin = Instant::now();
        let mut ids = Vec::new();
        for _ in 0..6 {
            let at = ActiveTrace::start(TraceId::generate(), origin, true, false);
            let trace = Arc::new(at.finish(Instant::now(), 0));
            ids.push(trace.id);
            assert!(ring.push(trace));
        }
        assert_eq!(ring.recent(16).len(), 4, "ring must evict past capacity");
        assert_eq!(ring.kept(), 6);
        assert!(ring.find(ids[0]).is_none(), "oldest must be evicted");
        assert!(ring.find(ids[5]).is_some());
        // Newest first.
        assert_eq!(ring.recent(1)[0].id, ids[5]);
    }

    #[test]
    fn ring_drops_instead_of_blocking_under_contention() {
        let ring = TraceRing::new(4);
        let guard = ring.ring.lock().unwrap();
        let at = ActiveTrace::start(TraceId::generate(), Instant::now(), true, false);
        let trace = Arc::new(at.finish(Instant::now(), 0));
        assert!(!ring.push(trace), "contended push must drop, not block");
        assert_eq!(ring.dropped(), 1);
        drop(guard);
    }

    #[test]
    fn sampler_elects_one_in_n_and_zero_disables() {
        let sampler = Sampler::new(4, 1_000);
        let hits = (0..16).filter(|_| sampler.sample()).count();
        assert_eq!(hits, 4);
        assert!(sampler.is_slow(1_000));
        assert!(!sampler.is_slow(999));

        let off = Sampler::new(0, 1_000);
        assert!(!off.enabled());
        assert!(!(0..16).any(|_| off.sample()));
    }
}
