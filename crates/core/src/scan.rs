//! The batch-first scanning API: [`ScannerBuilder`] → [`Scanner`] →
//! [`Scanner::scan_batch`].
//!
//! Production scanning is dominated by bulk submissions over highly
//! duplicated corpora — above all ERC-1167 minimal proxies, thousands of
//! byte-identical shims differing only in an embedded address. The
//! [`Scanner`] is built for that workload:
//!
//! * **Skeleton-hash dedup cache.** Every request is fingerprinted with
//!   [`scamdetect_evm::proxy::skeleton_hash`] (immediate-masked opcode
//!   stream — the same equivalence the corpus dedup of E7 uses), and
//!   verdict-relevant results are memoised in a bounded, mutex-striped
//!   LRU ([`crate::lru::ShardedLru`]): daemon worker threads and
//!   `scan_batch` workers hammering distinct skeletons do not serialize
//!   on one lock, and a panicked worker poisons (and clears) one stripe
//!   instead of wedging the scanner. Proxy clones and re-submitted
//!   bytecode never pay the lift twice.
//! * **Prepared-input cache.** The expensive, model-*independent* half
//!   of a miss (lift + featurize / CSR graph construction) is memoised
//!   separately in a [`PrepCache`] that can be shared across scanners
//!   ([`ScannerBuilder::shared_prep_cache`]): a serving replica that
//!   hot-swaps models re-scores warm skeletons without re-lifting them,
//!   while verdicts — which do depend on weights — die with the old
//!   scanner.
//! * **Batch-local dedup.** Within one [`Scanner::scan_batch`] call,
//!   duplicate skeletons are computed exactly once no matter how many
//!   requests carry them, then fanned back out — so cache-hit
//!   accounting is deterministic and independent of worker count.
//! * **Parallel execution.** Unique skeletons are scored across
//!   [`std::thread::scope`] workers; results are byte-identical to a
//!   sequential scan because each unique skeleton is scored exactly once
//!   by a deterministic detector.
//! * **Single lift.** Each scored contract is lifted to the unified CFG
//!   exactly once (the [`Lifted`] artifact), shared between verdict
//!   statistics and model scoring.
//!
//! # Quickstart: train once, serve anywhere
//!
//! A scanner is born one of two ways: **trained** from a corpus
//! ([`ScannerBuilder::train`]) or **loaded** from a saved
//! [`ModelArtifact`] ([`ScannerBuilder::load`]) with no corpus in scope.
//! Training is the expensive step — serving replicas, CLI runs and
//! embeds load the artifact instead and score with bit-for-bit the same
//! verdicts:
//!
//! ```
//! use scamdetect::{ClassicModel, FeatureKind, ModelKind, ScanRequest, ScannerBuilder};
//! use scamdetect_dataset::{Corpus, CorpusConfig};
//!
//! # fn main() -> Result<(), scamdetect::ScamDetectError> {
//! # let dir = std::env::temp_dir().join("scamdetect-doc-scan");
//! # std::fs::create_dir_all(&dir).unwrap();
//! # let model_path = dir.join("model.scam");
//! // Train once…
//! let corpus = Corpus::generate(&CorpusConfig { size: 60, seed: 7, ..CorpusConfig::default() });
//! ScannerBuilder::new()
//!     .model(ModelKind::Classic(ClassicModel::RandomForest, FeatureKind::Unified))
//!     .threshold(0.5)
//!     .train(&corpus)?
//!     .save(&model_path)?;
//!
//! // …serve anywhere: train-free construction from the artifact, with
//! // cache capacity / workers / threshold still overridable at load.
//! let scanner = ScannerBuilder::new()
//!     .cache_capacity(1024)
//!     .workers(4)
//!     .load(&model_path)?;
//!
//! let requests: Vec<ScanRequest> =
//!     corpus.contracts().iter().map(|c| ScanRequest::new(&c.bytes)).collect();
//! for outcome in scanner.scan_batch(&requests) {
//!     let report = outcome?;
//!     println!("{} (cache: {:?}, {:?})", report.verdict, report.cache, report.elapsed);
//! }
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```
//!
//! [`ModelArtifact`]: crate::artifact::ModelArtifact

use crate::artifact::ModelArtifact;
use crate::detector::{ClassicModel, Detector, ModelKind, PreparedInput, TrainOptions};
use crate::error::ScamDetectError;
use crate::featurize::{detect_platform, FeatureKind, Lifted};
use crate::lru::{ShardedLru, DEFAULT_SHARDS};
use crate::verdict::Verdict;
use scamdetect_dataset::Corpus;
use scamdetect_evm::proxy::skeleton_hash;
use scamdetect_ir::Platform;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default bound on the scanner's skeleton-hash LRU cache.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// One unit of scanning work: raw bytes plus an optional platform pin.
///
/// Borrows the bytecode — building a batch over a corpus allocates
/// nothing. Platform resolution precedence: the request's pin, then the
/// scanner's [`ScannerBuilder::platform`] override, then magic-byte
/// auto-detection.
#[derive(Debug, Clone, Copy)]
pub struct ScanRequest<'a> {
    bytes: &'a [u8],
    platform: Option<Platform>,
}

impl<'a> ScanRequest<'a> {
    /// A request over `bytes`, platform auto-detected at scan time.
    pub fn new(bytes: &'a [u8]) -> Self {
        ScanRequest {
            bytes,
            platform: None,
        }
    }

    /// Pins the platform, bypassing auto-detection for this request.
    pub fn on(mut self, platform: Platform) -> Self {
        self.platform = Some(platform);
        self
    }

    /// The raw bytecode.
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// The pinned platform, if any.
    pub fn platform(&self) -> Option<Platform> {
        self.platform
    }
}

impl<'a> From<&'a [u8]> for ScanRequest<'a> {
    fn from(bytes: &'a [u8]) -> Self {
        ScanRequest::new(bytes)
    }
}

impl<'a> From<&'a Vec<u8>> for ScanRequest<'a> {
    fn from(bytes: &'a Vec<u8>) -> Self {
        ScanRequest::new(bytes)
    }
}

/// Where a scan result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Computed fresh: first sighting of this skeleton.
    Miss,
    /// Served from the scanner's cross-batch LRU cache.
    CacheHit,
    /// Deduplicated against an earlier request in the same batch.
    BatchHit,
}

impl CacheStatus {
    /// `true` when the lift-and-score work was skipped.
    pub fn is_hit(self) -> bool {
        self != CacheStatus::Miss
    }
}

/// Structural statistics of the scanned contract's CFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CfgStats {
    /// Basic blocks in the unified CFG.
    pub blocks: usize,
    /// Instructions across all blocks.
    pub instructions: usize,
    /// Control-flow edges.
    pub edges: usize,
    /// Raw bytecode length.
    pub bytes: usize,
}

/// A [`Verdict`] enriched with scan provenance: the skeleton fingerprint,
/// cache status, wall-clock cost and per-platform CFG statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanReport {
    /// The classification verdict.
    pub verdict: Verdict,
    /// The immediate-masked skeleton fingerprint used as the cache key.
    pub skeleton: u64,
    /// Whether the result was computed or served from dedup.
    pub cache: CacheStatus,
    /// Compute time attributable to this request: the wall-clock cost of
    /// the lift + score for a [`CacheStatus::Miss`], and exactly
    /// [`Duration::ZERO`] for every hit ([`CacheStatus::CacheHit`] /
    /// [`CacheStatus::BatchHit`]) — a memoised verdict costs no
    /// recompute. Every scan path ([`Scanner::scan`],
    /// [`Scanner::scan_request`], [`Scanner::scan_batch`]) reports the
    /// same quantity, so summing `elapsed` over a batch measures real
    /// detector work regardless of how requests were deduplicated.
    pub elapsed: Duration,
    /// CFG statistics of the scored contract.
    pub cfg: CfgStats,
}

impl ScanReport {
    /// `true` when the verdict flags the contract.
    pub fn is_malicious(&self) -> bool {
        self.verdict.is_malicious()
    }
}

/// The per-request result of a batch scan: a report, or the error that
/// request's bytes produced. One bad contract never fails the batch.
pub type ScanOutcome = Result<ScanReport, ScamDetectError>;

/// Fluent configuration for a [`Scanner`].
///
/// GNN detectors train through the block-diagonal mini-batch path: each
/// gradient step packs [`TrainOptions::gnn`]`.batch_size` graphs into one
/// `GraphBatch` and runs a single tape forward/backward. The batching
/// knobs ride along on the same options struct — `batch_size` (graphs per
/// step), `bucket_by_size` (pack similar-sized graphs together, pay the
/// packing cost once per run) and `max_batch_nodes` (cap the node count
/// any one batch carries).
///
/// ```
/// use scamdetect::{GnnKind, ModelKind, ScannerBuilder};
/// use scamdetect_dataset::{Corpus, CorpusConfig};
///
/// # fn main() -> Result<(), scamdetect::ScamDetectError> {
/// let corpus = Corpus::generate(&CorpusConfig { size: 40, seed: 3, ..CorpusConfig::default() });
/// let scanner = ScannerBuilder::new()
///     .model(ModelKind::Gnn(GnnKind::Gcn))
///     .train_options({
///         let mut o = scamdetect::TrainOptions::default();
///         o.gnn.epochs = 2; // smoke-level
///         o.gnn.batch_size = 8; // graphs per block-diagonal batch
///         o.gnn.bucket_by_size = true; // bound per-batch node counts
///         o
///     })
///     .threshold(0.6)
///     .train(&corpus)?;
/// assert_eq!(scanner.threshold(), 0.6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ScannerBuilder {
    model: ModelKind,
    /// `None` until [`ScannerBuilder::threshold`] is called: training
    /// falls back to 0.5, while [`ScannerBuilder::load`] falls back to
    /// the threshold recorded in the artifact.
    threshold: Option<f64>,
    cache_capacity: usize,
    workers: usize,
    platform: Option<Platform>,
    train_options: TrainOptions,
    /// `None` = a private prep cache sized like the verdict cache;
    /// `Some` = an externally shared cache (serving replicas thread one
    /// across hot model swaps).
    prep_cache: Option<Arc<PrepCache>>,
}

impl Default for ScannerBuilder {
    fn default() -> Self {
        ScannerBuilder::new()
    }
}

impl ScannerBuilder {
    /// Defaults: random forest over unified features, threshold 0.5,
    /// [`DEFAULT_CACHE_CAPACITY`], auto worker count, auto platform.
    pub fn new() -> Self {
        ScannerBuilder {
            model: ModelKind::Classic(ClassicModel::RandomForest, FeatureKind::Unified),
            threshold: None,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            workers: 0,
            platform: None,
            train_options: TrainOptions::default(),
            prep_cache: None,
        }
    }

    /// Selects the detector architecture to train.
    pub fn model(mut self, model: ModelKind) -> Self {
        self.model = model;
        self
    }

    /// Decision threshold on P(malicious), in `[0, 1]`.
    ///
    /// When left unset, training builds default to `0.5` and
    /// [`ScannerBuilder::load`] adopts the threshold recorded in the
    /// artifact; setting it explicitly overrides both.
    ///
    /// # Panics
    ///
    /// Panics when `threshold` is not a finite value in `[0, 1]`.
    pub fn threshold(mut self, threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && (0.0..=1.0).contains(&threshold),
            "threshold must be in [0, 1], got {threshold}"
        );
        self.threshold = Some(threshold);
        self
    }

    /// Bounds the skeleton-hash LRU cache; `0` disables dedup entirely
    /// (exact mode: every request — even within one batch — is computed
    /// independently).
    ///
    /// Dedup keys are the E7 skeleton equivalence (immediate-masked
    /// opcode stream), deliberately coarser than byte equality — see
    /// [`Scanner::scan_batch`] for the trade-off.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Shares an external [`PrepCache`] with this scanner instead of the
    /// default private one (which is sized like the verdict cache).
    ///
    /// Prepared inputs are model-independent within a representation
    /// (see [`crate::detector::ReprKind`]), so a serving replica threads
    /// **one** prep cache through every scanner it constructs: after a
    /// hot model swap the fresh scanner's verdict cache starts cold —
    /// the old model's scores must never be served — but re-scans of
    /// known skeletons skip the lift and graph/feature preparation and
    /// pay only the new model's scoring work.
    ///
    /// Ignored by scanners in exact mode
    /// ([`ScannerBuilder::cache_capacity`]\(0\)): prep entries share the
    /// verdict cache's skeleton equivalence, so honoring them would
    /// re-introduce exactly the dedup approximation exact mode disables.
    pub fn shared_prep_cache(mut self, cache: Arc<PrepCache>) -> Self {
        self.prep_cache = Some(cache);
        self
    }

    /// Worker threads for [`Scanner::scan_batch`]; `0` (default) uses
    /// [`std::thread::available_parallelism`].
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Forces every request onto `platform` unless the request itself
    /// pins one (default: per-request magic-byte auto-detection).
    pub fn platform(mut self, platform: Platform) -> Self {
        self.platform = Some(platform);
        self
    }

    /// Training hyperparameters for [`ScannerBuilder::train`].
    pub fn train_options(mut self, options: TrainOptions) -> Self {
        self.train_options = options;
        self
    }

    /// Trains the configured model on the full corpus.
    ///
    /// # Errors
    ///
    /// Propagates frontend failures and corpus problems.
    pub fn train(self, corpus: &Corpus) -> Result<Scanner, ScamDetectError> {
        let indices: Vec<usize> = (0..corpus.len()).collect();
        self.train_on(corpus, &indices)
    }

    /// Trains on an index subset (for held-out evaluation).
    ///
    /// # Errors
    ///
    /// Propagates frontend failures and corpus problems.
    pub fn train_on(self, corpus: &Corpus, indices: &[usize]) -> Result<Scanner, ScamDetectError> {
        let detector = Detector::train(self.model, corpus, indices, &self.train_options)?;
        Ok(self.build(detector))
    }

    /// Constructs a serving scanner from a saved
    /// [`ModelArtifact`] file — **train-free**: no corpus is needed (or
    /// even accessible from this call), the trained weights come from the
    /// artifact. The builder's cache capacity, worker count and platform
    /// override apply as usual; the decision threshold defaults to the
    /// one recorded at save time and is overridden by an explicit
    /// [`ScannerBuilder::threshold`] call.
    ///
    /// # Errors
    ///
    /// Typed [`ScamDetectError::Artifact`] diagnostics on missing files
    /// and truncated / corrupted / version-mismatched artifacts.
    pub fn load(self, path: impl AsRef<std::path::Path>) -> Result<Scanner, ScamDetectError> {
        let artifact = ModelArtifact::load(path)?;
        self.from_artifact(&artifact)
    }

    /// [`ScannerBuilder::load`] from an in-memory artifact byte buffer —
    /// the entry point for environments without a filesystem (browser
    /// embeds, object-store blobs).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ScannerBuilder::load`], minus file I/O.
    pub fn load_bytes(self, bytes: &[u8]) -> Result<Scanner, ScamDetectError> {
        let artifact = ModelArtifact::from_bytes(bytes)?;
        self.from_artifact(&artifact)
    }

    /// [`ScannerBuilder::load`] from an already-parsed artifact.
    ///
    /// # Errors
    ///
    /// [`ScamDetectError::Artifact`] when the artifact's state sections
    /// cannot reconstruct the declared model.
    pub fn from_artifact(mut self, artifact: &ModelArtifact) -> Result<Scanner, ScamDetectError> {
        let detector = artifact.into_detector()?;
        self.threshold = Some(self.threshold.unwrap_or_else(|| artifact.threshold()));
        self.train_options = artifact.train_options().clone();
        Ok(self.build(detector))
    }

    /// Wraps an already-trained detector without retraining.
    pub fn build(self, detector: Detector) -> Scanner {
        let prep = self
            .prep_cache
            .unwrap_or_else(|| Arc::new(PrepCache::new(self.cache_capacity)));
        Scanner {
            model_name: detector.name(),
            detector,
            threshold: self.threshold.unwrap_or(0.5),
            workers: self.workers,
            platform: self.platform,
            train_options: self.train_options,
            cache: ShardedLru::new(self.cache_capacity, DEFAULT_SHARDS),
            prep,
        }
    }
}

/// The key identifying one skeleton equivalence class per platform.
type CacheKey = (Platform, u64);

/// The verdict-relevant facts memoised per skeleton class.
#[derive(Debug, Clone, Copy)]
struct CachedScan {
    probability: f64,
    cfg: CfgStats,
}

/// A prepared scan memoised per skeleton: the detector-ready input plus
/// the CFG statistics — everything downstream of the lift that does not
/// depend on model weights.
#[derive(Debug)]
struct PreparedScan {
    input: PreparedInput,
    cfg: CfgStats,
}

/// A sharded cache of prepared scan inputs (post-lift, pre-score), keyed
/// by skeleton like the verdict cache.
///
/// Prepared inputs carry no model weights: a feature row or a
/// [`PreparedGraph`](scamdetect_gnn::PreparedGraph) is a pure function
/// of the bytecode and the representation kind. A serving replica
/// therefore shares one `PrepCache` (via
/// [`ScannerBuilder::shared_prep_cache`]) across every scanner it ever
/// constructs: hot model swaps invalidate verdicts, never preparations,
/// so a swap costs one re-*score* per skeleton instead of one re-*lift*.
///
/// Entries are representation-tagged; a scanner whose detector consumes
/// a different representation ignores (and eventually overwrites)
/// mismatched entries, so mixing model kinds across swaps degrades to a
/// plain miss rather than an error.
pub struct PrepCache {
    inner: ShardedLru<CacheKey, Arc<PreparedScan>>,
}

impl std::fmt::Debug for PrepCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrepCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .finish()
    }
}

impl PrepCache {
    /// A cache bounded to `capacity` prepared inputs (0 disables it).
    pub fn new(capacity: usize) -> PrepCache {
        PrepCache {
            inner: ShardedLru::new(capacity, DEFAULT_SHARDS),
        }
    }

    /// [`PrepCache::new`] pre-wrapped for
    /// [`ScannerBuilder::shared_prep_cache`].
    pub fn shared(capacity: usize) -> Arc<PrepCache> {
        Arc::new(PrepCache::new(capacity))
    }

    /// Prepared inputs currently memoised.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` when nothing is memoised.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Maximum number of prepared inputs.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Drops every memoised preparation.
    pub fn clear(&self) {
        self.inner.clear();
    }
}

/// A trained, batch-first, cache-backed contract scanner.
///
/// Built by [`ScannerBuilder`]. Scanning is `&self` and thread-safe: the
/// detector is immutable after training and both dedup caches are
/// mutex-striped ([`ShardedLru`]) — worker threads hammering distinct
/// skeletons contend only when two keys hash to the same stripe, and a
/// worker that panics while holding a stripe poisons (and clears) only
/// that stripe instead of wedging the scanner.
#[derive(Debug)]
pub struct Scanner {
    detector: Detector,
    model_name: String,
    threshold: f64,
    workers: usize,
    platform: Option<Platform>,
    /// Training provenance, recorded into saved artifacts.
    train_options: TrainOptions,
    /// Verdict cache: model-dependent, owned by this scanner.
    cache: ShardedLru<CacheKey, CachedScan>,
    /// Prepared-input cache: model-independent, possibly shared across
    /// scanners (hot-swapping serving replicas).
    prep: Arc<PrepCache>,
}

impl Scanner {
    /// The underlying trained detector.
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// Persists the trained model (with this scanner's threshold and
    /// training provenance) as a versioned [`ModelArtifact`] file, ready
    /// for [`ScannerBuilder::load`] in any other process.
    ///
    /// # Errors
    ///
    /// [`ScamDetectError::Artifact`] on I/O failure or a hand-built
    /// model outside the persistable lineup.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), ScamDetectError> {
        self.to_artifact()?.save(path)
    }

    /// The in-memory artifact form of this scanner's trained model —
    /// serialize with [`ModelArtifact::to_bytes`] to ship it without a
    /// filesystem.
    ///
    /// # Errors
    ///
    /// [`ScamDetectError::Artifact`] for models outside the persistable
    /// lineup.
    pub fn to_artifact(&self) -> Result<ModelArtifact, ScamDetectError> {
        ModelArtifact::from_detector(&self.detector, self.threshold, &self.train_options)
    }

    /// The decision threshold on P(malicious).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The configured worker count (`0` = auto).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Entries currently memoised in the verdict dedup cache.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Drops every cached verdict **and** every memoised preparation
    /// (e.g. after model retraining, or to time a cold scan). A serving
    /// replica that swaps models should instead build a *new* scanner
    /// sharing the old one's [`Scanner::prep_cache`]: verdicts start
    /// cold by construction while preparations survive.
    pub fn clear_cache(&self) {
        self.cache.clear();
        self.prep.clear();
    }

    /// The prepared-input cache this scanner memoises lifts into. Hand
    /// it to [`ScannerBuilder::shared_prep_cache`] when constructing a
    /// successor scanner (hot model swap) so known skeletons skip graph
    /// prep under the new model.
    pub fn prep_cache(&self) -> Arc<PrepCache> {
        Arc::clone(&self.prep)
    }

    /// Resolves the platform and cache fingerprint this scanner would use
    /// for `request`, without scanning it.
    ///
    /// This is the feedback hook for the model lifecycle: verdict
    /// corrections (see [`crate::lifecycle`]) are keyed by exactly this
    /// `(platform, fingerprint)` pair, so a correction submitted against
    /// a served response matches the same contracts the serving cache
    /// deduplicates — including skeleton twins.
    pub fn fingerprint_of(&self, request: &ScanRequest) -> (Platform, u64) {
        let platform = self.resolve_platform(request);
        (platform, request_fingerprint(platform, request.bytes()))
    }

    /// Scans one contract, auto-detecting the platform (subject to the
    /// builder's override). Cached like any batch request.
    ///
    /// # Errors
    ///
    /// Frontend errors when the bytes are not a valid contract.
    pub fn scan(&self, bytes: &[u8]) -> ScanOutcome {
        self.scan_request(&ScanRequest::new(bytes))
    }

    /// Scans one request on the calling thread (no worker fan-out), with
    /// full cache participation.
    ///
    /// # Errors
    ///
    /// Frontend errors when the bytes are not a valid contract.
    pub fn scan_request(&self, request: &ScanRequest) -> ScanOutcome {
        let started = Instant::now();
        let platform = self.resolve_platform(request);
        let key = (platform, request_fingerprint(platform, request.bytes()));
        if let Some(cached) = self.cache_lookup(&key) {
            // Hits report Duration::ZERO on every path (see
            // [`ScanReport::elapsed`]): a memoised verdict costs no
            // recompute, and lock/assembly overhead is not detector work.
            return Ok(self.assemble(key, CacheStatus::CacheHit, cached, Duration::ZERO));
        }
        let computed = self.compute(key, platform, request.bytes())?;
        self.cache_store(key, computed);
        Ok(self.assemble(key, CacheStatus::Miss, computed, started.elapsed()))
    }

    /// Scans a batch: dedup against the cache and within the batch, then
    /// fan the unique skeletons across scoped worker threads.
    ///
    /// Outcomes are positionally aligned with `requests`. Verdicts are
    /// byte-identical to scanning each request sequentially with
    /// [`Scanner::scan`]: every unique skeleton is scored exactly once by
    /// a deterministic detector, so neither the worker count nor the
    /// batch order can change a result. After the first occurrence of a
    /// skeleton, every later duplicate reports a cache hit
    /// ([`CacheStatus::BatchHit`] within the batch,
    /// [`CacheStatus::CacheHit`] across batches).
    ///
    /// # Dedup approximation
    ///
    /// Skeleton equality is the paper's E7 dedup equivalence, not byte
    /// equality: the EVM fingerprint masks every push immediate, so two
    /// contracts that differ only in embedded constants — including, in
    /// adversarial cases, constants that are *jump targets* — share one
    /// cached verdict. That is exactly the collision that makes ERC-1167
    /// clones cheap, and exactly the coarseness a hostile submitter could
    /// exploit by front-running a malicious contract with a benign
    /// skeleton twin. Verdict-critical deployments should disable dedup
    /// with [`ScannerBuilder::cache_capacity`]\(0\), which makes every
    /// request compute independently (still in parallel).
    pub fn scan_batch(&self, requests: &[ScanRequest]) -> Vec<ScanOutcome> {
        if self.cache_capacity() == 0 {
            return self.scan_batch_exact(requests);
        }
        // Phase 1 — fingerprint every request and group by skeleton key,
        // preserving first-occurrence order.
        let keys: Vec<CacheKey> = requests
            .iter()
            .map(|r| {
                let platform = self.resolve_platform(r);
                (platform, request_fingerprint(platform, r.bytes()))
            })
            .collect();
        let mut first_occurrence: HashMap<CacheKey, usize> = HashMap::new();
        for (i, &key) in keys.iter().enumerate() {
            first_occurrence.entry(key).or_insert(i);
        }

        // Phase 2 — split unique keys into warm (already cached) and cold.
        let mut warm: HashMap<CacheKey, CachedScan> = HashMap::new();
        let mut cold: Vec<(CacheKey, usize)> = Vec::new();
        for (&key, &rep) in &first_occurrence {
            match self.cache.get(&key) {
                Some(hit) => {
                    warm.insert(key, hit);
                }
                None => cold.push((key, rep)),
            }
        }
        // Deterministic work order (HashMap iteration above is not).
        cold.sort_unstable_by_key(|&(_, rep)| rep);

        // Phase 3 — lift and score each cold skeleton exactly once,
        // fanned across scoped workers pulling from a shared queue.
        let computed = self.compute_parallel(requests, &cold);

        // Phase 4 — publish fresh results to the cache.
        for ((key, _), result) in cold.iter().zip(&computed) {
            if let Ok((scan, _)) = result {
                self.cache.insert(*key, *scan);
            }
        }
        let fresh: HashMap<CacheKey, &Result<(CachedScan, Duration), ScamDetectError>> = cold
            .iter()
            .map(|&(key, _)| key)
            .zip(computed.iter())
            .collect();

        // Phase 5 — assemble positional outcomes.
        keys.iter()
            .enumerate()
            .map(|(i, &key)| {
                if let Some(&hit) = warm.get(&key) {
                    return Ok(self.assemble(key, CacheStatus::CacheHit, hit, Duration::ZERO));
                }
                match fresh.get(&key) {
                    Some(Ok((scan, elapsed))) => {
                        if first_occurrence[&key] == i {
                            Ok(self.assemble(key, CacheStatus::Miss, *scan, *elapsed))
                        } else {
                            Ok(self.assemble(key, CacheStatus::BatchHit, *scan, Duration::ZERO))
                        }
                    }
                    // The representative failed: every duplicate shares its
                    // skeleton, hence its failure (errors are not cached
                    // across batches, but within the batch the lift is not
                    // repeated).
                    Some(Err(e)) => Err((*e).clone()),
                    None => unreachable!("every key is warm or cold"),
                }
            })
            .collect()
    }

    /// The exact-mode batch path (cache capacity 0): no skeleton dedup at
    /// all — every request is lifted and scored independently, still
    /// fanned across workers. Every successful outcome reports
    /// [`CacheStatus::Miss`].
    fn scan_batch_exact(&self, requests: &[ScanRequest]) -> Vec<ScanOutcome> {
        let work: Vec<(CacheKey, usize)> = requests
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let platform = self.resolve_platform(r);
                ((platform, request_fingerprint(platform, r.bytes())), i)
            })
            .collect();
        self.compute_parallel(requests, &work)
            .into_iter()
            .zip(&work)
            .map(|(result, &(key, _))| {
                let (scan, elapsed) = result?;
                Ok(self.assemble(key, CacheStatus::Miss, scan, elapsed))
            })
            .collect()
    }

    fn cache_capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// Lifts and scores the cold skeletons across `std::thread::scope`
    /// workers; returns results aligned with `cold`.
    #[allow(clippy::type_complexity)]
    fn compute_parallel(
        &self,
        requests: &[ScanRequest],
        cold: &[(CacheKey, usize)],
    ) -> Vec<Result<(CachedScan, Duration), ScamDetectError>> {
        let workers = self.effective_workers(cold.len());
        let mut slots: Vec<Option<Result<(CachedScan, Duration), ScamDetectError>>> =
            (0..cold.len()).map(|_| None).collect();
        if workers <= 1 {
            for (slot, &(key, rep)) in slots.iter_mut().zip(cold) {
                *slot = Some(self.compute_timed(key, requests[rep].bytes()));
            }
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let next = &next;
                        scope.spawn(move || {
                            let mut local = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= cold.len() {
                                    break;
                                }
                                let (key, rep) = cold[i];
                                local.push((i, self.compute_timed(key, requests[rep].bytes())));
                            }
                            local
                        })
                    })
                    .collect();
                for handle in handles {
                    for (i, result) in handle.join().expect("scan worker panicked") {
                        slots[i] = Some(result);
                    }
                }
            });
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every cold slot computed"))
            .collect()
    }

    /// Resolves the platform for one request (request pin > builder
    /// override > magic-byte auto-detection).
    fn resolve_platform(&self, request: &ScanRequest) -> Platform {
        request
            .platform()
            .or(self.platform)
            .unwrap_or_else(|| detect_platform(request.bytes()))
    }

    fn effective_workers(&self, work_items: usize) -> usize {
        let configured = if self.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.workers
        };
        configured.min(work_items.max(1))
    }

    /// The single-lift compute kernel: prepare once (memoised in the
    /// prep cache), score once.
    ///
    /// The expensive half — lift + featurize / CSR graph construction —
    /// is keyed by skeleton in the shared [`PrepCache`]: a verdict-cache
    /// miss whose skeleton was prepared before (by this scanner *or* by
    /// a predecessor sharing the cache across a hot model swap) pays
    /// only the detector's scoring work. Entries carrying a different
    /// representation than this detector consumes are recomputed and
    /// overwritten.
    ///
    /// In **exact mode** (verdict-cache capacity 0) the prep cache is
    /// bypassed entirely — even an explicitly shared one. Prep entries
    /// are keyed by the same skeleton equivalence as verdicts, so
    /// honoring them would silently re-introduce the dedup
    /// approximation that exact mode exists to rule out (a skeleton
    /// twin would be scored from the first contract's feature row).
    fn compute(
        &self,
        key: CacheKey,
        platform: Platform,
        bytes: &[u8],
    ) -> Result<CachedScan, ScamDetectError> {
        let dedup = self.cache.capacity() != 0;
        if dedup {
            if let Some(prep) = self.prep.inner.get(&key) {
                if let Some(probability) = self.detector.score_prepared(&prep.input) {
                    return Ok(CachedScan {
                        probability,
                        cfg: prep.cfg,
                    });
                }
            }
        }
        let lifted = Lifted::from_bytes(platform, bytes)?;
        let cfg = CfgStats {
            blocks: lifted.cfg.block_count(),
            instructions: lifted.cfg.instruction_count(),
            edges: lifted.cfg.graph().edge_count(),
            bytes: lifted.byte_len,
        };
        let input = self.detector.prepare_lifted(&lifted);
        let probability = self
            .detector
            .score_prepared(&input)
            .expect("prepare_lifted produces this detector's own representation");
        if dedup {
            self.prep
                .inner
                .insert(key, Arc::new(PreparedScan { input, cfg }));
        }
        Ok(CachedScan { probability, cfg })
    }

    fn compute_timed(
        &self,
        key: CacheKey,
        bytes: &[u8],
    ) -> Result<(CachedScan, Duration), ScamDetectError> {
        let started = Instant::now();
        let scan = self.compute(key, key.0, bytes)?;
        Ok((scan, started.elapsed()))
    }

    fn cache_lookup(&self, key: &CacheKey) -> Option<CachedScan> {
        self.cache.get(key)
    }

    fn cache_store(&self, key: CacheKey, scan: CachedScan) {
        self.cache.insert(key, scan);
    }

    /// Builds the per-request report from a (possibly cached) result.
    fn assemble(
        &self,
        key: CacheKey,
        cache: CacheStatus,
        scan: CachedScan,
        elapsed: Duration,
    ) -> ScanReport {
        ScanReport {
            verdict: Verdict::decide(
                scan.probability,
                self.threshold,
                key.0,
                self.model_name.clone(),
                scan.cfg.blocks,
                scan.cfg.instructions,
            ),
            skeleton: key.1,
            cache,
            elapsed,
            cfg: scan.cfg,
        }
    }
}

/// The skeleton fingerprint used as the cache key: the immediate-masked
/// opcode stream for EVM (ERC-1167 clones collide, by design — the same
/// equivalence class the paper's E7 dedup collapses), FNV-1a over the
/// raw module bytes for WASM.
///
/// Public because anything that *routes* scan traffic (the fleet's
/// consistent-hash router) must key on exactly the same equivalence the
/// verdict/prep caches use — otherwise two requests for one skeleton
/// land on two replicas and neither cache stays hot.
pub fn request_fingerprint(platform: Platform, bytes: &[u8]) -> u64 {
    match platform {
        Platform::Evm => skeleton_hash(bytes),
        Platform::Wasm => scamdetect_evm::proxy::fnv1a(bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scamdetect_dataset::CorpusConfig;
    use scamdetect_evm::proxy::make_erc1167;

    fn corpus() -> Corpus {
        Corpus::generate(&CorpusConfig {
            size: 40,
            seed: 0x5CAB,
            ..CorpusConfig::default()
        })
    }

    fn scanner() -> Scanner {
        ScannerBuilder::new().train(&corpus()).expect("trains")
    }

    #[test]
    fn builder_defaults() {
        let s = scanner();
        assert_eq!(s.threshold(), 0.5);
        assert_eq!(s.workers(), 0);
        assert_eq!(s.cache_len(), 0);
    }

    #[test]
    fn single_scan_populates_cache() {
        let s = scanner();
        let c = corpus();
        let bytes = &c.contracts()[0].bytes;
        let first = s.scan(bytes).unwrap();
        assert_eq!(first.cache, CacheStatus::Miss);
        assert!(first.cfg.blocks > 0);
        assert_eq!(s.cache_len(), 1);
        let second = s.scan(bytes).unwrap();
        assert_eq!(second.cache, CacheStatus::CacheHit);
        assert_eq!(second.verdict, first.verdict);
    }

    #[test]
    fn erc1167_clones_collapse_to_one_computation() {
        let s = scanner();
        let clones: Vec<Vec<u8>> = (0u8..8).map(|i| make_erc1167(&[i; 20])).collect();
        let requests: Vec<ScanRequest> = clones.iter().map(ScanRequest::from).collect();
        let outcomes = s.scan_batch(&requests);
        let reports: Vec<&ScanReport> = outcomes.iter().map(|o| o.as_ref().unwrap()).collect();
        assert_eq!(reports[0].cache, CacheStatus::Miss);
        for r in &reports[1..] {
            assert_eq!(r.cache, CacheStatus::BatchHit);
            assert_eq!(r.verdict, reports[0].verdict);
            assert_eq!(r.skeleton, reports[0].skeleton);
        }
        assert_eq!(s.cache_len(), 1);
        // A later batch over the same clones is fully warm.
        let again = s.scan_batch(&requests);
        assert!(again
            .iter()
            .all(|o| o.as_ref().unwrap().cache == CacheStatus::CacheHit));
    }

    #[test]
    fn batch_errors_are_positional_not_fatal() {
        let s = scanner();
        let c = corpus();
        let good = &c.contracts()[0].bytes;
        let bad = b"\0asm____garbage".to_vec();
        let requests = [ScanRequest::new(good), ScanRequest::new(&bad)];
        let outcomes = s.scan_batch(&requests);
        assert!(outcomes[0].is_ok());
        assert!(outcomes[1].is_err());
    }

    #[test]
    fn threshold_changes_label_not_probability() {
        let c = corpus();
        let detector = Detector::train(
            ModelKind::Classic(ClassicModel::RandomForest, FeatureKind::Unified),
            &c,
            &(0..c.len()).collect::<Vec<_>>(),
            &TrainOptions::default(),
        )
        .unwrap();
        let strict = ScannerBuilder::new().threshold(0.0).build(detector);
        let report = strict.scan(&c.contracts()[0].bytes).unwrap();
        // With threshold 0 everything is flagged.
        assert!(report.is_malicious());
    }

    #[test]
    #[should_panic(expected = "threshold must be in [0, 1]")]
    fn out_of_range_threshold_rejected() {
        let _ = ScannerBuilder::new().threshold(1.5);
    }

    #[test]
    fn cache_capacity_zero_is_exact_mode() {
        let s = ScannerBuilder::new()
            .cache_capacity(0)
            .train(&corpus())
            .unwrap();
        let bytes = make_erc1167(&[7; 20]);
        let first = s.scan(&bytes).unwrap();
        let second = s.scan(&bytes).unwrap();
        // No cross-call memoisation…
        assert_eq!(first.cache, CacheStatus::Miss);
        assert_eq!(second.cache, CacheStatus::Miss);
        assert_eq!(s.cache_len(), 0);
        // …and no batch-local dedup either: every duplicate is computed
        // independently (exact mode), with identical verdicts.
        let requests = [ScanRequest::new(&bytes), ScanRequest::new(&bytes)];
        let outcomes = s.scan_batch(&requests);
        let a = outcomes[0].as_ref().unwrap();
        let b = outcomes[1].as_ref().unwrap();
        assert_eq!(a.cache, CacheStatus::Miss);
        assert_eq!(b.cache, CacheStatus::Miss);
        assert_eq!(a.verdict, b.verdict);
    }

    #[test]
    fn failing_skeleton_propagates_error_to_duplicates() {
        let s = scanner();
        let bad = b"\0asm____garbage".to_vec();
        let requests = [
            ScanRequest::new(&bad),
            ScanRequest::new(&bad),
            ScanRequest::new(&bad),
        ];
        let outcomes = s.scan_batch(&requests);
        for outcome in &outcomes {
            assert!(matches!(outcome, Err(ScamDetectError::Frontend(_))));
        }
    }

    #[test]
    fn platform_pin_beats_autodetect() {
        let s = scanner();
        let c = corpus();
        let bytes = &c.contracts()[0].bytes;
        let report = s
            .scan_request(&ScanRequest::new(bytes).on(Platform::Evm))
            .unwrap();
        assert_eq!(report.verdict.platform, Platform::Evm);
    }

    /// Deliberately takes only a path: proves a serving scanner is
    /// constructed with no `Corpus` anywhere in scope.
    fn load_without_corpus(path: &std::path::Path) -> Result<Scanner, ScamDetectError> {
        ScannerBuilder::new().load(path)
    }

    #[test]
    fn save_load_round_trip_is_bit_identical_and_train_free() {
        let dir = std::env::temp_dir().join(format!("scamdetect-scan-save-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rf.scam");

        let trained = ScannerBuilder::new()
            .threshold(0.7)
            .train(&corpus())
            .unwrap();
        trained.save(&path).unwrap();

        let loaded = load_without_corpus(&path).unwrap();
        // The artifact threshold rides along…
        assert_eq!(loaded.threshold(), 0.7);
        // …and probabilities reproduce bit-for-bit.
        for c in corpus().contracts().iter().take(8) {
            let a = trained.scan(&c.bytes).unwrap().verdict;
            let b = loaded.scan(&c.bytes).unwrap().verdict;
            assert_eq!(
                a.malicious_probability.to_bits(),
                b.malicious_probability.to_bits()
            );
            assert_eq!(a.model, b.model);
        }

        // An explicit builder threshold overrides the stored one; cache
        // and workers are builder-controlled as usual.
        let overridden = ScannerBuilder::new()
            .threshold(0.95)
            .workers(2)
            .cache_capacity(16)
            .load(&path)
            .unwrap();
        assert_eq!(overridden.threshold(), 0.95);
        assert_eq!(overridden.workers(), 2);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loading_garbage_is_a_typed_artifact_error() {
        let dir = std::env::temp_dir().join(format!("scamdetect-scan-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.scam");
        std::fs::write(&path, b"definitely not a model artifact").unwrap();
        let err = ScannerBuilder::new().load(&path).unwrap_err();
        assert!(matches!(err, ScamDetectError::Artifact(_)));
        let missing = ScannerBuilder::new()
            .load(dir.join("nope.scam"))
            .unwrap_err();
        assert!(matches!(missing, ScamDetectError::Artifact(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_hits_report_zero_elapsed_on_every_path() {
        let s = scanner();
        let c = corpus();
        let bytes = &c.contracts()[0].bytes;
        let miss = s.scan(bytes).unwrap();
        assert_eq!(miss.cache, CacheStatus::Miss);
        assert!(miss.elapsed > Duration::ZERO);
        // One-shot path: warm hit is ZERO.
        let warm = s.scan(bytes).unwrap();
        assert_eq!(warm.cache, CacheStatus::CacheHit);
        assert_eq!(warm.elapsed, Duration::ZERO);
        // Batch path: warm and duplicate hits are ZERO too.
        let requests = [ScanRequest::new(bytes), ScanRequest::new(bytes)];
        for outcome in s.scan_batch(&requests) {
            let report = outcome.unwrap();
            assert!(report.cache.is_hit());
            assert_eq!(report.elapsed, Duration::ZERO);
        }
    }

    #[test]
    fn clear_cache_drops_verdicts_and_preparations() {
        let s = scanner();
        let c = corpus();
        s.scan(&c.contracts()[0].bytes).unwrap();
        assert_eq!(s.cache_len(), 1);
        assert_eq!(s.prep_cache().len(), 1);
        s.clear_cache();
        assert_eq!(s.cache_len(), 0);
        assert_eq!(s.prep_cache().len(), 0);
    }

    #[test]
    fn prep_cache_shared_across_swap_keeps_verdicts_bit_identical() {
        let c = corpus();
        let bytes = &c.contracts()[0].bytes;
        let prep = PrepCache::shared(256);

        // "Old" serving scanner warms the shared prep cache.
        let old = ScannerBuilder::new()
            .shared_prep_cache(Arc::clone(&prep))
            .train(&c)
            .unwrap();
        assert_eq!(old.scan(bytes).unwrap().cache, CacheStatus::Miss);
        assert!(!prep.is_empty(), "scan memoises the prepared input");

        // "New" model (different corpus → different weights) inherits
        // the preparations but not the verdicts.
        let other = Corpus::generate(&CorpusConfig {
            size: 40,
            seed: 0xB00,
            ..CorpusConfig::default()
        });
        let swapped = ScannerBuilder::new()
            .shared_prep_cache(Arc::clone(&prep))
            .train(&other)
            .unwrap();
        assert_eq!(swapped.cache_len(), 0, "verdict cache starts cold");
        let via_prep = swapped.scan(bytes).unwrap();
        // A verdict-cache miss (fresh model really scored)…
        assert_eq!(via_prep.cache, CacheStatus::Miss);

        // …bit-identical to the same model scoring without any shared
        // preparation state.
        let reference = ScannerBuilder::new().train(&other).unwrap();
        let fresh = reference.scan(bytes).unwrap();
        assert_eq!(
            via_prep.verdict.malicious_probability.to_bits(),
            fresh.verdict.malicious_probability.to_bits(),
            "prep-cache path must not perturb scores"
        );
        assert_eq!(via_prep.cfg, fresh.cfg);

        // Sanity: the two models genuinely disagree in weights (the old
        // cached verdict would have been stale).
        let old_p = old.scan(bytes).unwrap().verdict.malicious_probability;
        assert_ne!(
            old_p.to_bits(),
            via_prep.verdict.malicious_probability.to_bits(),
            "test premise: the swapped model scores differently"
        );
    }

    #[test]
    fn exact_mode_ignores_a_shared_prep_cache() {
        // Two ERC-1167 proxies to different targets: same skeleton,
        // different bytes. In exact mode they must be computed
        // independently even when a warm shared prep cache is offered —
        // a prep hit would score the twin from the first proxy's rows.
        let prep = PrepCache::shared(256);
        let c = corpus();
        let warmer = ScannerBuilder::new()
            .shared_prep_cache(Arc::clone(&prep))
            .train(&c)
            .unwrap();
        let a = make_erc1167(&[1; 20]);
        let b = make_erc1167(&[2; 20]);
        warmer.scan(&a).unwrap();
        assert_eq!(prep.len(), 1, "the shared cache is warm for this skeleton");

        let exact = ScannerBuilder::new()
            .cache_capacity(0)
            .shared_prep_cache(Arc::clone(&prep))
            .train(&c)
            .unwrap();
        let ra = exact.scan(&a).unwrap();
        let rb = exact.scan(&b).unwrap();
        assert_eq!(ra.cache, CacheStatus::Miss);
        assert_eq!(rb.cache, CacheStatus::Miss);
        // No writes either: scanning a contract whose skeleton the
        // cache has never seen must not grow it.
        exact.scan(&c.contracts()[0].bytes).unwrap();
        assert_eq!(
            prep.len(),
            1,
            "exact mode neither reads nor writes the shared prep cache"
        );
    }

    #[test]
    fn mismatched_repr_prep_entries_fall_back_to_recompute() {
        let c = corpus();
        let bytes = &c.contracts()[0].bytes;
        let prep = PrepCache::shared(256);

        // Unified-feature scanner populates Features(Unified) entries.
        let unified = ScannerBuilder::new()
            .model(ModelKind::Classic(
                ClassicModel::LogisticRegression,
                FeatureKind::Unified,
            ))
            .shared_prep_cache(Arc::clone(&prep))
            .train(&c)
            .unwrap();
        unified.scan(bytes).unwrap();

        // A histogram-feature scanner sharing the cache must recompute,
        // not mis-score from the foreign representation.
        let histogram = ScannerBuilder::new()
            .model(ModelKind::Classic(
                ClassicModel::LogisticRegression,
                FeatureKind::OpcodeHistogram,
            ))
            .shared_prep_cache(Arc::clone(&prep))
            .train(&c)
            .unwrap();
        let report = histogram.scan(bytes).unwrap();
        let reference = ScannerBuilder::new()
            .model(ModelKind::Classic(
                ClassicModel::LogisticRegression,
                FeatureKind::OpcodeHistogram,
            ))
            .train(&c)
            .unwrap()
            .scan(bytes)
            .unwrap();
        assert_eq!(
            report.verdict.malicious_probability.to_bits(),
            reference.verdict.malicious_probability.to_bits()
        );
    }

    #[test]
    fn concurrent_batches_on_shared_scanner_stay_consistent() {
        let s = ScannerBuilder::new().workers(2).train(&corpus()).unwrap();
        let c = corpus();
        let all: Vec<&Vec<u8>> = c.contracts().iter().map(|x| &x.bytes).collect();
        let baseline: Vec<u64> = all
            .iter()
            .map(|b| s.scan(b).unwrap().verdict.malicious_probability.to_bits())
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let (s, all, baseline) = (&s, &all, &baseline);
                scope.spawn(move || {
                    let requests: Vec<ScanRequest> =
                        all.iter().map(|b| ScanRequest::new(b)).collect();
                    for (outcome, &expected) in s.scan_batch(&requests).iter().zip(baseline) {
                        let report = outcome.as_ref().unwrap();
                        assert_eq!(
                            report.verdict.malicious_probability.to_bits(),
                            expected,
                            "sharded cache produced a divergent score"
                        );
                    }
                });
            }
        });
    }

    #[test]
    fn report_exposes_cfg_stats_and_skeleton() {
        let s = scanner();
        let c = corpus();
        let bytes = &c.contracts()[1].bytes;
        let report = s.scan(bytes).unwrap();
        assert!(report.cfg.blocks > 0);
        assert!(report.cfg.instructions > 0);
        assert!(report.cfg.edges > 0);
        assert_eq!(report.cfg.bytes, bytes.len());
        assert_eq!(report.skeleton, skeleton_hash(bytes));
        assert_eq!(report.verdict.blocks, report.cfg.blocks);
    }
}
