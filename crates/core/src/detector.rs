//! Detector implementations and the model-selection enum.

use crate::error::ScamDetectError;
use crate::featurize::{self, FeatureKind};
use scamdetect_dataset::Corpus;
use scamdetect_gnn::{self as gnn, GnnClassifier, GnnConfig, GnnKind, PreparedGraph};
use scamdetect_ir::features::NODE_FEATURE_DIM;
use scamdetect_ir::UnifiedCfg;
use scamdetect_ml::{
    BernoulliNb, Classifier, DecisionTree, GaussianNb, KNearest, LogisticRegression, Mlp,
    NearestCentroid, RandomForest,
};

/// Classic (non-graph) model choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ClassicModel {
    LogisticRegression,
    Mlp,
    DecisionTree,
    RandomForest,
    ExtraTrees,
    Knn1,
    Knn5,
    GaussianNb,
    BernoulliNb,
    NearestCentroid,
}

impl ClassicModel {
    /// All ten classic models (E1's lineup).
    pub fn all() -> [ClassicModel; 10] {
        use ClassicModel::*;
        [
            LogisticRegression,
            Mlp,
            DecisionTree,
            RandomForest,
            ExtraTrees,
            Knn1,
            Knn5,
            GaussianNb,
            BernoulliNb,
            NearestCentroid,
        ]
    }

    /// Stable wire tag used by the model-artifact format. Never renumber.
    pub fn code(self) -> u8 {
        match self {
            ClassicModel::LogisticRegression => 0,
            ClassicModel::Mlp => 1,
            ClassicModel::DecisionTree => 2,
            ClassicModel::RandomForest => 3,
            ClassicModel::ExtraTrees => 4,
            ClassicModel::Knn1 => 5,
            ClassicModel::Knn5 => 6,
            ClassicModel::GaussianNb => 7,
            ClassicModel::BernoulliNb => 8,
            ClassicModel::NearestCentroid => 9,
        }
    }

    /// Inverse of [`ClassicModel::code`].
    pub fn from_code(code: u8) -> Option<ClassicModel> {
        ClassicModel::all().into_iter().find(|m| m.code() == code)
    }

    /// The [`Classifier::name`] the instantiated model reports — the
    /// reverse mapping ([`ClassicModel::from_classifier_name`]) lets a
    /// trained trait object self-describe for persistence.
    pub fn classifier_name(self) -> &'static str {
        match self {
            ClassicModel::LogisticRegression => "logistic_regression",
            ClassicModel::Mlp => "mlp",
            ClassicModel::DecisionTree => "decision_tree",
            ClassicModel::RandomForest => "random_forest",
            ClassicModel::ExtraTrees => "extra_trees",
            ClassicModel::Knn1 => "knn_1",
            ClassicModel::Knn5 => "knn_5",
            ClassicModel::GaussianNb => "gaussian_nb",
            ClassicModel::BernoulliNb => "bernoulli_nb",
            ClassicModel::NearestCentroid => "nearest_centroid",
        }
    }

    /// Looks the enum entry up from a [`Classifier::name`].
    pub fn from_classifier_name(name: &str) -> Option<ClassicModel> {
        ClassicModel::all()
            .into_iter()
            .find(|m| m.classifier_name() == name)
    }

    /// Instantiates the model, seeded.
    pub fn instantiate(self, seed: u64) -> Box<dyn Classifier> {
        match self {
            ClassicModel::LogisticRegression => Box::new(LogisticRegression::new()),
            ClassicModel::Mlp => Box::new(Mlp::new(seed)),
            ClassicModel::DecisionTree => Box::new(DecisionTree::default_cart()),
            ClassicModel::RandomForest => Box::new(RandomForest::new(25, seed)),
            ClassicModel::ExtraTrees => Box::new(RandomForest::extra_trees(25, seed ^ 1)),
            ClassicModel::Knn1 => Box::new(KNearest::new(1)),
            ClassicModel::Knn5 => Box::new(KNearest::new(5)),
            ClassicModel::GaussianNb => Box::new(GaussianNb::new()),
            ClassicModel::BernoulliNb => Box::new(BernoulliNb::new()),
            ClassicModel::NearestCentroid => Box::new(NearestCentroid::new()),
        }
    }
}

/// Which detector a [`crate::ScannerBuilder`] trains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// A classic classifier over byte/graph features.
    Classic(ClassicModel, FeatureKind),
    /// A GNN over the unified CFG.
    Gnn(GnnKind),
}

/// Training options.
#[derive(Debug, Clone)]
pub struct TrainOptions {
    /// GNN training hyperparameters (ignored by classic models). This is
    /// the block-diagonal mini-batch configuration: every GNN detector
    /// trains through [`gnn::train_batched`], one tape per batch of
    /// graphs. `bucket_by_size` / `max_batch_nodes` expose the batching
    /// knobs end to end.
    pub gnn: gnn::BatchTrainConfig,
    /// Seed for model initialisation.
    pub seed: u64,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            gnn: gnn::BatchTrainConfig::default(),
            seed: 0xD07,
        }
    }
}

/// The input representation a detector scores: a flat feature row for
/// classic models, a CSR-prepared graph for GNNs.
///
/// Preparing the representation (lift → featurize / graph build) is
/// model-*independent* within a kind: every GNN architecture consumes
/// the same [`PreparedGraph`], and every classic model over the same
/// [`FeatureKind`] consumes the same row. That makes prepared inputs
/// safely shareable across detectors — in particular across a serving
/// replica's **hot model swap**, where the new model re-scores cached
/// prepared inputs without re-paying graph prep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReprKind {
    /// A flat `Vec<f64>` row under the given feature kind.
    Features(FeatureKind),
    /// A [`PreparedGraph`] (CSR aggregators over the unified CFG).
    Graph,
}

/// A scan input prepared once: the exact representation
/// [`Detector::score_prepared`] consumes, with the lift and graph/feature
/// construction already paid.
#[derive(Debug, Clone)]
pub enum PreparedInput {
    /// Feature row for classic models (tagged with its feature kind so a
    /// detector over a different representation rejects it).
    Features(FeatureKind, Vec<f64>),
    /// Prepared graph for GNN models (architecture-independent).
    Graph(PreparedGraph),
}

impl PreparedInput {
    /// The representation this input carries.
    pub fn repr_kind(&self) -> ReprKind {
        match self {
            PreparedInput::Features(kind, _) => ReprKind::Features(*kind),
            PreparedInput::Graph(_) => ReprKind::Graph,
        }
    }
}

/// A trained detector: scores unified CFGs.
///
/// Constructed via [`Detector::train`]; the two implementations (classic
/// and GNN) are unified behind this enum so the pipeline code is
/// model-agnostic.
pub enum Detector {
    /// Classic classifier + its feature kind.
    Classic {
        /// The fitted model.
        model: Box<dyn Classifier>,
        /// The representation it was fitted on.
        features: FeatureKind,
    },
    /// A trained GNN.
    Gnn {
        /// The fitted model.
        model: GnnClassifier,
    },
}

impl std::fmt::Debug for Detector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Detector({})", self.name())
    }
}

impl Detector {
    /// Trains `kind` on the given corpus subset.
    ///
    /// # Errors
    ///
    /// [`ScamDetectError::BadCorpus`] when the subset is empty or
    /// single-class; frontend errors if a contract cannot be lifted.
    pub fn train(
        kind: ModelKind,
        corpus: &Corpus,
        indices: &[usize],
        options: &TrainOptions,
    ) -> Result<Detector, ScamDetectError> {
        if indices.is_empty() {
            return Err(ScamDetectError::BadCorpus {
                reason: "no training samples",
            });
        }
        let classes: std::collections::BTreeSet<usize> = indices
            .iter()
            .map(|&i| corpus.contracts()[i].label.class_index())
            .collect();
        if classes.len() < 2 {
            return Err(ScamDetectError::BadCorpus {
                reason: "training set is single-class",
            });
        }
        match kind {
            ModelKind::Classic(model_kind, features) => {
                let data = featurize::featurize_corpus(corpus, indices, features)?;
                let mut model = model_kind.instantiate(options.seed);
                model.fit(&data);
                Ok(Detector::Classic { model, features })
            }
            ModelKind::Gnn(gnn_kind) => {
                let graphs = featurize::prepare_graphs(corpus, indices)?;
                let config = GnnConfig::new(gnn_kind, NODE_FEATURE_DIM).with_seed(options.seed);
                let mut model = GnnClassifier::new(config);
                gnn::train(&mut model, &graphs, &options.gnn);
                Ok(Detector::Gnn { model })
            }
        }
    }

    /// The [`ModelKind`] this detector instantiates — `None` only for
    /// hand-built classic classifiers outside the [`ClassicModel`]
    /// lineup (such detectors cannot be persisted).
    pub fn model_kind(&self) -> Option<ModelKind> {
        match self {
            Detector::Classic { model, features } => {
                ClassicModel::from_classifier_name(model.name())
                    .map(|m| ModelKind::Classic(m, *features))
            }
            Detector::Gnn { model } => Some(ModelKind::Gnn(model.config().kind)),
        }
    }

    /// Persists the trained state as a versioned
    /// [`ModelArtifact`](crate::artifact::ModelArtifact) file.
    ///
    /// Serving metadata defaults (threshold 0.5, default train options)
    /// are recorded; save through [`crate::Scanner::save`] to capture the
    /// scanner's actual threshold and training provenance.
    ///
    /// # Errors
    ///
    /// [`ScamDetectError::Artifact`] on I/O failure or a model outside
    /// the persistable lineup.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), ScamDetectError> {
        crate::artifact::ModelArtifact::from_detector(self, 0.5, &TrainOptions::default())?
            .save(path)
    }

    /// Loads a trained detector from a
    /// [`ModelArtifact`](crate::artifact::ModelArtifact) file — no
    /// corpus, no training.
    ///
    /// # Errors
    ///
    /// Typed [`ScamDetectError::Artifact`] diagnostics on truncated,
    /// corrupted or version-mismatched artifacts.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Detector, ScamDetectError> {
        crate::artifact::ModelArtifact::load(path)?.into_detector()
    }

    /// Name of the underlying model.
    pub fn name(&self) -> String {
        match self {
            Detector::Classic { model, features } => {
                format!("{}[{}]", model.name(), features.name())
            }
            Detector::Gnn { model } => model.name().to_string(),
        }
    }

    /// P(malicious) of a lifted contract.
    ///
    /// # Panics
    ///
    /// For classic detectors trained on byte-level features
    /// ([`FeatureKind::OpcodeHistogram`] / [`FeatureKind::Combined`]) the
    /// CFG alone cannot reproduce the training representation; use
    /// [`Detector::score_bytes`] instead, or this method panics on the
    /// dimension mismatch inside the model.
    pub fn score_cfg(&self, cfg: &UnifiedCfg) -> f64 {
        match self {
            Detector::Classic { model, .. } => {
                let row = scamdetect_ir::features::graph_feature_vector(cfg);
                model.score(&row)
            }
            Detector::Gnn { model } => {
                let g = PreparedGraph::from_cfg(cfg, 0);
                model.score(&g)
            }
        }
    }

    /// P(malicious) of an already-lifted contract — always uses the exact
    /// representation the detector was trained on, with no re-lift.
    ///
    /// This is the single-lift scoring path: [`Lifted`] carries both the
    /// unified CFG and the byte-level histogram, so every model kind
    /// (including byte-feature classic detectors) scores from it.
    ///
    /// Equivalent to [`Detector::prepare_lifted`] followed by
    /// [`Detector::score_prepared`]; scan paths that may score the same
    /// contract again (batch dedup, serving replicas across model swaps)
    /// should keep the prepared input instead of re-lifting.
    ///
    /// [`Lifted`]: crate::featurize::Lifted
    pub fn score_lifted(&self, lifted: &featurize::Lifted) -> f64 {
        self.score_prepared(&self.prepare_lifted(lifted))
            .expect("prepare_lifted produces this detector's own representation")
    }

    /// The input representation this detector consumes.
    pub fn repr_kind(&self) -> ReprKind {
        match self {
            Detector::Classic { features, .. } => ReprKind::Features(*features),
            Detector::Gnn { .. } => ReprKind::Graph,
        }
    }

    /// Builds the exact model input this detector scores from an
    /// already-lifted contract — the expensive half of scoring
    /// (featurization / CSR graph construction), split out so callers
    /// can memoise it independently of the model weights.
    ///
    /// [`Lifted`]: crate::featurize::Lifted
    pub fn prepare_lifted(&self, lifted: &featurize::Lifted) -> PreparedInput {
        match self {
            Detector::Classic { features, .. } => {
                PreparedInput::Features(*features, lifted.feature_vector(*features))
            }
            Detector::Gnn { .. } => PreparedInput::Graph(PreparedGraph::from_cfg(&lifted.cfg, 0)),
        }
    }

    /// P(malicious) of a prepared input — the cheap half of scoring.
    ///
    /// Returns `None` when `input` carries a different representation
    /// than this detector consumes (e.g. a feature row prepared for an
    /// opcode-histogram model offered to a GNN after a hot swap); the
    /// caller re-prepares in that case. Scores are bit-identical to
    /// [`Detector::score_lifted`] on the input's source contract.
    pub fn score_prepared(&self, input: &PreparedInput) -> Option<f64> {
        match (self, input) {
            (Detector::Classic { model, features }, PreparedInput::Features(kind, row))
                if kind == features =>
            {
                Some(model.score(row))
            }
            (Detector::Gnn { model }, PreparedInput::Graph(g)) => Some(model.score(g)),
            _ => None,
        }
    }

    /// P(malicious) of raw bytes on a known platform — always uses the
    /// exact representation the detector was trained on.
    ///
    /// Lifts lazily: byte-feature classic detectors never build a CFG
    /// here. When CFG statistics are needed anyway (as in every scan
    /// path), lift once with [`Lifted`] and call
    /// [`Detector::score_lifted`] instead.
    ///
    /// [`Lifted`]: crate::featurize::Lifted
    pub fn score_bytes(
        &self,
        platform: scamdetect_ir::Platform,
        bytes: &[u8],
    ) -> Result<f64, ScamDetectError> {
        match self {
            Detector::Classic { model, features } => {
                let row = featurize::featurize_bytes(platform, bytes, *features)?;
                Ok(model.score(&row))
            }
            Detector::Gnn { model } => {
                let cfg = featurize::lift_bytes(platform, bytes)?;
                let g = PreparedGraph::from_cfg(&cfg, 0);
                Ok(model.score(&g))
            }
        }
    }

    /// P(malicious) of a corpus contract (classic models use their exact
    /// training representation, including byte-level histograms).
    pub fn score_contract(
        &self,
        contract: &scamdetect_dataset::Contract,
    ) -> Result<f64, ScamDetectError> {
        match self {
            Detector::Classic { model, features } => {
                let row = featurize::featurize(contract, *features)?;
                Ok(model.score(&row))
            }
            Detector::Gnn { model } => {
                let cfg = featurize::lift(contract)?;
                let g = PreparedGraph::from_cfg(&cfg, 0);
                Ok(model.score(&g))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scamdetect_dataset::CorpusConfig;

    fn corpus() -> Corpus {
        Corpus::generate(&CorpusConfig {
            size: 40,
            seed: 77,
            ..CorpusConfig::default()
        })
    }

    #[test]
    fn classic_detector_trains_and_scores() {
        let c = corpus();
        let idx: Vec<usize> = (0..c.len()).collect();
        let det = Detector::train(
            ModelKind::Classic(ClassicModel::RandomForest, FeatureKind::OpcodeHistogram),
            &c,
            &idx,
            &TrainOptions::default(),
        )
        .unwrap();
        assert!(det.name().contains("random_forest"));
        let s = det.score_contract(&c.contracts()[0]).unwrap();
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn gnn_detector_trains_and_scores() {
        let c = corpus();
        let idx: Vec<usize> = (0..c.len()).collect();
        let mut opts = TrainOptions::default();
        opts.gnn.epochs = 3; // smoke-level training
        let det = Detector::train(ModelKind::Gnn(GnnKind::Gcn), &c, &idx, &opts).unwrap();
        assert_eq!(det.name(), "gcn");
        let cfg = featurize::lift(&c.contracts()[1]).unwrap();
        assert!((0.0..=1.0).contains(&det.score_cfg(&cfg)));
    }

    #[test]
    fn empty_training_set_rejected() {
        let c = corpus();
        let err = Detector::train(
            ModelKind::Gnn(GnnKind::Gcn),
            &c,
            &[],
            &TrainOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ScamDetectError::BadCorpus { .. }));
    }

    #[test]
    fn single_class_training_set_rejected() {
        let c = corpus();
        let only_benign: Vec<usize> = (0..c.len())
            .filter(|&i| c.contracts()[i].label == scamdetect_dataset::ContractLabel::Benign)
            .collect();
        let err = Detector::train(
            ModelKind::Classic(ClassicModel::Knn1, FeatureKind::Unified),
            &c,
            &only_benign,
            &TrainOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ScamDetectError::BadCorpus { .. }));
    }

    #[test]
    fn classic_model_enum_is_complete() {
        assert_eq!(ClassicModel::all().len(), 10);
        for m in ClassicModel::all() {
            let inst = m.instantiate(1);
            assert!(!inst.name().is_empty());
        }
    }
}
