//! Contract featurization: corpus → model inputs.

use crate::error::ScamDetectError;
use scamdetect_dataset::{Contract, Corpus};
use scamdetect_evm::disasm;
use scamdetect_gnn::PreparedGraph;
use scamdetect_ir::{features, EvmFrontend, Frontend, Platform, UnifiedCfg, WasmFrontend};
use scamdetect_ml::FeatureSet;

/// Which feature representation a classic detector consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureKind {
    /// Raw 256-bin opcode-byte histogram — PhishingHook's representation.
    /// Platform-specific (EVM opcodes / WASM instruction bytes).
    OpcodeHistogram,
    /// Platform-agnostic unified-IR features (class histogram + structure).
    Unified,
    /// Concatenation of both.
    Combined,
}

impl FeatureKind {
    /// All three representations.
    pub fn all() -> [FeatureKind; 3] {
        [
            FeatureKind::OpcodeHistogram,
            FeatureKind::Unified,
            FeatureKind::Combined,
        ]
    }

    /// Lowercase name for tables.
    pub fn name(self) -> &'static str {
        match self {
            FeatureKind::OpcodeHistogram => "opcode_histogram",
            FeatureKind::Unified => "unified",
            FeatureKind::Combined => "combined",
        }
    }

    /// Stable wire tag used by the model-artifact format. Never renumber.
    pub fn code(self) -> u8 {
        match self {
            FeatureKind::OpcodeHistogram => 0,
            FeatureKind::Unified => 1,
            FeatureKind::Combined => 2,
        }
    }

    /// Inverse of [`FeatureKind::code`].
    pub fn from_code(code: u8) -> Option<FeatureKind> {
        FeatureKind::all().into_iter().find(|k| k.code() == code)
    }
}

/// Lifts a contract to the unified IR using the right frontend.
pub fn lift(contract: &Contract) -> Result<UnifiedCfg, ScamDetectError> {
    lift_bytes(contract.platform, &contract.bytes)
}

/// Lifts raw bytes on a known platform.
///
/// The EVM frontend runs with the [`VirtualNode`] unknown-jump policy:
/// jumps whose targets resist static resolution (the jump-indirection
/// obfuscation) are routed through one synthetic node instead of being
/// dropped, so the CFG stays connected and structural detectors keep
/// their signal. The synthetic edges are down-weighted during graph
/// preparation.
///
/// [`VirtualNode`]: scamdetect_evm::cfg::UnknownJumpPolicy::VirtualNode
pub fn lift_bytes(platform: Platform, bytes: &[u8]) -> Result<UnifiedCfg, ScamDetectError> {
    let cfg = match platform {
        Platform::Evm => {
            let frontend = EvmFrontend {
                options: scamdetect_evm::cfg::CfgOptions {
                    unknown_jump_policy: scamdetect_evm::cfg::UnknownJumpPolicy::VirtualNode,
                    ..Default::default()
                },
            };
            frontend.lift(bytes)?
        }
        Platform::Wasm => WasmFrontend::new().lift(bytes)?,
    };
    Ok(cfg)
}

/// Guesses the platform from the bytes (`\0asm` magic ⇒ WASM).
pub fn detect_platform(bytes: &[u8]) -> Platform {
    if bytes.starts_with(b"\0asm") {
        Platform::Wasm
    } else {
        Platform::Evm
    }
}

/// The raw byte-level opcode histogram (256 bins, normalized).
pub fn opcode_histogram(contract: &Contract) -> Vec<f64> {
    opcode_histogram_bytes(contract.platform, &contract.bytes)
}

/// Byte-level opcode histogram from raw bytes on a known platform.
pub fn opcode_histogram_bytes(platform: Platform, bytes: &[u8]) -> Vec<f64> {
    match platform {
        Platform::Evm => disasm::opcode_histogram(&disasm::disassemble(bytes)),
        Platform::Wasm => {
            // Instruction-byte histogram over the code payload: a direct
            // analog of the EVM representation.
            let mut h = vec![0.0f64; 256];
            for &b in bytes {
                h[b as usize] += 1.0;
            }
            let total: f64 = h.iter().sum();
            if total > 0.0 {
                for v in &mut h {
                    *v /= total;
                }
            }
            h
        }
    }
}

/// A contract lifted exactly once: the unified CFG plus the cheap
/// byte-level representation, everything any detector needs to score.
///
/// Historically each scan lifted the bytecode twice — once for verdict
/// statistics, once inside [`crate::Detector::score_bytes`]. `Lifted`
/// is the single-lift artifact threaded through the pipeline instead:
/// build it once with [`Lifted::from_bytes`], then hand it to
/// [`crate::Detector::score_lifted`] and read CFG statistics off the
/// same object.
#[derive(Debug, Clone)]
pub struct Lifted {
    /// Platform the bytes were lifted as.
    pub platform: Platform,
    /// The unified CFG (computed exactly once per scan).
    pub cfg: UnifiedCfg,
    /// Raw byte-level opcode histogram (256 bins, normalized).
    pub opcode_histogram: Vec<f64>,
    /// Length of the raw bytecode.
    pub byte_len: usize,
}

impl Lifted {
    /// Lifts raw bytes on a known platform.
    ///
    /// # Errors
    ///
    /// Frontend errors when the bytes are not a valid contract.
    pub fn from_bytes(platform: Platform, bytes: &[u8]) -> Result<Lifted, ScamDetectError> {
        Ok(Lifted {
            platform,
            cfg: lift_bytes(platform, bytes)?,
            opcode_histogram: opcode_histogram_bytes(platform, bytes),
            byte_len: bytes.len(),
        })
    }

    /// Lifts raw bytes, auto-detecting the platform.
    ///
    /// # Errors
    ///
    /// Frontend errors when the bytes are not a valid contract.
    pub fn auto(bytes: &[u8]) -> Result<Lifted, ScamDetectError> {
        Lifted::from_bytes(detect_platform(bytes), bytes)
    }

    /// The feature vector under `kind` — identical values to
    /// [`featurize_bytes`] on the original bytes, with no re-lift.
    pub fn feature_vector(&self, kind: FeatureKind) -> Vec<f64> {
        match kind {
            FeatureKind::OpcodeHistogram => self.opcode_histogram.clone(),
            FeatureKind::Unified => features::graph_feature_vector(&self.cfg),
            FeatureKind::Combined => {
                let mut v = self.opcode_histogram.clone();
                v.extend(features::graph_feature_vector(&self.cfg));
                v
            }
        }
    }
}

/// Feature vector of one contract under `kind`.
pub fn featurize(contract: &Contract, kind: FeatureKind) -> Result<Vec<f64>, ScamDetectError> {
    featurize_bytes(contract.platform, &contract.bytes, kind)
}

/// Feature vector of raw bytes on a known platform under `kind`.
pub fn featurize_bytes(
    platform: Platform,
    bytes: &[u8],
    kind: FeatureKind,
) -> Result<Vec<f64>, ScamDetectError> {
    Ok(match kind {
        FeatureKind::OpcodeHistogram => opcode_histogram_bytes(platform, bytes),
        FeatureKind::Unified => features::graph_feature_vector(&lift_bytes(platform, bytes)?),
        FeatureKind::Combined => {
            let mut v = opcode_histogram_bytes(platform, bytes);
            v.extend(features::graph_feature_vector(&lift_bytes(
                platform, bytes,
            )?));
            v
        }
    })
}

/// Featurizes an index subset of a corpus into a [`FeatureSet`].
pub fn featurize_corpus(
    corpus: &Corpus,
    indices: &[usize],
    kind: FeatureKind,
) -> Result<FeatureSet, ScamDetectError> {
    let mut x = Vec::with_capacity(indices.len());
    let mut y = Vec::with_capacity(indices.len());
    for &i in indices {
        let c = &corpus.contracts()[i];
        x.push(featurize(c, kind)?);
        y.push(c.label.class_index());
    }
    Ok(FeatureSet::new(x, y))
}

/// Prepares an index subset of a corpus as GNN graphs.
///
/// Graphs are built straight from the CFG edge list into CSR aggregators
/// (`O(n + e)` per contract); no dense `n x n` adjacency is materialised
/// anywhere on the scan or training path.
pub fn prepare_graphs(
    corpus: &Corpus,
    indices: &[usize],
) -> Result<Vec<PreparedGraph>, ScamDetectError> {
    indices
        .iter()
        .map(|&i| {
            let c = &corpus.contracts()[i];
            Ok(PreparedGraph::from_cfg(&lift(c)?, c.label.class_index()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scamdetect_dataset::CorpusConfig;

    fn tiny(platform: Platform) -> Corpus {
        Corpus::generate(&CorpusConfig {
            size: 12,
            platform,
            seed: 5,
            ..CorpusConfig::default()
        })
    }

    #[test]
    fn platform_detection() {
        assert_eq!(detect_platform(b"\0asm\x01\0\0\0"), Platform::Wasm);
        assert_eq!(detect_platform(&[0x60, 0x00]), Platform::Evm);
    }

    #[test]
    fn all_feature_kinds_produce_consistent_dims() {
        for platform in [Platform::Evm, Platform::Wasm] {
            let corpus = tiny(platform);
            let idx: Vec<usize> = (0..corpus.len()).collect();
            for kind in [
                FeatureKind::OpcodeHistogram,
                FeatureKind::Unified,
                FeatureKind::Combined,
            ] {
                let fs = featurize_corpus(&corpus, &idx, kind).unwrap();
                assert_eq!(fs.len(), corpus.len());
                assert!(fs.dim() > 0, "{platform} {kind:?}");
                let expected = match kind {
                    FeatureKind::OpcodeHistogram => 256,
                    FeatureKind::Unified => features::GRAPH_FEATURE_DIM,
                    FeatureKind::Combined => 256 + features::GRAPH_FEATURE_DIM,
                };
                assert_eq!(fs.dim(), expected);
            }
        }
    }

    #[test]
    fn unified_features_share_dim_across_platforms() {
        let evm = tiny(Platform::Evm);
        let wasm = tiny(Platform::Wasm);
        let fe = featurize_corpus(&evm, &[0], FeatureKind::Unified).unwrap();
        let fw = featurize_corpus(&wasm, &[0], FeatureKind::Unified).unwrap();
        assert_eq!(fe.dim(), fw.dim());
    }

    #[test]
    fn lifted_feature_vectors_match_featurize_bytes() {
        for platform in [Platform::Evm, Platform::Wasm] {
            let corpus = tiny(platform);
            for c in corpus.contracts() {
                let lifted = Lifted::from_bytes(c.platform, &c.bytes).unwrap();
                assert_eq!(lifted.platform, c.platform);
                assert_eq!(lifted.byte_len, c.bytes.len());
                for kind in [
                    FeatureKind::OpcodeHistogram,
                    FeatureKind::Unified,
                    FeatureKind::Combined,
                ] {
                    assert_eq!(
                        lifted.feature_vector(kind),
                        featurize_bytes(c.platform, &c.bytes, kind).unwrap(),
                        "{platform} {kind:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn lifted_auto_detects_platform() {
        let evm = tiny(Platform::Evm);
        let lifted = Lifted::auto(&evm.contracts()[0].bytes).unwrap();
        assert_eq!(lifted.platform, Platform::Evm);
        let wasm = tiny(Platform::Wasm);
        let lifted = Lifted::auto(&wasm.contracts()[0].bytes).unwrap();
        assert_eq!(lifted.platform, Platform::Wasm);
    }

    #[test]
    fn graphs_prepare_with_labels() {
        let corpus = tiny(Platform::Evm);
        let idx: Vec<usize> = (0..corpus.len()).collect();
        let graphs = prepare_graphs(&corpus, &idx).unwrap();
        assert_eq!(graphs.len(), corpus.len());
        for (g, c) in graphs.iter().zip(corpus.contracts()) {
            assert_eq!(g.label, c.label.class_index());
            assert!(g.node_count() > 1);
        }
    }
}
