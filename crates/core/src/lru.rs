//! A bounded least-recently-used cache.
//!
//! Backs the [`crate::scan::Scanner`] verdict cache: bulk scans over
//! realistic corpora are dominated by near-duplicate bytecode (ERC-1167
//! minimal proxies above all), so a small LRU keyed by skeleton hash
//! absorbs most of the lift-and-score work. Implemented as a slab of
//! doubly-linked entries indexed by a `HashMap` — every operation is
//! O(1) amortised, with no allocation after the slab reaches capacity.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU map. Capacity 0 disables the cache entirely
/// (every insert is dropped, every lookup misses).
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    entries: Vec<Entry<K, V>>,
    /// Most recently used entry, `NIL` when empty.
    head: usize,
    /// Least recently used entry, `NIL` when empty.
    tail: usize,
}

impl<K, V> std::fmt::Debug for LruCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LruCache")
            .field("len", &self.map.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            entries: Vec::with_capacity(capacity.min(1 << 20)),
            head: NIL,
            tail: NIL,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.touch(idx);
        Some(&self.entries[idx].value)
    }

    /// Looks up `key` without disturbing recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&idx| &self.entries[idx].value)
    }

    /// `true` when `key` is cached (recency untouched).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts `key → value`, evicting the least recently used entry if
    /// the cache is full. Overwrites (and refreshes) an existing key.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.entries[idx].value = value;
            self.touch(idx);
            return;
        }
        let idx = if self.map.len() >= self.capacity {
            // Recycle the LRU slot.
            let idx = self.tail;
            self.unlink(idx);
            let old = &mut self.entries[idx];
            self.map.remove(&old.key);
            old.key = key.clone();
            old.value = value;
            idx
        } else {
            self.entries.push(Entry {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.entries.len() - 1
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    /// Drops every entry, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.map.clear();
        self.entries.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Unlinks `idx` from the recency list.
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.entries[idx].prev, self.entries[idx].next);
        if prev != NIL {
            self.entries[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.entries[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.entries[idx].prev = NIL;
        self.entries[idx].next = NIL;
    }

    /// Links `idx` as the most recently used entry.
    fn push_front(&mut self, idx: usize) {
        self.entries[idx].prev = NIL;
        self.entries[idx].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Moves an existing entry to the front.
    fn touch(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_insert_get() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"b"), Some(&2));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // "a" now MRU
        c.insert("c", 3); // evicts "b"
        assert!(c.contains(&"a"));
        assert!(!c.contains(&"b"));
        assert!(c.contains(&"c"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn overwrite_refreshes() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10); // refresh "a": "b" becomes LRU
        c.insert("c", 3); // evicts "b"
        assert_eq!(c.peek(&"a"), Some(&10));
        assert!(!c.contains(&"b"));
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = LruCache::new(0);
        c.insert("a", 1);
        assert!(c.is_empty());
        assert_eq!(c.get(&"a"), None);
    }

    #[test]
    fn capacity_one_churns() {
        let mut c = LruCache::new(1);
        for i in 0..10 {
            c.insert(i, i * 2);
            assert_eq!(c.len(), 1);
            assert_eq!(c.get(&i), Some(&(i * 2)));
        }
        assert!(!c.contains(&8));
    }

    #[test]
    fn peek_does_not_touch() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.peek(&"a"), Some(&1)); // recency unchanged: "a" stays LRU
        c.insert("c", 3); // evicts "a"
        assert!(!c.contains(&"a"));
        assert!(c.contains(&"b"));
    }

    #[test]
    fn clear_empties() {
        let mut c = LruCache::new(4);
        c.insert(1, 1);
        c.insert(2, 2);
        c.clear();
        assert!(c.is_empty());
        c.insert(3, 3);
        assert_eq!(c.get(&3), Some(&3));
    }

    #[test]
    fn long_churn_is_consistent() {
        let mut c = LruCache::new(8);
        for i in 0usize..1000 {
            c.insert(i % 13, i);
            assert!(c.len() <= 8);
            if i % 3 == 0 {
                c.get(&(i % 7));
            }
        }
        // The 8 cached keys must all resolve to their latest values.
        for k in 0..13 {
            if let Some(&v) = c.peek(&k) {
                assert_eq!(v % 13, k);
            }
        }
    }
}
