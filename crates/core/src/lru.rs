//! Bounded least-recently-used caches: the single-lock [`LruCache`]
//! primitive and the mutex-striped [`ShardedLru`] built on top of it.
//!
//! Backs the [`crate::scan::Scanner`] verdict cache: bulk scans over
//! realistic corpora are dominated by near-duplicate bytecode (ERC-1167
//! minimal proxies above all), so a small LRU keyed by skeleton hash
//! absorbs most of the lift-and-score work. Implemented as a slab of
//! doubly-linked entries indexed by a `HashMap` — every operation is
//! O(1) amortised, with no allocation after the slab reaches capacity.
//!
//! The scanner (and the serving daemon's worker threads on top of it)
//! touch the cache from many threads at once, so the concurrent form is
//! [`ShardedLru`]: N independent `Mutex<LruCache>` shards selected by
//! key hash. Threads working distinct skeletons contend only when they
//! hash to the same shard, and a poisoned shard recovers instead of
//! permanently wedging the process.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::{Mutex, MutexGuard};

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU map. Capacity 0 disables the cache entirely
/// (every insert is dropped, every lookup misses).
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    entries: Vec<Entry<K, V>>,
    /// Most recently used entry, `NIL` when empty.
    head: usize,
    /// Least recently used entry, `NIL` when empty.
    tail: usize,
}

impl<K, V> std::fmt::Debug for LruCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LruCache")
            .field("len", &self.map.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            entries: Vec::with_capacity(capacity.min(1 << 20)),
            head: NIL,
            tail: NIL,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.touch(idx);
        Some(&self.entries[idx].value)
    }

    /// Looks up `key` without disturbing recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&idx| &self.entries[idx].value)
    }

    /// `true` when `key` is cached (recency untouched).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts `key → value`, evicting the least recently used entry if
    /// the cache is full. Overwrites (and refreshes) an existing key.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.entries[idx].value = value;
            self.touch(idx);
            return;
        }
        let idx = if self.map.len() >= self.capacity {
            // Recycle the LRU slot.
            let idx = self.tail;
            self.unlink(idx);
            let old = &mut self.entries[idx];
            self.map.remove(&old.key);
            old.key = key.clone();
            old.value = value;
            idx
        } else {
            self.entries.push(Entry {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.entries.len() - 1
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    /// Drops every entry, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.map.clear();
        self.entries.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Unlinks `idx` from the recency list.
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.entries[idx].prev, self.entries[idx].next);
        if prev != NIL {
            self.entries[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.entries[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.entries[idx].prev = NIL;
        self.entries[idx].next = NIL;
    }

    /// Links `idx` as the most recently used entry.
    fn push_front(&mut self, idx: usize) {
        self.entries[idx].prev = NIL;
        self.entries[idx].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Moves an existing entry to the front.
    fn touch(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }
}

/// A mutex-striped concurrent LRU: `shards` independent
/// [`Mutex<LruCache>`] stripes selected by key hash.
///
/// The total capacity is split evenly across stripes (rounded up), so
/// worst-case residency can exceed the requested capacity by at most
/// `shards - 1` entries. Capacity 0 disables caching entirely, exactly
/// like [`LruCache`].
///
/// # Lock poisoning
///
/// A thread that panics while holding a shard lock poisons only that
/// shard, and the next access **recovers** instead of propagating the
/// panic: the shard is cleared (its interior state may be mid-mutation,
/// so the only safe value is the empty one) and service continues. A
/// long-running serving replica therefore cannot be permanently wedged
/// by one crashed worker — it just re-misses on 1/Nth of its keys.
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<LruCache<K, V>>>,
    capacity: usize,
    hasher: RandomState,
}

impl<K, V> std::fmt::Debug for ShardedLru<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedLru")
            .field("shards", &self.shards.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

/// Default stripe count for scanner caches: enough that a machine-sized
/// worker pool rarely collides, small enough that per-shard LRU state
/// stays meaningful at modest capacities.
pub const DEFAULT_SHARDS: usize = 16;

impl<K: Eq + Hash + Clone, V: Clone> ShardedLru<K, V> {
    /// Creates a cache of `capacity` total entries striped over
    /// `shards` locks. `shards` is clamped to `1..=capacity` (a cache
    /// of 4 entries never spreads over 16 near-empty stripes); capacity
    /// 0 keeps one disabled shard.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, capacity.max(1));
        let per_shard = capacity.div_ceil(shards);
        ShardedLru {
            shards: (0..shards)
                .map(|_| Mutex::new(LruCache::new(if capacity == 0 { 0 } else { per_shard })))
                .collect(),
            capacity,
            hasher: RandomState::new(),
        }
    }

    /// Total configured capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of mutex stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Locks the shard owning `key`, recovering (and clearing) it if a
    /// previous holder panicked.
    fn shard(&self, key: &K) -> MutexGuard<'_, LruCache<K, V>> {
        let idx = (self.hasher.hash_one(key) as usize) % self.shards.len();
        Self::lock_recovering(&self.shards[idx])
    }

    /// Poison-recovering lock: a shard whose holder panicked is cleared
    /// — mid-mutation state must not be served — and returned usable.
    fn lock_recovering<'a>(shard: &'a Mutex<LruCache<K, V>>) -> MutexGuard<'a, LruCache<K, V>> {
        match shard.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.clear();
                shard.clear_poison();
                guard
            }
        }
    }

    /// Looks up `key`, marking it most recently used within its shard.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).get(key).cloned()
    }

    /// Inserts `key → value`, evicting within the owning shard if full.
    pub fn insert(&self, key: K, value: V) {
        self.shard(&key).insert(key, value);
    }

    /// Entries currently cached, summed across shards. Each shard is
    /// locked in turn, so the sum is exact only when no concurrent
    /// writer is active (fine for its uses: tests and metrics).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| Self::lock_recovering(s).len())
            .sum()
    }

    /// `true` when no shard holds any entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry in every shard.
    pub fn clear(&self) {
        for shard in &self.shards {
            Self::lock_recovering(shard).clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_insert_get() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"b"), Some(&2));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // "a" now MRU
        c.insert("c", 3); // evicts "b"
        assert!(c.contains(&"a"));
        assert!(!c.contains(&"b"));
        assert!(c.contains(&"c"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn overwrite_refreshes() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10); // refresh "a": "b" becomes LRU
        c.insert("c", 3); // evicts "b"
        assert_eq!(c.peek(&"a"), Some(&10));
        assert!(!c.contains(&"b"));
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = LruCache::new(0);
        c.insert("a", 1);
        assert!(c.is_empty());
        assert_eq!(c.get(&"a"), None);
    }

    #[test]
    fn capacity_one_churns() {
        let mut c = LruCache::new(1);
        for i in 0..10 {
            c.insert(i, i * 2);
            assert_eq!(c.len(), 1);
            assert_eq!(c.get(&i), Some(&(i * 2)));
        }
        assert!(!c.contains(&8));
    }

    #[test]
    fn peek_does_not_touch() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.peek(&"a"), Some(&1)); // recency unchanged: "a" stays LRU
        c.insert("c", 3); // evicts "a"
        assert!(!c.contains(&"a"));
        assert!(c.contains(&"b"));
    }

    #[test]
    fn clear_empties() {
        let mut c = LruCache::new(4);
        c.insert(1, 1);
        c.insert(2, 2);
        c.clear();
        assert!(c.is_empty());
        c.insert(3, 3);
        assert_eq!(c.get(&3), Some(&3));
    }

    #[test]
    fn long_churn_is_consistent() {
        let mut c = LruCache::new(8);
        for i in 0usize..1000 {
            c.insert(i % 13, i);
            assert!(c.len() <= 8);
            if i % 3 == 0 {
                c.get(&(i % 7));
            }
        }
        // The 8 cached keys must all resolve to their latest values.
        for k in 0..13 {
            if let Some(&v) = c.peek(&k) {
                assert_eq!(v % 13, k);
            }
        }
    }

    #[test]
    fn sharded_basic_and_clear() {
        let c: ShardedLru<u64, u64> = ShardedLru::new(64, 4);
        assert_eq!(c.shard_count(), 4);
        assert_eq!(c.capacity(), 64);
        for i in 0..32u64 {
            c.insert(i, i * 3);
        }
        assert_eq!(c.len(), 32);
        for i in 0..32u64 {
            assert_eq!(c.get(&i), Some(i * 3));
        }
        assert_eq!(c.get(&999), None);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn sharded_zero_capacity_disables() {
        let c: ShardedLru<u64, u64> = ShardedLru::new(0, 16);
        c.insert(1, 1);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn sharded_shard_count_clamped_to_capacity() {
        let c: ShardedLru<u64, u64> = ShardedLru::new(3, 16);
        assert!(c.shard_count() <= 3);
        // Residency never exceeds capacity + (shards - 1).
        for i in 0..100u64 {
            c.insert(i, i);
        }
        assert!(c.len() <= 3 + (c.shard_count() - 1));
    }

    #[test]
    fn sharded_bounded_under_concurrent_churn() {
        let c: ShardedLru<u64, u64> = ShardedLru::new(32, 8);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let c = &c;
                scope.spawn(move || {
                    for i in 0..500u64 {
                        let k = (t * 1000 + i) % 97;
                        c.insert(k, k * 2);
                        if let Some(v) = c.get(&k) {
                            assert_eq!(v, k * 2);
                        }
                    }
                });
            }
        });
        // Per-shard caps hold: at most ceil(32/8) = 4 per shard.
        assert!(c.len() <= 32 + (c.shard_count() - 1));
    }

    #[test]
    fn sharded_poison_recovers_instead_of_wedging() {
        let c: ShardedLru<u64, u64> = ShardedLru::new(16, 1);
        c.insert(1, 10);
        // Poison the single shard by panicking while its lock is held.
        let poisoner = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = c.shards[0].lock().unwrap();
                    panic!("worker crash while holding the cache lock");
                })
                .join()
        });
        assert!(poisoner.is_err(), "the poisoning thread must panic");
        // Every operation still works; the poisoned shard was cleared.
        assert_eq!(c.get(&1), None);
        c.insert(2, 20);
        assert_eq!(c.get(&2), Some(20));
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
    }
}
