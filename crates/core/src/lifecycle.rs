//! Feedback log: the durable half of the model lifecycle loop.
//!
//! Served verdicts are corrections waiting to happen. When an operator (or a
//! downstream labeling pipeline) disputes a verdict, the serving daemon
//! appends a [`FeedbackRecord`] to an on-disk [`FeedbackLog`]; `retrain`
//! later replays that log and folds the corrected labels back into the
//! training corpus with [`fold_feedback`]. The result is deterministic:
//! the same corpus seed plus the same log bytes always produce the same
//! retraining corpus.
//!
//! # On-disk format
//!
//! The log is append-only and length-prefixed, in the same hand-rolled
//! little-endian style as the `ModelArtifact` container (see
//! [`crate::artifact`]):
//!
//! ```text
//! magic     8 bytes   b"SCAMFDBK"
//! version   u16       FEEDBACK_VERSION (currently 1)
//! record*   ...       zero or more records, appended over time
//! ```
//!
//! Each record is independently framed and checksummed:
//!
//! ```text
//! length    u32       payload length in bytes
//! checksum  u64       FNV-1a over the payload bytes
//! payload   length bytes:
//!   fingerprint  u64          request fingerprint (skeleton hash)
//!   platform     u8           0 = Evm, 1 = Wasm
//!   label        u8           0 = Benign, 1 = Malicious (the correction)
//!   score        f64          served score being disputed (NaN = unknown)
//!   model_epoch  u64          registry epoch that served the verdict
//!   model id     u16-len str  model that served the verdict
//! ```
//!
//! # Crash safety
//!
//! Appends are a single `write` of the whole frame, fsynced every
//! `fsync_every` records (and on [`FeedbackLog::sync`]). A crash mid-append
//! leaves a *torn tail*: a partial frame, or a frame whose checksum no
//! longer matches its payload. Replay recovers to the **last whole
//! record** — everything before the first short or corrupt frame is
//! returned, the tail is discarded, and [`FeedbackLog::open`] truncates the
//! file back to the recovered prefix before accepting new appends. Replay
//! never panics on arbitrary bytes; structural impossibilities (wrong
//! magic, unsupported version) surface as typed [`FeedbackError`]s.

use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

// Re-exported so lifecycle consumers (the serving daemon, the CLI) can
// name the label type without their own dataset dependency edge.
pub use scamdetect_dataset::{Contract, ContractLabel};
use scamdetect_evm::proxy::fnv1a;
use scamdetect_ir::Platform;
use scamdetect_tensor::io::{ByteReader, ByteWriter};

use crate::scan::request_fingerprint;

/// Magic bytes opening every feedback log.
pub const FEEDBACK_MAGIC: &[u8; 8] = b"SCAMFDBK";

/// Current feedback-log format version.
pub const FEEDBACK_VERSION: u16 = 1;

/// Default number of appends between fsyncs.
pub const FEEDBACK_FSYNC_EVERY: u64 = 8;

/// Length of the fixed log header (magic + version).
const HEADER_LEN: usize = 10;

/// Length of a record frame header (length + checksum).
const FRAME_LEN: usize = 12;

/// One verdict correction, as persisted in the feedback log.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackRecord {
    /// Request fingerprint (skeleton hash for EVM, FNV-1a for Wasm) of the
    /// contract whose verdict is being corrected.
    pub fingerprint: u64,
    /// Platform the fingerprint was computed under.
    pub platform: Platform,
    /// The corrected label.
    pub label: ContractLabel,
    /// The served score being disputed; NaN when the submitter did not
    /// know it (e.g. corrections keyed by skeleton hash alone).
    pub score: f64,
    /// Registry epoch of the model that served the disputed verdict.
    pub model_epoch: u64,
    /// Id of the model that served the disputed verdict.
    pub model_id: String,
}

impl FeedbackRecord {
    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.fingerprint);
        w.put_u8(match self.platform {
            Platform::Evm => 0,
            Platform::Wasm => 1,
        });
        w.put_u8(self.label.class_index() as u8);
        w.put_f64(self.score);
        w.put_u64(self.model_epoch);
        w.put_str(&self.model_id);
        w.into_bytes()
    }

    fn decode(payload: &[u8]) -> Option<FeedbackRecord> {
        let mut r = ByteReader::new(payload);
        let fingerprint = r.get_u64("feedback fingerprint").ok()?;
        let platform = match r.get_u8("feedback platform").ok()? {
            0 => Platform::Evm,
            1 => Platform::Wasm,
            _ => return None,
        };
        let label = match r.get_u8("feedback label").ok()? {
            0 => ContractLabel::Benign,
            1 => ContractLabel::Malicious,
            _ => return None,
        };
        let score = r.get_f64("feedback score").ok()?;
        let model_epoch = r.get_u64("feedback model epoch").ok()?;
        let model_id = r.get_str("feedback model id").ok()?;
        if !r.is_done() {
            return None;
        }
        Some(FeedbackRecord {
            fingerprint,
            platform,
            label,
            score,
            model_epoch,
            model_id,
        })
    }
}

/// Errors surfaced by the feedback log.
///
/// Torn or corrupt record *tails* are not errors — replay recovers past
/// them (see the module docs). These variants cover structural
/// impossibilities and I/O failures only.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FeedbackError {
    /// The file does not open with [`FEEDBACK_MAGIC`] (or is shorter than
    /// the fixed header).
    BadMagic,
    /// The header's format version is not supported by this build.
    VersionMismatch {
        /// Version found in the header.
        found: u16,
        /// Version this build supports.
        supported: u16,
    },
    /// An operating-system I/O failure.
    Io {
        /// Path the operation was against.
        path: PathBuf,
        /// Stringified OS error.
        message: String,
    },
}

impl fmt::Display for FeedbackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeedbackError::BadMagic => {
                write!(f, "not a feedback log (bad magic; expected \"SCAMFDBK\")")
            }
            FeedbackError::VersionMismatch { found, supported } => write!(
                f,
                "unsupported feedback log version {found} (this build supports {supported})"
            ),
            FeedbackError::Io { path, message } => {
                write!(f, "feedback log I/O error at {}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for FeedbackError {}

fn io_err(path: &Path, err: std::io::Error) -> FeedbackError {
    FeedbackError::Io {
        path: path.to_path_buf(),
        message: err.to_string(),
    }
}

/// Replay feedback-log bytes, recovering to the last whole record.
///
/// Returns the decoded records plus the byte length of the valid prefix
/// (header + whole records). A torn or corrupt frame stops the replay
/// there — everything after it is discarded, and is **not** an error.
/// Only a missing or short header, wrong magic, or unsupported version
/// fail.
pub fn replay_bytes(bytes: &[u8]) -> Result<(Vec<FeedbackRecord>, usize), FeedbackError> {
    if bytes.len() < HEADER_LEN || &bytes[..8] != FEEDBACK_MAGIC {
        return Err(FeedbackError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[8], bytes[9]]);
    if version != FEEDBACK_VERSION {
        return Err(FeedbackError::VersionMismatch {
            found: version,
            supported: FEEDBACK_VERSION,
        });
    }
    let mut records = Vec::new();
    let mut offset = HEADER_LEN;
    while bytes.len() - offset >= FRAME_LEN {
        let length = u32::from_le_bytes([
            bytes[offset],
            bytes[offset + 1],
            bytes[offset + 2],
            bytes[offset + 3],
        ]) as usize;
        let checksum = u64::from_le_bytes([
            bytes[offset + 4],
            bytes[offset + 5],
            bytes[offset + 6],
            bytes[offset + 7],
            bytes[offset + 8],
            bytes[offset + 9],
            bytes[offset + 10],
            bytes[offset + 11],
        ]);
        let start = offset + FRAME_LEN;
        let Some(end) = start.checked_add(length) else {
            break; // length overflows: corrupt frame header, stop here
        };
        if end > bytes.len() {
            break; // torn tail: partial payload
        }
        let payload = &bytes[start..end];
        if fnv1a(payload) != checksum {
            break; // corrupt payload (or corrupt frame header)
        }
        let Some(record) = FeedbackRecord::decode(payload) else {
            break; // checksum matched but payload doesn't parse: stop
        };
        records.push(record);
        offset = end;
    }
    Ok((records, offset))
}

/// Append-only, checksummed, crash-safe log of verdict corrections.
///
/// See the module docs for the on-disk format and recovery semantics.
#[derive(Debug)]
pub struct FeedbackLog {
    file: File,
    path: PathBuf,
    records: u64,
    appends_since_sync: u64,
    fsync_every: u64,
}

impl FeedbackLog {
    /// Open (or create) the log at `path`.
    ///
    /// A new file is written with the fixed header and fsynced. An
    /// existing file is replayed; a torn tail left by a crash is
    /// truncated back to the last whole record before the log accepts
    /// new appends. `fsync_every` bounds data loss: an fsync is issued
    /// every that many appends (0 is treated as 1 — sync every append).
    pub fn open(path: impl Into<PathBuf>, fsync_every: u64) -> Result<FeedbackLog, FeedbackError> {
        let path = path.into();
        let fsync_every = fsync_every.max(1);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(|e| io_err(&path, e))?;
        if bytes.is_empty() {
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(FEEDBACK_MAGIC);
            header.extend_from_slice(&FEEDBACK_VERSION.to_le_bytes());
            file.write_all(&header).map_err(|e| io_err(&path, e))?;
            file.sync_all().map_err(|e| io_err(&path, e))?;
            return Ok(FeedbackLog {
                file,
                path,
                records: 0,
                appends_since_sync: 0,
                fsync_every,
            });
        }
        let (records, valid_len) = replay_bytes(&bytes)?;
        if valid_len < bytes.len() {
            file.set_len(valid_len as u64)
                .map_err(|e| io_err(&path, e))?;
            file.sync_all().map_err(|e| io_err(&path, e))?;
        }
        file.seek(SeekFrom::Start(valid_len as u64))
            .map_err(|e| io_err(&path, e))?;
        Ok(FeedbackLog {
            file,
            path,
            records: records.len() as u64,
            appends_since_sync: 0,
            fsync_every,
        })
    }

    /// Append one record as a single write, fsyncing per the bound given
    /// to [`FeedbackLog::open`].
    pub fn append(&mut self, record: &FeedbackRecord) -> Result<(), FeedbackError> {
        let payload = record.encode();
        let mut frame = Vec::with_capacity(FRAME_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file
            .write_all(&frame)
            .map_err(|e| io_err(&self.path, e))?;
        self.records += 1;
        self.appends_since_sync += 1;
        if self.appends_since_sync >= self.fsync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Force an fsync now, regardless of the append bound.
    pub fn sync(&mut self) -> Result<(), FeedbackError> {
        self.file.sync_all().map_err(|e| io_err(&self.path, e))?;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Number of whole records in the log (recovered + appended).
    pub fn len(&self) -> u64 {
        self.records
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Path the log writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Replay the log at `path` without opening it for appends.
    ///
    /// Recovery semantics match [`replay_bytes`]: a torn tail yields the
    /// whole-record prefix, not an error. A missing file is an I/O error.
    pub fn replay(path: impl AsRef<Path>) -> Result<Vec<FeedbackRecord>, FeedbackError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
        let (records, _) = replay_bytes(&bytes)?;
        Ok(records)
    }
}

/// Fold feedback corrections into a training corpus, in place.
///
/// Each contract's fingerprint is computed with [`request_fingerprint`]
/// under its own platform; contracts matching a feedback record get the
/// corrected label. When several records dispute the same fingerprint,
/// the **last record wins** (the log is chronological). Returns the
/// number of contracts whose label actually changed. Deterministic given
/// the corpus and the log — the retraining corpus depends only on
/// `(seed, log bytes)`.
pub fn fold_feedback(contracts: &mut [Contract], records: &[FeedbackRecord]) -> usize {
    let mut overrides: HashMap<(Platform, u64), ContractLabel> = HashMap::new();
    for record in records {
        overrides.insert((record.platform, record.fingerprint), record.label);
    }
    if overrides.is_empty() {
        return 0;
    }
    let mut changed = 0;
    for contract in contracts.iter_mut() {
        let fp = request_fingerprint(contract.platform, &contract.bytes);
        if let Some(&label) = overrides.get(&(contract.platform, fp)) {
            if contract.label != label {
                contract.label = label;
                changed += 1;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use scamdetect_dataset::{Corpus, CorpusConfig};

    fn temp_log_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "scamdetect-feedback-{}-{tag}.log",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn sample_record(i: u64) -> FeedbackRecord {
        FeedbackRecord {
            fingerprint: 0x1234_5678_9abc_def0 ^ i,
            platform: if i.is_multiple_of(2) {
                Platform::Evm
            } else {
                Platform::Wasm
            },
            label: if i.is_multiple_of(3) {
                ContractLabel::Malicious
            } else {
                ContractLabel::Benign
            },
            score: if i == 2 { f64::NAN } else { 0.125 * i as f64 },
            model_epoch: 40 + i,
            model_id: format!("model-v{i}"),
        }
    }

    fn records_eq(a: &FeedbackRecord, b: &FeedbackRecord) -> bool {
        a.fingerprint == b.fingerprint
            && a.platform == b.platform
            && a.label == b.label
            && a.score.to_bits() == b.score.to_bits()
            && a.model_epoch == b.model_epoch
            && a.model_id == b.model_id
    }

    #[test]
    fn round_trips_records_through_disk() {
        let path = temp_log_path("roundtrip");
        let originals: Vec<FeedbackRecord> = (0..5).map(sample_record).collect();
        {
            let mut log = FeedbackLog::open(&path, 2).expect("open");
            for r in &originals {
                log.append(r).expect("append");
            }
            assert_eq!(log.len(), 5);
            log.sync().expect("sync");
        }
        let replayed = FeedbackLog::replay(&path).expect("replay");
        assert_eq!(replayed.len(), originals.len());
        for (a, b) in replayed.iter().zip(&originals) {
            assert!(
                records_eq(a, b),
                "record drifted through disk: {a:?} vs {b:?}"
            );
        }
        // Reopen keeps the count and accepts more appends.
        let mut log = FeedbackLog::open(&path, 8).expect("reopen");
        assert_eq!(log.len(), 5);
        log.append(&sample_record(9)).expect("append after reopen");
        assert_eq!(FeedbackLog::replay(&path).expect("replay").len(), 6);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncation_at_every_prefix_recovers_whole_records() {
        let records: Vec<FeedbackRecord> = (0..4).map(sample_record).collect();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(FEEDBACK_MAGIC);
        bytes.extend_from_slice(&FEEDBACK_VERSION.to_le_bytes());
        let mut boundaries = vec![bytes.len()];
        for r in &records {
            let payload = r.encode();
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
            bytes.extend_from_slice(&payload);
            boundaries.push(bytes.len());
        }
        for k in 0..=bytes.len() {
            let truncated = &bytes[..k];
            match replay_bytes(truncated) {
                Ok((recovered, valid_len)) => {
                    // Recovered exactly the records whose frames fit whole.
                    let expect = boundaries.iter().filter(|&&b| b <= k).count() - 1;
                    assert_eq!(recovered.len(), expect, "truncated at {k}");
                    assert_eq!(valid_len, boundaries[expect], "truncated at {k}");
                    for (a, b) in recovered.iter().zip(&records) {
                        assert!(records_eq(a, b), "truncated at {k}");
                    }
                }
                Err(FeedbackError::BadMagic) => {
                    assert!(k < HEADER_LEN, "BadMagic past the header at {k}");
                }
                Err(e) => panic!("unexpected error at truncation {k}: {e}"),
            }
        }
    }

    #[test]
    fn single_byte_flips_never_panic_and_recover_a_prefix() {
        let records: Vec<FeedbackRecord> = (0..3).map(sample_record).collect();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(FEEDBACK_MAGIC);
        bytes.extend_from_slice(&FEEDBACK_VERSION.to_le_bytes());
        for r in &records {
            let payload = r.encode();
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
            bytes.extend_from_slice(&payload);
        }
        for pos in 0..bytes.len() {
            for flip in [0x01u8, 0x80] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= flip;
                match replay_bytes(&corrupt) {
                    Ok((recovered, _)) => {
                        // Whatever survives must be an exact prefix of the
                        // true records: corruption may shorten the replay,
                        // never invent or mutate a record undetected. (A
                        // flip inside a payload is caught by the checksum;
                        // a flip in a frame header desyncs and stops.)
                        assert!(recovered.len() <= records.len(), "flip at {pos}");
                        for (a, b) in recovered.iter().zip(&records) {
                            assert!(records_eq(a, b), "flip at {pos} mutated a record");
                        }
                    }
                    Err(FeedbackError::BadMagic) | Err(FeedbackError::VersionMismatch { .. }) => {
                        assert!(pos < HEADER_LEN, "header error from body flip at {pos}");
                    }
                    Err(e) => panic!("unexpected error for flip at {pos}: {e}"),
                }
            }
        }
    }

    #[test]
    fn reopen_truncates_torn_tail_and_appends_cleanly() {
        let path = temp_log_path("torntail");
        {
            let mut log = FeedbackLog::open(&path, 1).expect("open");
            log.append(&sample_record(0)).expect("append");
            log.append(&sample_record(1)).expect("append");
        }
        // Simulate a crash mid-append: tack on half a frame.
        {
            let mut file = OpenOptions::new()
                .append(true)
                .open(&path)
                .expect("append open");
            file.write_all(&[0x20, 0, 0, 0, 0xde, 0xad])
                .expect("torn write");
        }
        let full_len = std::fs::metadata(&path).expect("meta").len();
        {
            let mut log = FeedbackLog::open(&path, 1).expect("reopen over torn tail");
            assert_eq!(log.len(), 2, "torn tail must not count as a record");
            assert!(
                std::fs::metadata(&path).expect("meta").len() < full_len,
                "reopen must truncate the torn tail"
            );
            log.append(&sample_record(7))
                .expect("append after recovery");
        }
        let replayed = FeedbackLog::replay(&path).expect("replay");
        assert_eq!(replayed.len(), 3);
        assert!(records_eq(&replayed[2], &sample_record(7)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_bad_magic_and_future_versions() {
        assert_eq!(replay_bytes(b"NOTALOG!"), Err(FeedbackError::BadMagic));
        assert_eq!(replay_bytes(&[]), Err(FeedbackError::BadMagic));
        let mut future = Vec::new();
        future.extend_from_slice(FEEDBACK_MAGIC);
        future.extend_from_slice(&99u16.to_le_bytes());
        assert_eq!(
            replay_bytes(&future),
            Err(FeedbackError::VersionMismatch {
                found: 99,
                supported: FEEDBACK_VERSION
            })
        );
    }

    #[test]
    fn fold_overrides_labels_by_fingerprint_deterministically() {
        let corpus = Corpus::generate(&CorpusConfig {
            size: 24,
            seed: 41,
            ..CorpusConfig::default()
        });
        let mut contracts: Vec<Contract> = corpus.contracts().to_vec();
        // Flip the first benign contract to malicious via its fingerprint.
        let target = contracts
            .iter()
            .position(|c| c.label == ContractLabel::Benign)
            .expect("corpus has a benign contract");
        let fp = request_fingerprint(contracts[target].platform, &contracts[target].bytes);
        let platform = contracts[target].platform;
        // Same-fingerprint duplicates all flip together.
        let dup_count = contracts
            .iter()
            .filter(|c| {
                c.platform == platform
                    && c.label == ContractLabel::Benign
                    && request_fingerprint(c.platform, &c.bytes) == fp
            })
            .count();
        let records = vec![
            // Earlier record is overridden by the later one (last wins).
            FeedbackRecord {
                fingerprint: fp,
                platform,
                label: ContractLabel::Benign,
                score: 0.1,
                model_epoch: 1,
                model_id: "m".into(),
            },
            FeedbackRecord {
                fingerprint: fp,
                platform,
                label: ContractLabel::Malicious,
                score: 0.2,
                model_epoch: 2,
                model_id: "m".into(),
            },
            // Unknown fingerprint: must change nothing.
            FeedbackRecord {
                fingerprint: 0xdead_beef_dead_beef,
                platform,
                label: ContractLabel::Malicious,
                score: f64::NAN,
                model_epoch: 2,
                model_id: "m".into(),
            },
        ];
        let changed = fold_feedback(&mut contracts, &records);
        assert_eq!(changed, dup_count, "every same-fingerprint duplicate flips");
        assert_eq!(contracts[target].label, ContractLabel::Malicious);
        // Deterministic: folding a fresh copy gives identical labels.
        let mut again: Vec<Contract> = corpus.contracts().to_vec();
        assert_eq!(fold_feedback(&mut again, &records), changed);
        for (a, b) in contracts.iter().zip(&again) {
            assert_eq!(a.label, b.label);
        }
        // Folding the already-folded corpus changes nothing further.
        assert_eq!(fold_feedback(&mut contracts, &records), 0);
    }
}
