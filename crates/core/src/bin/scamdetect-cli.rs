//! The ScamDetect command-line scanner.
//!
//! ```text
//! scamdetect-cli inspect <hexfile>            static analysis of one contract
//! scamdetect-cli scan <hexfile> [options]     train + scan one contract
//! scamdetect-cli demo                         end-to-end demonstration
//!
//! scan options:
//!   --model <rf|logreg|mlp|gcn|gat|gin|tag|sage>   detector (default rf)
//!   --corpus-size <n>                              training corpus size (default 300)
//!   --seed <n>                                     corpus seed (default 42)
//! ```
//!
//! Contract files contain hex bytes (optional `0x` prefix, whitespace
//! ignored); `-` reads from stdin.

use scamdetect::{
    ClassicModel, FeatureKind, GnnKind, ModelKind, ScamDetect, TrainOptions,
};
use scamdetect::featurize::{detect_platform, lift_bytes};
use scamdetect_dataset::{generate_evm, Corpus, CorpusConfig, FamilyKind};
use scamdetect_evm::{cfg::build_cfg, disasm::disassemble, selector::extract_selectors};
use scamdetect_ir::{InstrClass, Platform};
use std::io::Read as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("scan") => cmd_scan(&args[1..]),
        Some("demo") => cmd_demo(),
        _ => {
            eprintln!("usage: scamdetect-cli <inspect|scan|demo> [args]");
            eprintln!("       see crate docs for options");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn read_contract(path: &str) -> Result<Vec<u8>, Box<dyn std::error::Error>> {
    let raw = if path == "-" {
        let mut s = String::new();
        std::io::stdin().read_to_string(&mut s)?;
        s
    } else {
        std::fs::read_to_string(path)?
    };
    let cleaned: String = raw
        .trim()
        .trim_start_matches("0x")
        .chars()
        .filter(|c| !c.is_whitespace())
        .collect();
    if cleaned.len() % 2 != 0 {
        return Err("odd number of hex digits".into());
    }
    let mut bytes = Vec::with_capacity(cleaned.len() / 2);
    for i in (0..cleaned.len()).step_by(2) {
        bytes.push(u8::from_str_radix(&cleaned[i..i + 2], 16)?);
    }
    if bytes.is_empty() {
        return Err("empty contract".into());
    }
    Ok(bytes)
}

fn cmd_inspect(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("inspect needs a hex file path")?;
    let bytes = read_contract(path)?;
    let platform = detect_platform(&bytes);
    println!("platform: {platform} ({} bytes)", bytes.len());

    if platform == Platform::Evm {
        let instrs = disassemble(&bytes);
        println!("instructions: {}", instrs.len());
        let sels = extract_selectors(&bytes);
        if !sels.is_empty() {
            print!("selectors:");
            for s in &sels {
                print!(" {s}");
            }
            println!();
        }
        let cfg = build_cfg(&bytes);
        println!(
            "cfg: {} blocks, {} edges, {} resolved / {} unresolved jumps",
            cfg.block_count(),
            cfg.graph().edge_count(),
            cfg.resolved_jump_count(),
            cfg.unresolved_jump_count()
        );
    }

    let unified = lift_bytes(platform, &bytes)?;
    println!(
        "unified ir: {} blocks, {} instructions",
        unified.block_count(),
        unified.instruction_count()
    );
    let hist = unified.class_histogram();
    let mut ranked: Vec<(InstrClass, f64)> = InstrClass::all()
        .iter()
        .map(|&c| (c, hist[c.index()]))
        .filter(|(_, v)| *v > 0.0)
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!("instruction classes:");
    for (c, share) in ranked {
        println!("  {c:<8} {:>5.1}%", share * 100.0);
    }
    Ok(())
}

fn parse_model(name: &str) -> Result<ModelKind, String> {
    Ok(match name {
        "rf" => ModelKind::Classic(ClassicModel::RandomForest, FeatureKind::Combined),
        "logreg" => ModelKind::Classic(ClassicModel::LogisticRegression, FeatureKind::Combined),
        "mlp" => ModelKind::Classic(ClassicModel::Mlp, FeatureKind::Combined),
        "gcn" => ModelKind::Gnn(GnnKind::Gcn),
        "gat" => ModelKind::Gnn(GnnKind::Gat),
        "gin" => ModelKind::Gnn(GnnKind::Gin),
        "tag" => ModelKind::Gnn(GnnKind::Tag),
        "sage" => ModelKind::Gnn(GnnKind::Sage),
        other => return Err(format!("unknown model '{other}'")),
    })
}

fn cmd_scan(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("scan needs a hex file path")?;
    let mut model = parse_model("rf").expect("default model");
    let mut corpus_size = 300usize;
    let mut seed = 42u64;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--model" => {
                i += 1;
                model = parse_model(args.get(i).ok_or("--model needs a value")?)?;
            }
            "--corpus-size" => {
                i += 1;
                corpus_size = args.get(i).ok_or("--corpus-size needs a value")?.parse()?;
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).ok_or("--seed needs a value")?.parse()?;
            }
            other => return Err(format!("unknown option '{other}'").into()),
        }
        i += 1;
    }

    let bytes = read_contract(path)?;
    let platform = detect_platform(&bytes);
    eprintln!("training on a {corpus_size}-contract {platform} corpus (seed {seed})...");
    let corpus = Corpus::generate(&CorpusConfig {
        size: corpus_size,
        platform,
        seed,
        ..CorpusConfig::default()
    });
    let mut options = TrainOptions::default();
    options.gnn.epochs = 30;
    options.gnn.lr = 1e-2;
    let scanner = ScamDetect::train(model, &corpus, &options)?;
    let verdict = scanner.scan(&bytes)?;
    println!("{verdict}");
    Ok(())
}

fn cmd_demo() -> Result<(), Box<dyn std::error::Error>> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let drainer = generate_evm(FamilyKind::ApprovalDrainer, &mut rng)
        .program
        .assemble()?;
    let token = generate_evm(FamilyKind::Erc20Token, &mut rng)
        .program
        .assemble()?;

    println!("training a random-forest scanner...");
    let corpus = Corpus::generate(&CorpusConfig {
        size: 300,
        seed: 42,
        ..CorpusConfig::default()
    });
    let scanner = ScamDetect::train(
        ModelKind::Classic(ClassicModel::RandomForest, FeatureKind::Combined),
        &corpus,
        &TrainOptions::default(),
    )?;
    println!("drainer: {}", scanner.scan(&drainer)?);
    println!("token:   {}", scanner.scan(&token)?);
    Ok(())
}
