//! The ScamDetect command-line scanner.
//!
//! ```text
//! scamdetect-cli inspect <hexfile>            static analysis of one contract
//! scamdetect-cli scan <hexfile> [options]     train + scan one contract
//! scamdetect-cli batch <hexfile>... [options] train once, scan many (dedup + parallel)
//! scamdetect-cli demo                         end-to-end demonstration
//!
//! scan / batch options:
//!   --model <rf|logreg|mlp|gcn|gat|gin|tag|sage>   detector (default rf)
//!   --corpus-size <n>                              training corpus size (default 300)
//!   --seed <n>                                     corpus seed (default 42)
//!   --threshold <p>                                decision threshold (default 0.5)
//!   --workers <n>                                  batch worker threads (default: cores)
//!   --gnn-batch <n>                                graphs per GNN training batch (default 16)
//!   --bucket                                       length-bucket GNN training batches by
//!                                                  node count (pack once, bounded batches)
//! ```
//!
//! Contract files contain hex bytes (optional `0x` prefix, whitespace
//! ignored); `-` reads from stdin.

use scamdetect::featurize::{detect_platform, lift_bytes};
use scamdetect::{
    ClassicModel, FeatureKind, GnnKind, ModelKind, ScamDetect, ScanRequest, ScannerBuilder,
    TrainOptions,
};
use scamdetect_dataset::{generate_evm, Corpus, CorpusConfig, FamilyKind};
use scamdetect_evm::{cfg::build_cfg, disasm::disassemble, selector::extract_selectors};
use scamdetect_ir::{InstrClass, Platform};
use std::io::Read as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("scan") => cmd_scan(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("demo") => cmd_demo(),
        _ => {
            eprintln!("usage: scamdetect-cli <inspect|scan|batch|demo> [args]");
            eprintln!("       see crate docs for options");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn read_contract(path: &str) -> Result<Vec<u8>, Box<dyn std::error::Error>> {
    let raw = if path == "-" {
        let mut s = String::new();
        std::io::stdin().read_to_string(&mut s)?;
        s
    } else {
        std::fs::read_to_string(path)?
    };
    let cleaned: String = raw
        .trim()
        .trim_start_matches("0x")
        .chars()
        .filter(|c| !c.is_whitespace())
        .collect();
    if !cleaned.len().is_multiple_of(2) {
        return Err("odd number of hex digits".into());
    }
    let mut bytes = Vec::with_capacity(cleaned.len() / 2);
    for i in (0..cleaned.len()).step_by(2) {
        bytes.push(u8::from_str_radix(&cleaned[i..i + 2], 16)?);
    }
    if bytes.is_empty() {
        return Err("empty contract".into());
    }
    Ok(bytes)
}

fn cmd_inspect(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("inspect needs a hex file path")?;
    let bytes = read_contract(path)?;
    let platform = detect_platform(&bytes);
    println!("platform: {platform} ({} bytes)", bytes.len());

    if platform == Platform::Evm {
        let instrs = disassemble(&bytes);
        println!("instructions: {}", instrs.len());
        let sels = extract_selectors(&bytes);
        if !sels.is_empty() {
            print!("selectors:");
            for s in &sels {
                print!(" {s}");
            }
            println!();
        }
        let cfg = build_cfg(&bytes);
        println!(
            "cfg: {} blocks, {} edges, {} resolved / {} unresolved jumps",
            cfg.block_count(),
            cfg.graph().edge_count(),
            cfg.resolved_jump_count(),
            cfg.unresolved_jump_count()
        );
    }

    let unified = lift_bytes(platform, &bytes)?;
    println!(
        "unified ir: {} blocks, {} instructions",
        unified.block_count(),
        unified.instruction_count()
    );
    let hist = unified.class_histogram();
    let mut ranked: Vec<(InstrClass, f64)> = InstrClass::all()
        .iter()
        .map(|&c| (c, hist[c.index()]))
        .filter(|(_, v)| *v > 0.0)
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!("instruction classes:");
    for (c, share) in ranked {
        println!("  {c:<8} {:>5.1}%", share * 100.0);
    }
    Ok(())
}

fn parse_model(name: &str) -> Result<ModelKind, String> {
    Ok(match name {
        "rf" => ModelKind::Classic(ClassicModel::RandomForest, FeatureKind::Combined),
        "logreg" => ModelKind::Classic(ClassicModel::LogisticRegression, FeatureKind::Combined),
        "mlp" => ModelKind::Classic(ClassicModel::Mlp, FeatureKind::Combined),
        "gcn" => ModelKind::Gnn(GnnKind::Gcn),
        "gat" => ModelKind::Gnn(GnnKind::Gat),
        "gin" => ModelKind::Gnn(GnnKind::Gin),
        "tag" => ModelKind::Gnn(GnnKind::Tag),
        "sage" => ModelKind::Gnn(GnnKind::Sage),
        other => return Err(format!("unknown model '{other}'")),
    })
}

/// Options shared by `scan` and `batch`.
struct ScanOptions {
    model: ModelKind,
    corpus_size: usize,
    seed: u64,
    threshold: f64,
    workers: usize,
    gnn_batch: usize,
    bucket: bool,
    paths: Vec<String>,
}

fn parse_scan_options(args: &[String]) -> Result<ScanOptions, Box<dyn std::error::Error>> {
    let mut opts = ScanOptions {
        model: parse_model("rf").expect("default model"),
        corpus_size: 300,
        seed: 42,
        threshold: 0.5,
        workers: 0,
        gnn_batch: 16,
        bucket: false,
        paths: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--model" => {
                i += 1;
                opts.model = parse_model(args.get(i).ok_or("--model needs a value")?)?;
            }
            "--corpus-size" => {
                i += 1;
                opts.corpus_size = args.get(i).ok_or("--corpus-size needs a value")?.parse()?;
            }
            "--seed" => {
                i += 1;
                opts.seed = args.get(i).ok_or("--seed needs a value")?.parse()?;
            }
            "--threshold" => {
                i += 1;
                opts.threshold = args.get(i).ok_or("--threshold needs a value")?.parse()?;
                if !opts.threshold.is_finite() || !(0.0..=1.0).contains(&opts.threshold) {
                    return Err(
                        format!("--threshold must be in [0, 1], got {}", opts.threshold).into(),
                    );
                }
            }
            "--workers" => {
                i += 1;
                opts.workers = args.get(i).ok_or("--workers needs a value")?.parse()?;
            }
            "--gnn-batch" => {
                i += 1;
                opts.gnn_batch = args.get(i).ok_or("--gnn-batch needs a value")?.parse()?;
                if opts.gnn_batch == 0 {
                    return Err("--gnn-batch must be at least 1".into());
                }
            }
            "--bucket" => opts.bucket = true,
            flag if flag.starts_with("--") => return Err(format!("unknown option '{flag}'").into()),
            path => opts.paths.push(path.to_string()),
        }
        i += 1;
    }
    Ok(opts)
}

/// Builds the training corpus covering every platform in `platforms` —
/// a mixed batch trains a mixed corpus so no contract is scored by a
/// model that never saw its runtime.
fn training_corpus(opts: &ScanOptions, platforms: &[Platform]) -> Corpus {
    match platforms {
        [single] => {
            eprintln!(
                "training on a {}-contract {single} corpus (seed {})...",
                opts.corpus_size, opts.seed
            );
            Corpus::generate(&CorpusConfig {
                size: opts.corpus_size,
                platform: *single,
                seed: opts.seed,
                ..CorpusConfig::default()
            })
        }
        _ => {
            eprintln!(
                "training on a {}-contract mixed evm+wasm corpus (seed {})...",
                opts.corpus_size, opts.seed
            );
            let half = (opts.corpus_size / 2).max(1);
            let mut contracts = Vec::new();
            for (platform, size, seed) in [
                (Platform::Evm, half, opts.seed),
                (
                    Platform::Wasm,
                    (opts.corpus_size - half).max(1),
                    opts.seed ^ 1,
                ),
            ] {
                let corpus = Corpus::generate(&CorpusConfig {
                    size,
                    platform,
                    seed,
                    ..CorpusConfig::default()
                });
                contracts.extend(corpus.contracts().iter().cloned());
            }
            Corpus::from_contracts(contracts)
        }
    }
}

fn train_scanner(
    opts: &ScanOptions,
    platforms: &[Platform],
) -> Result<scamdetect::Scanner, Box<dyn std::error::Error>> {
    let corpus = training_corpus(opts, platforms);
    let mut train = TrainOptions::default();
    train.gnn.epochs = 30;
    train.gnn.lr = 1e-2;
    // Block-diagonal mini-batch knobs: graphs per tape, and optional
    // length-bucketing so batches of similar-sized CFGs pack once.
    train.gnn.batch_size = opts.gnn_batch;
    train.gnn.bucket_by_size = opts.bucket;
    Ok(ScannerBuilder::new()
        .model(opts.model)
        .threshold(opts.threshold)
        .workers(opts.workers)
        .train_options(train)
        .train(&corpus)?)
}

fn cmd_scan(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let opts = parse_scan_options(args)?;
    let path = opts.paths.first().ok_or("scan needs a hex file path")?;
    let bytes = read_contract(path)?;
    let scanner = train_scanner(&opts, &[detect_platform(&bytes)])?;
    let report = scanner.scan(&bytes)?;
    println!("{}", report.verdict);
    Ok(())
}

fn cmd_batch(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let opts = parse_scan_options(args)?;
    if opts.paths.is_empty() {
        return Err("batch needs at least one hex file path".into());
    }
    let contracts: Vec<(String, Vec<u8>)> = opts
        .paths
        .iter()
        .map(|p| match read_contract(p) {
            Ok(bytes) => Ok((p.clone(), bytes)),
            Err(e) => Err(format!("{p}: {e}").into()),
        })
        .collect::<Result<_, Box<dyn std::error::Error>>>()?;
    let mut platforms: Vec<Platform> = Vec::new();
    for (_, bytes) in &contracts {
        let platform = detect_platform(bytes);
        if !platforms.contains(&platform) {
            platforms.push(platform);
        }
    }
    let scanner = train_scanner(&opts, &platforms)?;

    let requests: Vec<ScanRequest> = contracts
        .iter()
        .map(|(_, bytes)| ScanRequest::new(bytes))
        .collect();
    let started = std::time::Instant::now();
    let outcomes = scanner.scan_batch(&requests);
    let elapsed = started.elapsed();

    let mut hits = 0usize;
    for ((path, _), outcome) in contracts.iter().zip(&outcomes) {
        match outcome {
            Ok(report) => {
                if report.cache.is_hit() {
                    hits += 1;
                }
                println!("{path}: {} [cache {:?}]", report.verdict, report.cache);
            }
            Err(e) => println!("{path}: error: {e}"),
        }
    }
    eprintln!(
        "scanned {} contracts in {elapsed:?} ({hits} dedup cache hits)",
        contracts.len()
    );
    Ok(())
}

fn cmd_demo() -> Result<(), Box<dyn std::error::Error>> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let drainer = generate_evm(FamilyKind::ApprovalDrainer, &mut rng)
        .program
        .assemble()?;
    let token = generate_evm(FamilyKind::Erc20Token, &mut rng)
        .program
        .assemble()?;

    println!("training a random-forest scanner...");
    let corpus = Corpus::generate(&CorpusConfig {
        size: 300,
        seed: 42,
        ..CorpusConfig::default()
    });
    let scanner = ScamDetect::train(
        ModelKind::Classic(ClassicModel::RandomForest, FeatureKind::Combined),
        &corpus,
        &TrainOptions::default(),
    )?;
    println!("drainer: {}", scanner.scan(&drainer)?);
    println!("token:   {}", scanner.scan(&token)?);
    Ok(())
}
