//! The legacy one-shot scanning facade.
//!
//! [`ScamDetect`] predates the batch-first API and is kept as a thin
//! wrapper over [`crate::scan::Scanner`] so existing callers (and the
//! experiment module) keep working unchanged. New code should build a
//! [`crate::ScannerBuilder`] directly: it exposes the decision
//! threshold, the skeleton-hash dedup cache, worker fan-out and
//! [`crate::scan::ScanReport`] provenance that this facade hides.

use crate::detector::{Detector, ModelKind, TrainOptions};
use crate::error::ScamDetectError;
use crate::scan::{ScanRequest, Scanner, ScannerBuilder};
use crate::verdict::Verdict;
use scamdetect_dataset::Corpus;
use scamdetect_ir::Platform;

/// A trained, platform-agnostic contract scanner (one-shot facade).
///
/// `ScamDetect` owns a trained [`Detector`] and the platform frontends;
/// [`ScamDetect::scan`] takes raw on-chain bytes and returns a [`Verdict`].
/// One scanner serves every supported platform — the paper's §V-B promise.
///
/// **Deprecation path:** this type stays for source compatibility, but it
/// is now a fixed-configuration view (threshold 0.5, no dedup cache, no
/// parallelism) of the batch-first [`Scanner`]. Prefer
/// [`crate::ScannerBuilder`] for new code; migrate with
/// `ScannerBuilder::new().model(kind).train(&corpus)` and
/// [`Scanner::scan_batch`] for bulk work.
///
/// # Examples
///
/// ```no_run
/// use scamdetect::{ModelKind, GnnKind, ScamDetect, TrainOptions};
/// use scamdetect_dataset::{Corpus, CorpusConfig};
///
/// # fn main() -> Result<(), scamdetect::ScamDetectError> {
/// let corpus = Corpus::generate(&CorpusConfig::default());
/// let scanner = ScamDetect::train(ModelKind::Gnn(GnnKind::Gcn), &corpus, &TrainOptions::default())?;
/// let verdict = scanner.scan(&[0x60, 0x00, 0x60, 0x00, 0xfd])?; // PUSH PUSH REVERT
/// println!("{verdict}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ScamDetect {
    scanner: Scanner,
}

/// Legacy semantics: exact per-call computation (no memoisation across
/// calls) at the historical 0.5 threshold.
fn legacy_builder() -> ScannerBuilder {
    ScannerBuilder::new().threshold(0.5).cache_capacity(0)
}

impl ScamDetect {
    /// Trains a scanner of `kind` on the full corpus.
    ///
    /// # Errors
    ///
    /// Propagates frontend failures and corpus problems.
    pub fn train(
        kind: ModelKind,
        corpus: &Corpus,
        options: &TrainOptions,
    ) -> Result<Self, ScamDetectError> {
        let indices: Vec<usize> = (0..corpus.len()).collect();
        Self::train_on(kind, corpus, &indices, options)
    }

    /// Trains on an index subset (for held-out evaluation).
    ///
    /// # Errors
    ///
    /// Propagates frontend failures and corpus problems.
    pub fn train_on(
        kind: ModelKind,
        corpus: &Corpus,
        indices: &[usize],
        options: &TrainOptions,
    ) -> Result<Self, ScamDetectError> {
        Ok(ScamDetect {
            scanner: legacy_builder()
                .model(kind)
                .train_options(options.clone())
                .train_on(corpus, indices)?,
        })
    }

    /// Wraps an already-trained detector.
    pub fn from_detector(detector: Detector) -> Self {
        ScamDetect {
            scanner: legacy_builder().build(detector),
        }
    }

    /// The underlying detector.
    pub fn detector(&self) -> &Detector {
        self.scanner.detector()
    }

    /// The batch-first scanner this facade wraps — the migration escape
    /// hatch when a caller wants [`Scanner::scan_batch`] without
    /// retraining.
    pub fn scanner(&self) -> &Scanner {
        &self.scanner
    }

    /// Scans raw bytes, auto-detecting the platform.
    ///
    /// # Errors
    ///
    /// Frontend errors when the bytes are not a valid contract.
    pub fn scan(&self, bytes: &[u8]) -> Result<Verdict, ScamDetectError> {
        Ok(self.scanner.scan(bytes)?.verdict)
    }

    /// Scans raw bytes on an explicit platform.
    ///
    /// The bytes are lifted to the unified CFG exactly once, shared
    /// between the verdict statistics and the model score.
    ///
    /// # Errors
    ///
    /// Frontend errors when the bytes are not a valid contract.
    pub fn scan_on(&self, platform: Platform, bytes: &[u8]) -> Result<Verdict, ScamDetectError> {
        Ok(self
            .scanner
            .scan_request(&ScanRequest::new(bytes).on(platform))?
            .verdict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::ClassicModel;
    use crate::featurize::FeatureKind;
    use scamdetect_dataset::CorpusConfig;

    #[test]
    fn end_to_end_scan_auto_platform() {
        let corpus = Corpus::generate(&CorpusConfig {
            size: 30,
            seed: 21,
            ..CorpusConfig::default()
        });
        let scanner = ScamDetect::train(
            ModelKind::Classic(ClassicModel::DecisionTree, FeatureKind::Unified),
            &corpus,
            &TrainOptions::default(),
        )
        .unwrap();

        // EVM bytes scan as EVM.
        let v = scanner.scan(&corpus.contracts()[0].bytes).unwrap();
        assert_eq!(v.platform, Platform::Evm);
        assert!(v.blocks > 0);

        // WASM bytes scan as WASM.
        let wasm_corpus = Corpus::generate(&CorpusConfig {
            size: 4,
            platform: Platform::Wasm,
            seed: 3,
            ..CorpusConfig::default()
        });
        let v2 = scanner.scan(&wasm_corpus.contracts()[0].bytes).unwrap();
        assert_eq!(v2.platform, Platform::Wasm);
    }

    #[test]
    fn scan_rejects_garbage_wasm() {
        let corpus = Corpus::generate(&CorpusConfig {
            size: 20,
            seed: 2,
            ..CorpusConfig::default()
        });
        let scanner = ScamDetect::train(
            ModelKind::Classic(ClassicModel::Knn1, FeatureKind::Unified),
            &corpus,
            &TrainOptions::default(),
        )
        .unwrap();
        assert!(scanner.scan(b"\0asm____garbage").is_err());
    }

    #[test]
    fn facade_matches_detector_score() {
        // The wrapper must preserve exact one-shot semantics: the verdict
        // probability equals a direct detector score of the same bytes.
        let corpus = Corpus::generate(&CorpusConfig {
            size: 30,
            seed: 33,
            ..CorpusConfig::default()
        });
        let scanner = ScamDetect::train(
            ModelKind::Classic(ClassicModel::RandomForest, FeatureKind::Combined),
            &corpus,
            &TrainOptions::default(),
        )
        .unwrap();
        for c in corpus.contracts().iter().take(5) {
            let v = scanner.scan(&c.bytes).unwrap();
            let p = scanner
                .detector()
                .score_bytes(c.platform, &c.bytes)
                .unwrap();
            assert_eq!(v.malicious_probability, p);
        }
    }
}
