//! The end-to-end scanning pipeline.

use crate::detector::{Detector, ModelKind, TrainOptions};
use crate::error::ScamDetectError;
use crate::featurize::{detect_platform, lift_bytes};
use crate::verdict::Verdict;
use scamdetect_dataset::{ContractLabel, Corpus};
use scamdetect_ir::Platform;

/// A trained, platform-agnostic contract scanner.
///
/// `ScamDetect` owns a trained [`Detector`] and the platform frontends;
/// [`ScamDetect::scan`] takes raw on-chain bytes and returns a [`Verdict`].
/// One scanner serves every supported platform — the paper's §V-B promise.
///
/// # Examples
///
/// ```no_run
/// use scamdetect::{ModelKind, GnnKind, ScamDetect, TrainOptions};
/// use scamdetect_dataset::{Corpus, CorpusConfig};
///
/// # fn main() -> Result<(), scamdetect::ScamDetectError> {
/// let corpus = Corpus::generate(&CorpusConfig::default());
/// let scanner = ScamDetect::train(ModelKind::Gnn(GnnKind::Gcn), &corpus, &TrainOptions::default())?;
/// let verdict = scanner.scan(&[0x60, 0x00, 0x60, 0x00, 0xfd])?; // PUSH PUSH REVERT
/// println!("{verdict}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ScamDetect {
    detector: Detector,
}

impl ScamDetect {
    /// Trains a scanner of `kind` on the full corpus.
    ///
    /// # Errors
    ///
    /// Propagates frontend failures and corpus problems.
    pub fn train(
        kind: ModelKind,
        corpus: &Corpus,
        options: &TrainOptions,
    ) -> Result<Self, ScamDetectError> {
        let indices: Vec<usize> = (0..corpus.len()).collect();
        Self::train_on(kind, corpus, &indices, options)
    }

    /// Trains on an index subset (for held-out evaluation).
    ///
    /// # Errors
    ///
    /// Propagates frontend failures and corpus problems.
    pub fn train_on(
        kind: ModelKind,
        corpus: &Corpus,
        indices: &[usize],
        options: &TrainOptions,
    ) -> Result<Self, ScamDetectError> {
        Ok(ScamDetect {
            detector: Detector::train(kind, corpus, indices, options)?,
        })
    }

    /// Wraps an already-trained detector.
    pub fn from_detector(detector: Detector) -> Self {
        ScamDetect { detector }
    }

    /// The underlying detector.
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// Scans raw bytes, auto-detecting the platform.
    ///
    /// # Errors
    ///
    /// Frontend errors when the bytes are not a valid contract.
    pub fn scan(&self, bytes: &[u8]) -> Result<Verdict, ScamDetectError> {
        self.scan_on(detect_platform(bytes), bytes)
    }

    /// Scans raw bytes on an explicit platform.
    ///
    /// # Errors
    ///
    /// Frontend errors when the bytes are not a valid contract.
    pub fn scan_on(&self, platform: Platform, bytes: &[u8]) -> Result<Verdict, ScamDetectError> {
        let cfg = lift_bytes(platform, bytes)?;
        let p = self.detector.score_bytes(platform, bytes)?;
        Ok(Verdict {
            label: if p >= 0.5 {
                ContractLabel::Malicious
            } else {
                ContractLabel::Benign
            },
            malicious_probability: p,
            platform,
            model: self.detector.name(),
            blocks: cfg.block_count(),
            instructions: cfg.instruction_count(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::ClassicModel;
    use crate::featurize::FeatureKind;
    use scamdetect_dataset::CorpusConfig;

    #[test]
    fn end_to_end_scan_auto_platform() {
        let corpus = Corpus::generate(&CorpusConfig {
            size: 30,
            seed: 21,
            ..CorpusConfig::default()
        });
        let scanner = ScamDetect::train(
            ModelKind::Classic(ClassicModel::DecisionTree, FeatureKind::Unified),
            &corpus,
            &TrainOptions::default(),
        )
        .unwrap();

        // EVM bytes scan as EVM.
        let v = scanner.scan(&corpus.contracts()[0].bytes).unwrap();
        assert_eq!(v.platform, Platform::Evm);
        assert!(v.blocks > 0);

        // WASM bytes scan as WASM.
        let wasm_corpus = Corpus::generate(&CorpusConfig {
            size: 4,
            platform: Platform::Wasm,
            seed: 3,
            ..CorpusConfig::default()
        });
        let v2 = scanner.scan(&wasm_corpus.contracts()[0].bytes).unwrap();
        assert_eq!(v2.platform, Platform::Wasm);
    }

    #[test]
    fn scan_rejects_garbage_wasm() {
        let corpus = Corpus::generate(&CorpusConfig {
            size: 20,
            seed: 2,
            ..CorpusConfig::default()
        });
        let scanner = ScamDetect::train(
            ModelKind::Classic(ClassicModel::Knn1, FeatureKind::Unified),
            &corpus,
            &TrainOptions::default(),
        )
        .unwrap();
        assert!(scanner.scan(b"\0asm____garbage").is_err());
    }
}
