//! The legacy one-shot scanning facade — **deprecated**.
//!
//! [`ScamDetect`] predates both the batch-first API and artifact
//! persistence. It survives only for source compatibility, as a thin
//! wrapper over [`crate::scan::Scanner`], and is now marked
//! `#[deprecated]`. Migrate as follows:
//!
//! | Legacy call | Replacement |
//! |---|---|
//! | `ScamDetect::train(kind, &corpus, &opts)` | `ScannerBuilder::new().model(kind).train_options(opts).train(&corpus)` |
//! | `ScamDetect::train_on(kind, &corpus, idx, &opts)` | `ScannerBuilder::new().model(kind).train_options(opts).train_on(&corpus, idx)` |
//! | `ScamDetect::from_detector(det)` | `ScannerBuilder::new().build(det)` |
//! | `scanner.scan(&bytes)` | `scanner.scan(&bytes)?.verdict` |
//! | `scanner.scan_on(platform, &bytes)` | `scanner.scan_request(&ScanRequest::new(&bytes).on(platform))?.verdict` |
//! | *(no equivalent)* | `scanner.save(path)` / `ScannerBuilder::new().load(path)` |
//!
//! The replacement surface exposes everything this facade hides: the
//! decision threshold, the skeleton-hash dedup cache, worker fan-out,
//! [`crate::scan::ScanReport`] provenance and — the reason to migrate —
//! train-once/serve-anywhere model persistence.

use crate::detector::{Detector, ModelKind, TrainOptions};
use crate::error::ScamDetectError;
use crate::scan::{ScanRequest, Scanner, ScannerBuilder};
use crate::verdict::Verdict;
use scamdetect_dataset::Corpus;
use scamdetect_ir::Platform;

/// A trained, platform-agnostic contract scanner (one-shot facade).
///
/// `ScamDetect` owns a trained [`Detector`] and the platform frontends;
/// [`ScamDetect::scan`] takes raw on-chain bytes and returns a [`Verdict`].
/// One scanner serves every supported platform — the paper's §V-B promise.
///
/// **Deprecated:** this type is a fixed-configuration view (threshold
/// 0.5, no dedup cache, no parallelism, no persistence) of the
/// batch-first [`Scanner`]. See the [module docs](crate::pipeline) for
/// the call-by-call migration map.
#[deprecated(
    since = "0.1.0",
    note = "use ScannerBuilder::{train, load} and Scanner; see scamdetect::pipeline for the migration map"
)]
#[derive(Debug)]
pub struct ScamDetect {
    scanner: Scanner,
}

/// Legacy semantics: exact per-call computation (no memoisation across
/// calls) at the historical 0.5 threshold.
fn legacy_builder() -> ScannerBuilder {
    ScannerBuilder::new().threshold(0.5).cache_capacity(0)
}

#[allow(deprecated)]
impl ScamDetect {
    /// Trains a scanner of `kind` on the full corpus.
    ///
    /// # Errors
    ///
    /// Propagates frontend failures and corpus problems.
    pub fn train(
        kind: ModelKind,
        corpus: &Corpus,
        options: &TrainOptions,
    ) -> Result<Self, ScamDetectError> {
        let indices: Vec<usize> = (0..corpus.len()).collect();
        Self::train_on(kind, corpus, &indices, options)
    }

    /// Trains on an index subset (for held-out evaluation).
    ///
    /// # Errors
    ///
    /// Propagates frontend failures and corpus problems.
    pub fn train_on(
        kind: ModelKind,
        corpus: &Corpus,
        indices: &[usize],
        options: &TrainOptions,
    ) -> Result<Self, ScamDetectError> {
        Ok(ScamDetect {
            scanner: legacy_builder()
                .model(kind)
                .train_options(options.clone())
                .train_on(corpus, indices)?,
        })
    }

    /// Wraps an already-trained detector.
    pub fn from_detector(detector: Detector) -> Self {
        ScamDetect {
            scanner: legacy_builder().build(detector),
        }
    }

    /// The underlying detector.
    pub fn detector(&self) -> &Detector {
        self.scanner.detector()
    }

    /// The batch-first scanner this facade wraps — the migration escape
    /// hatch when a caller wants [`Scanner::scan_batch`] (or
    /// [`Scanner::save`]) without retraining.
    pub fn scanner(&self) -> &Scanner {
        &self.scanner
    }

    /// Scans raw bytes, auto-detecting the platform.
    ///
    /// # Errors
    ///
    /// Frontend errors when the bytes are not a valid contract.
    pub fn scan(&self, bytes: &[u8]) -> Result<Verdict, ScamDetectError> {
        Ok(self.scanner.scan(bytes)?.verdict)
    }

    /// Scans raw bytes on an explicit platform.
    ///
    /// The bytes are lifted to the unified CFG exactly once, shared
    /// between the verdict statistics and the model score.
    ///
    /// # Errors
    ///
    /// Frontend errors when the bytes are not a valid contract.
    pub fn scan_on(&self, platform: Platform, bytes: &[u8]) -> Result<Verdict, ScamDetectError> {
        Ok(self
            .scanner
            .scan_request(&ScanRequest::new(bytes).on(platform))?
            .verdict)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::detector::ClassicModel;
    use crate::featurize::FeatureKind;
    use scamdetect_dataset::CorpusConfig;

    /// The one compatibility test the deprecation path keeps: the facade
    /// must stay source-compatible and produce exactly the verdicts a
    /// direct detector score would, on both platforms, until removal.
    #[test]
    fn deprecated_facade_remains_compatible() {
        let corpus = Corpus::generate(&CorpusConfig {
            size: 30,
            seed: 33,
            ..CorpusConfig::default()
        });
        let scanner = ScamDetect::train(
            ModelKind::Classic(ClassicModel::RandomForest, FeatureKind::Combined),
            &corpus,
            &TrainOptions::default(),
        )
        .unwrap();

        // Verdict probabilities equal a direct detector score bit-for-bit.
        for c in corpus.contracts().iter().take(5) {
            let v = scanner.scan(&c.bytes).unwrap();
            let p = scanner
                .detector()
                .score_bytes(c.platform, &c.bytes)
                .unwrap();
            assert_eq!(v.malicious_probability, p);
            assert_eq!(v.platform, c.platform);
        }

        // Cross-platform one-shot scanning still auto-detects.
        let wasm_corpus = Corpus::generate(&CorpusConfig {
            size: 4,
            platform: Platform::Wasm,
            seed: 3,
            ..CorpusConfig::default()
        });
        let v = scanner.scan(&wasm_corpus.contracts()[0].bytes).unwrap();
        assert_eq!(v.platform, Platform::Wasm);

        // Garbage still fails loudly.
        assert!(scanner.scan(b"\0asm____garbage").is_err());
    }
}
