//! # ScamDetect
//!
//! A robust, modular, **platform-agnostic** smart-contract malware
//! detection framework — a from-scratch reproduction of *"ScamDetect:
//! Towards a Robust, Agnostic Framework to Uncover Threats in Smart
//! Contracts"* (De Rosa, Felber, Schiavoni; DSN-S 2025).
//!
//! The pipeline:
//!
//! ```text
//!  raw bytes ──platform frontend──▶ UnifiedCfg ──features──▶ Detector ──▶ Verdict
//!   (EVM | WASM)                   (agnostic IR)           (classic | GNN)
//! ```
//!
//! * **Frontends** ([`scamdetect_ir`]) lift EVM bytecode (disassembly +
//!   static jump resolution) and WASM modules (structured control flow)
//!   into one unified CFG whose blocks speak a cross-platform instruction
//!   taxonomy.
//! * **Detectors** are either classic classifiers
//!   ([`ClassicModel`], PhishingHook-style, over opcode histograms or
//!   unified features) or graph neural networks ([`GnnKind`]: GCN, GAT,
//!   GIN, TAG, GraphSAGE) over the CFG itself.
//! * **Corpora** come from [`scamdetect_dataset`]: 14 contract families,
//!   both platforms, fully seeded; [`scamdetect_obfuscate`] provides the
//!   leveled obfuscation threat model the evaluation sweeps over.
//!
//! ## Quickstart: train once, serve anywhere
//!
//! The detector lifecycle is split in two. **Training** happens once, in
//! one process, and ends with [`Scanner::save`] writing a versioned
//! binary [`ModelArtifact`]. **Serving** happens
//! anywhere, any number of times: [`ScannerBuilder::load`] reconstructs a
//! scanner from the artifact with no corpus in scope and no retraining —
//! a CLI invocation, a fleet of replicas and a browser embed can all
//! score with the same trained weights, and their verdicts are
//! bit-for-bit identical to the trainer's.
//!
//! ```
//! use scamdetect::{ClassicModel, FeatureKind, ModelKind, ScanRequest, ScannerBuilder};
//! use scamdetect_dataset::{Corpus, CorpusConfig};
//!
//! # fn main() -> Result<(), scamdetect::ScamDetectError> {
//! # let dir = std::env::temp_dir().join("scamdetect-doc-quickstart");
//! # std::fs::create_dir_all(&dir).unwrap();
//! # let model_path = dir.join("model.scam");
//! // ── Training process: corpus → scanner → artifact ───────────────
//! let corpus = Corpus::generate(&CorpusConfig { size: 60, seed: 7, ..CorpusConfig::default() });
//! let trained = ScannerBuilder::new()
//!     .model(ModelKind::Classic(ClassicModel::RandomForest, FeatureKind::Unified))
//!     .threshold(0.5)
//!     .train(&corpus)?;
//! trained.save(&model_path)?;
//!
//! // ── Serving process: artifact → scanner (no corpus, no training) ─
//! let scanner = ScannerBuilder::new()
//!     .cache_capacity(1024)
//!     .workers(4)
//!     .load(&model_path)?;
//!
//! // Scan a batch (platforms auto-detected; ERC-1167 clones and
//! // resubmitted bytecode hit the dedup cache).
//! let requests: Vec<ScanRequest> =
//!     corpus.contracts().iter().take(8).map(|c| ScanRequest::new(&c.bytes)).collect();
//! for outcome in scanner.scan_batch(&requests) {
//!     let report = outcome?;
//!     println!("{} (cache: {:?})", report.verdict, report.cache);
//! }
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```
//!
//! Artifacts are self-describing (magic, format version, per-section
//! checksums) and fail loudly: a truncated download, a flipped bit or a
//! future format version surfaces as a typed
//! [`ScamDetectError::Artifact`] diagnosis, never a panic or a silently
//! perturbed verdict. See the [`artifact`] module for the wire format.
//!
//! ## Serving over HTTP
//!
//! The `scamdetect-serve` crate wraps this scanner in a long-running,
//! std-only HTTP daemon with a hot-swap model registry:
//!
//! ```text
//! scamdetect-cli train --save models/rf-v1.scam        # train once
//! scamdetect-cli serve --models-dir models             # serve forever
//! curl -X POST localhost:7878/scan -d '{"bytecode": "0x6001…"}'
//! curl -X POST localhost:7878/models/reload            # hot swap, zero downtime
//! ```
//!
//! A model swap replaces the serving scanner atomically (in-flight
//! scans finish on the snapshot they started with) and drops its
//! verdict cache with it, while the model-independent [`PrepCache`]
//! carries prepared inputs across the swap — see
//! [`ScannerBuilder::shared_prep_cache`].
//!
//! The legacy one-shot `ScamDetect` facade has been removed after its
//! deprecation cycle: [`ScannerBuilder`] is the single entry point
//! (`ScamDetect::train(kind, corpus, opts)` →
//! `ScannerBuilder::new().model(kind).train_options(opts).train(corpus)`,
//! then [`Scanner::scan`]). The [`experiment`] module regenerates
//! every table and figure of the evaluation (see DESIGN.md §3 and
//! EXPERIMENTS.md).

pub mod artifact;
pub mod detector;
pub mod error;
pub mod experiment;
pub mod featurize;
pub mod lifecycle;
pub mod lru;
pub mod scan;
pub mod trace;
pub mod verdict;

pub use artifact::{ArtifactError, ModelArtifact};
pub use detector::{ClassicModel, Detector, ModelKind, PreparedInput, ReprKind, TrainOptions};
pub use error::ScamDetectError;
pub use featurize::{detect_platform, FeatureKind, Lifted};
pub use lifecycle::{fold_feedback, FeedbackError, FeedbackLog, FeedbackRecord};
pub use scan::{
    request_fingerprint, CacheStatus, CfgStats, PrepCache, ScanOutcome, ScanReport, ScanRequest,
    Scanner, ScannerBuilder,
};
pub use trace::{ActiveTrace, Sampler, Stage, Trace, TraceId, TraceRing, TraceSpan};
pub use verdict::Verdict;

// Re-export the architecture enum so users pick GNNs without an extra
// dependency edge.
pub use scamdetect_gnn::GnnKind;
