//! # ScamDetect
//!
//! A robust, modular, **platform-agnostic** smart-contract malware
//! detection framework — a from-scratch reproduction of *"ScamDetect:
//! Towards a Robust, Agnostic Framework to Uncover Threats in Smart
//! Contracts"* (De Rosa, Felber, Schiavoni; DSN-S 2025).
//!
//! The pipeline:
//!
//! ```text
//!  raw bytes ──platform frontend──▶ UnifiedCfg ──features──▶ Detector ──▶ Verdict
//!   (EVM | WASM)                   (agnostic IR)           (classic | GNN)
//! ```
//!
//! * **Frontends** ([`scamdetect_ir`]) lift EVM bytecode (disassembly +
//!   static jump resolution) and WASM modules (structured control flow)
//!   into one unified CFG whose blocks speak a cross-platform instruction
//!   taxonomy.
//! * **Detectors** are either classic classifiers
//!   ([`ClassicModel`], PhishingHook-style, over opcode histograms or
//!   unified features) or graph neural networks ([`GnnKind`]: GCN, GAT,
//!   GIN, TAG, GraphSAGE) over the CFG itself.
//! * **Corpora** come from [`scamdetect_dataset`]: 14 contract families,
//!   both platforms, fully seeded; [`scamdetect_obfuscate`] provides the
//!   leveled obfuscation threat model the evaluation sweeps over.
//!
//! ## Quickstart
//!
//! ```
//! use scamdetect::{ClassicModel, FeatureKind, ModelKind, ScamDetect, TrainOptions};
//! use scamdetect_dataset::{Corpus, CorpusConfig};
//!
//! # fn main() -> Result<(), scamdetect::ScamDetectError> {
//! // 1. A labeled corpus (synthetic stand-in for the Etherscan dataset).
//! let corpus = Corpus::generate(&CorpusConfig { size: 60, seed: 7, ..CorpusConfig::default() });
//!
//! // 2. Train a detector.
//! let scanner = ScamDetect::train(
//!     ModelKind::Classic(ClassicModel::RandomForest, FeatureKind::Unified),
//!     &corpus,
//!     &TrainOptions::default(),
//! )?;
//!
//! // 3. Scan raw bytes (platform auto-detected).
//! let verdict = scanner.scan(&corpus.contracts()[0].bytes)?;
//! println!("{verdict}");
//! # Ok(())
//! # }
//! ```
//!
//! The [`experiment`] module regenerates every table and figure of the
//! evaluation (see DESIGN.md §3 and EXPERIMENTS.md).

pub mod detector;
pub mod error;
pub mod experiment;
pub mod featurize;
pub mod pipeline;
pub mod verdict;

pub use detector::{ClassicModel, Detector, ModelKind, TrainOptions};
pub use error::ScamDetectError;
pub use featurize::{detect_platform, FeatureKind};
pub use pipeline::ScamDetect;
pub use verdict::Verdict;

// Re-export the architecture enum so users pick GNNs without an extra
// dependency edge.
pub use scamdetect_gnn::GnnKind;
