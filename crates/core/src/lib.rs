//! # ScamDetect
//!
//! A robust, modular, **platform-agnostic** smart-contract malware
//! detection framework — a from-scratch reproduction of *"ScamDetect:
//! Towards a Robust, Agnostic Framework to Uncover Threats in Smart
//! Contracts"* (De Rosa, Felber, Schiavoni; DSN-S 2025).
//!
//! The pipeline:
//!
//! ```text
//!  raw bytes ──platform frontend──▶ UnifiedCfg ──features──▶ Detector ──▶ Verdict
//!   (EVM | WASM)                   (agnostic IR)           (classic | GNN)
//! ```
//!
//! * **Frontends** ([`scamdetect_ir`]) lift EVM bytecode (disassembly +
//!   static jump resolution) and WASM modules (structured control flow)
//!   into one unified CFG whose blocks speak a cross-platform instruction
//!   taxonomy.
//! * **Detectors** are either classic classifiers
//!   ([`ClassicModel`], PhishingHook-style, over opcode histograms or
//!   unified features) or graph neural networks ([`GnnKind`]: GCN, GAT,
//!   GIN, TAG, GraphSAGE) over the CFG itself.
//! * **Corpora** come from [`scamdetect_dataset`]: 14 contract families,
//!   both platforms, fully seeded; [`scamdetect_obfuscate`] provides the
//!   leveled obfuscation threat model the evaluation sweeps over.
//!
//! ## Quickstart
//!
//! The scanning surface is **batch-first**: a fluent [`ScannerBuilder`]
//! configures the decision threshold, the skeleton-hash dedup cache and
//! the worker fan-out, and the resulting [`Scanner`] serves one-shot and
//! bulk scans alike.
//!
//! ```
//! use scamdetect::{ClassicModel, FeatureKind, ModelKind, ScanRequest, ScannerBuilder};
//! use scamdetect_dataset::{Corpus, CorpusConfig};
//!
//! # fn main() -> Result<(), scamdetect::ScamDetectError> {
//! // 1. A labeled corpus (synthetic stand-in for the Etherscan dataset).
//! let corpus = Corpus::generate(&CorpusConfig { size: 60, seed: 7, ..CorpusConfig::default() });
//!
//! // 2. Configure and train a scanner.
//! let scanner = ScannerBuilder::new()
//!     .model(ModelKind::Classic(ClassicModel::RandomForest, FeatureKind::Unified))
//!     .threshold(0.5)
//!     .cache_capacity(1024)
//!     .train(&corpus)?;
//!
//! // 3. Scan a batch (platforms auto-detected; ERC-1167 clones and
//! //    resubmitted bytecode hit the dedup cache).
//! let requests: Vec<ScanRequest> =
//!     corpus.contracts().iter().take(8).map(|c| ScanRequest::new(&c.bytes)).collect();
//! for outcome in scanner.scan_batch(&requests) {
//!     let report = outcome?;
//!     println!("{} (cache: {:?})", report.verdict, report.cache);
//! }
//! # Ok(())
//! # }
//! ```
//!
//! The legacy one-shot facade ([`ScamDetect::scan`]) remains as a thin
//! wrapper over the same machinery — see [`pipeline`] for its
//! deprecation path. The [`experiment`] module regenerates every table
//! and figure of the evaluation (see DESIGN.md §3 and EXPERIMENTS.md).

pub mod detector;
pub mod error;
pub mod experiment;
pub mod featurize;
pub mod lru;
pub mod pipeline;
pub mod scan;
pub mod verdict;

pub use detector::{ClassicModel, Detector, ModelKind, TrainOptions};
pub use error::ScamDetectError;
pub use featurize::{detect_platform, FeatureKind, Lifted};
pub use pipeline::ScamDetect;
pub use scan::{
    CacheStatus, CfgStats, ScanOutcome, ScanReport, ScanRequest, Scanner, ScannerBuilder,
};
pub use verdict::Verdict;

// Re-export the architecture enum so users pick GNNs without an extra
// dependency edge.
pub use scamdetect_gnn::GnnKind;
