//! Experiment runners: one function per evaluation exhibit (E1–E8).
//!
//! Both the Criterion benches and the `experiments` binary drive these
//! functions; integration tests run them on the quick profile. DESIGN.md
//! §3 maps each experiment to its paper claim.

use crate::detector::{ClassicModel, Detector, ModelKind, TrainOptions};
use crate::error::ScamDetectError;
use crate::featurize::{self, FeatureKind};
use scamdetect_dataset::{Contract, ContractSource, Corpus, CorpusConfig};
use scamdetect_gnn::{BatchTrainConfig, GnnKind};
use scamdetect_ir::Platform;
use scamdetect_ml::{fit_evaluate, EvalRow};
use scamdetect_obfuscate::{apply_evm_pass, EvmPassKind, ObfuscationLevel};
use std::time::Instant;

/// Experiment sizing profile.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Contracts per generated corpus.
    pub corpus_size: usize,
    /// Held-out fraction.
    pub test_fraction: f64,
    /// GNN training hyperparameters.
    pub gnn: BatchTrainConfig,
    /// Master seed.
    pub seed: u64,
}

impl Profile {
    /// Small profile for tests and smoke benches (runs in seconds).
    pub fn quick() -> Self {
        Profile {
            corpus_size: 80,
            test_fraction: 0.3,
            gnn: BatchTrainConfig {
                epochs: 12,
                batch_size: 16,
                lr: 1e-2,
                ..BatchTrainConfig::default()
            },
            seed: 0xE0,
        }
    }

    /// Full profile for the experiments binary (minutes, release mode).
    pub fn full() -> Self {
        Profile {
            corpus_size: 600,
            test_fraction: 0.3,
            gnn: BatchTrainConfig {
                epochs: 60,
                batch_size: 16,
                lr: 1e-2,
                ..BatchTrainConfig::default()
            },
            seed: 0xE0,
        }
    }

    fn corpus(&self, platform: Platform) -> Corpus {
        Corpus::generate(&CorpusConfig {
            size: self.corpus_size,
            platform,
            seed: self.seed,
            ..CorpusConfig::default()
        })
    }

    fn train_options(&self) -> TrainOptions {
        TrainOptions {
            gnn: self.gnn.clone(),
            seed: self.seed ^ 0xAB,
        }
    }
}

fn eval_detector(
    det: &Detector,
    corpus: &Corpus,
    indices: &[usize],
    name: &str,
) -> Result<EvalRow, ScamDetectError> {
    let mut truth = Vec::with_capacity(indices.len());
    let mut preds = Vec::with_capacity(indices.len());
    let mut scores = Vec::with_capacity(indices.len());
    for &i in indices {
        let c = &corpus.contracts()[i];
        let s = det.score_contract(c)?;
        truth.push(c.label.class_index());
        preds.push(usize::from(s >= 0.5));
        scores.push(s);
    }
    Ok(EvalRow::evaluate(name.to_string(), &truth, &preds, &scores))
}

// ---------------------------------------------------------------------
// E1 — Table 1: the classic model zoo on the clean EVM corpus.
// ---------------------------------------------------------------------

/// Runs E1: every classic model on opcode-histogram features over a clean
/// EVM corpus. Reproduces the PhishingHook "~90% accuracy" benchmark
/// shape.
pub fn run_e1_baselines(profile: &Profile) -> Result<Vec<EvalRow>, ScamDetectError> {
    let corpus = profile.corpus(Platform::Evm);
    let (train_idx, test_idx) = corpus.split(profile.test_fraction, profile.seed);
    let train = featurize::featurize_corpus(&corpus, &train_idx, FeatureKind::OpcodeHistogram)?;
    let test = featurize::featurize_corpus(&corpus, &test_idx, FeatureKind::OpcodeHistogram)?;
    let mut rows = Vec::new();
    for kind in ClassicModel::all() {
        let mut model = kind.instantiate(profile.seed);
        rows.push(fit_evaluate(model.as_mut(), &train, &test));
    }
    Ok(rows)
}

// ---------------------------------------------------------------------
// E2 — Table 2: the five GNN architectures on the clean EVM corpus.
// ---------------------------------------------------------------------

/// Runs E2: GCN/GAT/GIN/TAG/GraphSAGE over CFGs of the clean EVM corpus.
pub fn run_e2_gnns(profile: &Profile) -> Result<Vec<EvalRow>, ScamDetectError> {
    let corpus = profile.corpus(Platform::Evm);
    let (train_idx, test_idx) = corpus.split(profile.test_fraction, profile.seed);
    let opts = profile.train_options();
    let mut rows = Vec::new();
    for kind in GnnKind::all() {
        let det = Detector::train(ModelKind::Gnn(kind), &corpus, &train_idx, &opts)?;
        rows.push(eval_detector(&det, &corpus, &test_idx, kind.name())?);
    }
    Ok(rows)
}

// ---------------------------------------------------------------------
// E3 — Figure 1: accuracy vs obfuscation level.
// ---------------------------------------------------------------------

/// One point of the robustness sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessPoint {
    /// Obfuscation level 0–5.
    pub level: u8,
    /// Accuracy of the opcode-histogram baseline (random forest).
    pub baseline_accuracy: f64,
    /// Accuracy of the CFG GNN (GCN).
    pub gnn_accuracy: f64,
}

/// Builds the robust-training pool: each training contract plus its
/// obfuscated variants at levels 1, 3 and 4 — one light pass set, one
/// heavy structural set, and one including partial jump indirection, so
/// detectors see every *technique* during training. Level 5 (full
/// indirection + flattening, maximum intensity) stays unseen: the sweep
/// measures generalisation to stronger compositions than the detector was
/// trained against — the protocol Phase 1 implies ("detect obfuscated
/// phishing contracts").
fn augmented_training(corpus: &Corpus, train_idx: &[usize]) -> (Corpus, Vec<usize>) {
    let mut contracts = Vec::new();
    for &i in train_idx {
        let c = &corpus.contracts()[i];
        contracts.push(c.clone());
        for lvl in [1u8, 3, 4] {
            contracts.push(c.obfuscated(ObfuscationLevel::new(lvl)));
        }
    }
    let idx: Vec<usize> = (0..contracts.len()).collect();
    (Corpus::from_contracts(contracts), idx)
}

/// Runs E3: train both detectors with obfuscation-augmented data (levels
/// 1–3), evaluate on test sets obfuscated at levels 0–5 (4–5 unseen at
/// training time). The paper's central hypothesis is that the structural
/// model degrades more slowly at the unseen levels.
pub fn run_e3_robustness(profile: &Profile) -> Result<Vec<RobustnessPoint>, ScamDetectError> {
    let corpus = profile.corpus(Platform::Evm);
    let (train_idx, test_idx) = corpus.split(profile.test_fraction, profile.seed);
    let opts = profile.train_options();
    let (aug, aug_idx) = augmented_training(&corpus, &train_idx);

    let baseline = Detector::train(
        ModelKind::Classic(ClassicModel::RandomForest, FeatureKind::OpcodeHistogram),
        &aug,
        &aug_idx,
        &opts,
    )?;
    let gnn = Detector::train(ModelKind::Gnn(GnnKind::Gcn), &aug, &aug_idx, &opts)?;

    let mut out = Vec::new();
    for level in ObfuscationLevel::all() {
        let obf = corpus.obfuscated(level);
        let b = eval_detector(&baseline, &obf, &test_idx, "baseline")?;
        let g = eval_detector(&gnn, &obf, &test_idx, "gnn")?;
        out.push(RobustnessPoint {
            level: level.get(),
            baseline_accuracy: b.accuracy,
            gnn_accuracy: g.accuracy,
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// E4 — Figure 2: per-pass robustness breakdown.
// ---------------------------------------------------------------------

/// Accuracy under one isolated obfuscation pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PassImpact {
    /// Pass name.
    pub pass: &'static str,
    /// Baseline accuracy on the transformed test set.
    pub baseline_accuracy: f64,
    /// GNN accuracy on the transformed test set.
    pub gnn_accuracy: f64,
}

fn apply_single_pass(contract: &Contract, pass: EvmPassKind) -> Contract {
    match &contract.source {
        ContractSource::Evm(prog) => {
            let mut rng = rand::SeedableRng::seed_from_u64(contract.id ^ 0x9A55);
            let obf = apply_evm_pass(pass, prog, &mut rng, 1.0);
            let bytes = obf.assemble().expect("obfuscated program assembles");
            Contract {
                bytes,
                source: ContractSource::Evm(obf),
                ..contract.clone()
            }
        }
        _ => contract.clone(),
    }
}

/// Runs E4: each EVM pass applied alone at full intensity to the test
/// set, against the same augmented-trained detectors E3 uses.
pub fn run_e4_per_pass(profile: &Profile) -> Result<Vec<PassImpact>, ScamDetectError> {
    let corpus = profile.corpus(Platform::Evm);
    let (train_idx, test_idx) = corpus.split(profile.test_fraction, profile.seed);
    let opts = profile.train_options();
    let (aug, aug_idx) = augmented_training(&corpus, &train_idx);
    let baseline = Detector::train(
        ModelKind::Classic(ClassicModel::RandomForest, FeatureKind::OpcodeHistogram),
        &aug,
        &aug_idx,
        &opts,
    )?;
    let gnn = Detector::train(ModelKind::Gnn(GnnKind::Gcn), &aug, &aug_idx, &opts)?;

    let mut out = Vec::new();
    for pass in EvmPassKind::all() {
        let transformed = Corpus::from_contracts(
            corpus
                .contracts()
                .iter()
                .map(|c| apply_single_pass(c, pass))
                .collect(),
        );
        let b = eval_detector(&baseline, &transformed, &test_idx, "baseline")?;
        let g = eval_detector(&gnn, &transformed, &test_idx, "gnn")?;
        out.push(PassImpact {
            pass: pass.name(),
            baseline_accuracy: b.accuracy,
            gnn_accuracy: g.accuracy,
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// E5 — Table 3: platform transfer.
// ---------------------------------------------------------------------

/// One train-platform/test-platform accuracy cell.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferCell {
    /// Training corpus platform ("evm", "wasm", "mixed").
    pub train: &'static str,
    /// Test corpus platform.
    pub test: &'static str,
    /// Unified-feature classic model accuracy.
    pub classic_accuracy: f64,
    /// GNN accuracy.
    pub gnn_accuracy: f64,
}

/// Runs E5: train on {EVM, WASM, mixed}, evaluate on {EVM, WASM}, using
/// only platform-agnostic representations. Measures how much detection
/// transfers across runtimes — Phase 2's headline question.
pub fn run_e5_agnostic(profile: &Profile) -> Result<Vec<TransferCell>, ScamDetectError> {
    let evm = profile.corpus(Platform::Evm);
    let wasm = Corpus::generate(&CorpusConfig {
        size: profile.corpus_size,
        platform: Platform::Wasm,
        seed: profile.seed ^ 0x77A5,
        ..CorpusConfig::default()
    });
    let (evm_train, evm_test) = evm.split(profile.test_fraction, profile.seed);
    let (wasm_train, wasm_test) = wasm.split(profile.test_fraction, profile.seed);

    // Mixed corpus: concatenate contracts (ids stay unique per corpus use).
    let mut mixed_contracts = Vec::new();
    for &i in &evm_train {
        mixed_contracts.push(evm.contracts()[i].clone());
    }
    for &i in &wasm_train {
        mixed_contracts.push(wasm.contracts()[i].clone());
    }
    let mixed = Corpus::from_contracts(mixed_contracts);
    let mixed_idx: Vec<usize> = (0..mixed.len()).collect();

    let opts = profile.train_options();
    let mut out = Vec::new();
    let train_sets: [(&'static str, &Corpus, Vec<usize>); 3] = [
        ("evm", &evm, evm_train.clone()),
        ("wasm", &wasm, wasm_train.clone()),
        ("mixed", &mixed, mixed_idx),
    ];
    for (train_name, train_corpus, train_indices) in train_sets {
        let classic = Detector::train(
            ModelKind::Classic(ClassicModel::RandomForest, FeatureKind::Unified),
            train_corpus,
            &train_indices,
            &opts,
        )?;
        let gnn = Detector::train(
            ModelKind::Gnn(GnnKind::Gcn),
            train_corpus,
            &train_indices,
            &opts,
        )?;
        for (test_name, test_corpus, test_indices) in
            [("evm", &evm, &evm_test), ("wasm", &wasm, &wasm_test)]
        {
            let c = eval_detector(&classic, test_corpus, test_indices, "classic")?;
            let g = eval_detector(&gnn, test_corpus, test_indices, "gnn")?;
            out.push(TransferCell {
                train: train_name,
                test: test_name,
                classic_accuracy: c.accuracy,
                gnn_accuracy: g.accuracy,
            });
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// E6 — Figure 3: pipeline throughput by stage.
// ---------------------------------------------------------------------

/// Mean per-contract latency of one pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTiming {
    /// Stage name.
    pub stage: &'static str,
    /// Mean microseconds per contract.
    pub mean_us: f64,
    /// Contracts per second implied.
    pub contracts_per_sec: f64,
    /// Mean bytecode size over the sample.
    pub mean_bytes: f64,
}

/// Runs E6: times disassembly, CFG recovery, feature extraction, model
/// inference, and the parallel batch-scan path per contract over the
/// corpus.
pub fn run_e6_throughput(profile: &Profile) -> Result<Vec<StageTiming>, ScamDetectError> {
    let corpus = profile.corpus(Platform::Evm);
    let idx: Vec<usize> = (0..corpus.len()).collect();
    let opts = profile.train_options();
    let det = Detector::train(
        ModelKind::Classic(ClassicModel::RandomForest, FeatureKind::Unified),
        &corpus,
        &idx,
        &opts,
    )?;
    let n = corpus.len() as f64;
    let mean_bytes = corpus
        .contracts()
        .iter()
        .map(|c| c.bytes.len())
        .sum::<usize>() as f64
        / n;

    let mut timings = Vec::new();
    let mut time_stage = |stage: &'static str, f: &mut dyn FnMut()| {
        let start = Instant::now();
        f();
        let mean_us = start.elapsed().as_secs_f64() * 1e6 / n;
        timings.push(StageTiming {
            stage,
            mean_us,
            contracts_per_sec: if mean_us > 0.0 {
                1e6 / mean_us
            } else {
                f64::INFINITY
            },
            mean_bytes,
        });
    };

    time_stage("disassemble", &mut || {
        for c in corpus.contracts() {
            std::hint::black_box(scamdetect_evm::disasm::disassemble(&c.bytes));
        }
    });
    time_stage("build_cfg", &mut || {
        for c in corpus.contracts() {
            std::hint::black_box(scamdetect_evm::cfg::build_cfg(&c.bytes));
        }
    });
    time_stage("lift_and_features", &mut || {
        for c in corpus.contracts() {
            let cfg = featurize::lift(c).expect("lift");
            std::hint::black_box(scamdetect_ir::features::graph_feature_vector(&cfg));
        }
    });
    time_stage("inference", &mut || {
        for c in corpus.contracts() {
            std::hint::black_box(det.score_contract(c).expect("score"));
        }
    });

    // The production path: one batch over the whole corpus, skeleton
    // dedup on, fanned across scoped workers (0 = one per core).
    let scanner = crate::scan::ScannerBuilder::new().workers(0).build(det);
    let requests: Vec<crate::scan::ScanRequest> = corpus
        .contracts()
        .iter()
        .map(|c| crate::scan::ScanRequest::new(&c.bytes))
        .collect();
    time_stage("scan_batch", &mut || {
        scanner.clear_cache(); // cold-cache numbers, comparable across runs
        for outcome in scanner.scan_batch(&requests) {
            std::hint::black_box(outcome.expect("batch scan succeeds"));
        }
    });
    Ok(timings)
}

// ---------------------------------------------------------------------
// E7 — Table 4: dataset curation / dedup.
// ---------------------------------------------------------------------

/// The dedup exhibit: corpus stats before and after curation.
#[derive(Debug, Clone)]
pub struct DedupExhibit {
    /// Stats before dedup.
    pub before: scamdetect_dataset::CorpusStats,
    /// Stats after dedup.
    pub after: scamdetect_dataset::CorpusStats,
    /// What was removed.
    pub report: scamdetect_dataset::DedupReport,
}

/// Runs E7: generates a corpus with injected ERC-1167 duplicates, then
/// dedups it — the §V-A curation step, quantified.
pub fn run_e7_dedup(profile: &Profile) -> DedupExhibit {
    let corpus = Corpus::generate(&CorpusConfig {
        size: profile.corpus_size,
        seed: profile.seed,
        proxy_duplicates: profile.corpus_size / 4,
        ..CorpusConfig::default()
    });
    let before = corpus.stats();
    let (clean, report) = corpus.dedup();
    DedupExhibit {
        before,
        after: clean.stats(),
        report,
    }
}

// ---------------------------------------------------------------------
// E8 — Table 5: ablations.
// ---------------------------------------------------------------------

/// One ablation row: a named variant and its accuracy on clean and
/// obfuscated (L3) test sets.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Variant description.
    pub variant: String,
    /// Accuracy on the clean test set.
    pub clean_accuracy: f64,
    /// Accuracy on the L3-obfuscated test set.
    pub obfuscated_accuracy: f64,
}

/// Runs E8: feature-set ablation for the classic detector and depth /
/// readout ablation for the GNN.
pub fn run_e8_ablation(profile: &Profile) -> Result<Vec<AblationRow>, ScamDetectError> {
    let corpus = profile.corpus(Platform::Evm);
    let (train_idx, test_idx) = corpus.split(profile.test_fraction, profile.seed);
    let obf = corpus.obfuscated(ObfuscationLevel::new(3));
    let opts = profile.train_options();

    let mut rows = Vec::new();

    // Feature-kind ablation (random forest).
    for kind in [
        FeatureKind::OpcodeHistogram,
        FeatureKind::Unified,
        FeatureKind::Combined,
    ] {
        let det = Detector::train(
            ModelKind::Classic(ClassicModel::RandomForest, kind),
            &corpus,
            &train_idx,
            &opts,
        )?;
        let clean = eval_detector(&det, &corpus, &test_idx, kind.name())?;
        let obfd = eval_detector(&det, &obf, &test_idx, kind.name())?;
        rows.push(AblationRow {
            variant: format!("rf_features={}", kind.name()),
            clean_accuracy: clean.accuracy,
            obfuscated_accuracy: obfd.accuracy,
        });
    }

    // GNN depth ablation.
    for layers in [1usize, 2, 3] {
        let graphs = featurize::prepare_graphs(&corpus, &train_idx)?;
        let config =
            scamdetect_gnn::GnnConfig::new(GnnKind::Gcn, scamdetect_ir::features::NODE_FEATURE_DIM)
                .with_layers(layers)
                .with_seed(opts.seed);
        let mut model = scamdetect_gnn::GnnClassifier::new(config);
        scamdetect_gnn::train(&mut model, &graphs, &opts.gnn);
        let det = Detector::Gnn { model };
        let clean = eval_detector(&det, &corpus, &test_idx, "gnn")?;
        let obfd = eval_detector(&det, &obf, &test_idx, "gnn")?;
        rows.push(AblationRow {
            variant: format!("gcn_layers={layers}"),
            clean_accuracy: clean.accuracy,
            obfuscated_accuracy: obfd.accuracy,
        });
    }

    // Readout ablation.
    for readout in scamdetect_gnn::Readout::all() {
        let graphs = featurize::prepare_graphs(&corpus, &train_idx)?;
        let config =
            scamdetect_gnn::GnnConfig::new(GnnKind::Gcn, scamdetect_ir::features::NODE_FEATURE_DIM)
                .with_readout(readout)
                .with_seed(opts.seed);
        let mut model = scamdetect_gnn::GnnClassifier::new(config);
        scamdetect_gnn::train(&mut model, &graphs, &opts.gnn);
        let det = Detector::Gnn { model };
        let clean = eval_detector(&det, &corpus, &test_idx, "gnn")?;
        let obfd = eval_detector(&det, &obf, &test_idx, "gnn")?;
        rows.push(AblationRow {
            variant: format!("gcn_readout={}", readout.name()),
            clean_accuracy: clean.accuracy,
            obfuscated_accuracy: obfd.accuracy,
        });
    }

    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Profile {
        Profile {
            corpus_size: 36,
            test_fraction: 0.3,
            gnn: BatchTrainConfig {
                epochs: 2,
                batch_size: 12,
                ..BatchTrainConfig::default()
            },
            seed: 0xF00,
        }
    }

    #[test]
    fn e1_produces_all_model_rows() {
        let rows = run_e1_baselines(&tiny()).unwrap();
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert!(r.accuracy >= 0.0 && r.accuracy <= 1.0);
        }
    }

    #[test]
    fn e3_covers_all_levels() {
        let pts = run_e3_robustness(&tiny()).unwrap();
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0].level, 0);
        assert_eq!(pts[5].level, 5);
    }

    #[test]
    fn e6_times_all_stages() {
        let stages = run_e6_throughput(&tiny()).unwrap();
        assert_eq!(stages.len(), 5);
        assert_eq!(stages.last().unwrap().stage, "scan_batch");
        assert!(stages.iter().all(|s| s.mean_us >= 0.0));
        assert!(stages.iter().all(|s| s.contracts_per_sec > 0.0));
    }

    #[test]
    fn e7_dedup_removes_duplicates() {
        let ex = run_e7_dedup(&tiny());
        assert!(ex.report.proxies_removed > 0);
        assert!(ex.after.total < ex.before.total);
    }
}
