//! Scan verdicts.

use scamdetect_dataset::ContractLabel;
use scamdetect_ir::Platform;
use std::fmt;

/// The result of scanning one contract.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Predicted label.
    pub label: ContractLabel,
    /// Model confidence that the contract is malicious, in `[0, 1]`.
    pub malicious_probability: f64,
    /// Platform the bytes were interpreted as.
    pub platform: Platform,
    /// Name of the model that produced the verdict.
    pub model: String,
    /// Basic blocks analysed.
    pub blocks: usize,
    /// Instructions analysed.
    pub instructions: usize,
}

impl Verdict {
    /// Builds a verdict by thresholding `malicious_probability`: flagged
    /// when `probability >= threshold`. This is the single decision rule
    /// every scan path shares.
    pub fn decide(
        probability: f64,
        threshold: f64,
        platform: Platform,
        model: String,
        blocks: usize,
        instructions: usize,
    ) -> Verdict {
        Verdict {
            label: if probability >= threshold {
                ContractLabel::Malicious
            } else {
                ContractLabel::Benign
            },
            malicious_probability: probability,
            platform,
            model,
            blocks,
            instructions,
        }
    }

    /// `true` when the verdict flags the contract.
    pub fn is_malicious(&self) -> bool {
        self.label == ContractLabel::Malicious
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} (p_malicious = {:.3}, model = {}, {} blocks / {} instructions)",
            self.platform,
            self.label,
            self.malicious_probability,
            self.model,
            self.blocks,
            self.instructions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let v = Verdict {
            label: ContractLabel::Malicious,
            malicious_probability: 0.97,
            platform: Platform::Evm,
            model: "gcn".to_string(),
            blocks: 12,
            instructions: 230,
        };
        assert!(v.is_malicious());
        let s = v.to_string();
        assert!(s.contains("malicious"));
        assert!(s.contains("0.970"));
        assert!(s.contains("gcn"));
    }
}
