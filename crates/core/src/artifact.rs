//! Versioned, self-describing persistence for trained detectors — the
//! **train-once / serve-anywhere** artifact.
//!
//! A [`ModelArtifact`] is the portable binary form of a trained
//! [`Detector`] plus its serving metadata (model kind, decision
//! threshold, training options). It is what makes the detector lifecycle
//! split in two: `train` + [`crate::Scanner::save`] happen once, in one
//! process; [`crate::ScannerBuilder::load`] then constructs serving
//! scanners anywhere — CLI runs, benchmark harnesses, browser embeds,
//! fleets of replicas — without a corpus in scope and without paying
//! training again.
//!
//! # Wire format (version 1)
//!
//! Hand-rolled little-endian, since the workspace is offline and
//! dependency-free (no serde). Every multi-byte value is little-endian by
//! definition, so artifacts are portable across architectures.
//!
//! ```text
//! magic      8  bytes   b"SCAMDTCT"
//! version    u16        format version (currently 1)
//! count      u32        number of named sections
//! section[count]:
//!   name     u16 len + UTF-8 bytes
//!   length   u32        payload byte length
//!   checksum u64        FNV-1a over the name bytes ++ payload
//!   payload  bytes
//! ```
//!
//! The `"meta"` section stores model kind, threshold, train options and
//! the trained feature dimensionality (validated against this build's
//! feature space at parse time);
//! the remaining sections are the model state exported through
//! [`ParamIo`] — for tensor-backed models (MLP, all five GNNs) that means
//! one named section per weight matrix. Every section is individually
//! checksummed, so a flipped bit anywhere fails loudly as
//! [`ArtifactError::ChecksumMismatch`] instead of silently perturbing
//! verdicts.
//!
//! # Failure behavior
//!
//! Loading never panics on bad input: truncated files, corrupted
//! payloads, unknown enum tags and future format versions all surface as
//! typed [`ArtifactError`]s (wrapped in
//! [`ScamDetectError::Artifact`]) with enough context to diagnose what
//! went wrong.

use crate::detector::{ClassicModel, Detector, ModelKind, TrainOptions};
use crate::error::ScamDetectError;
use crate::featurize::FeatureKind;
use scamdetect_gnn::{GnnClassifier, GnnConfig, GnnKind};
use scamdetect_ir::features::{GRAPH_FEATURE_DIM, NODE_FEATURE_DIM};
use scamdetect_ml::ParamIo;
use scamdetect_tensor::io::{ByteReader, ByteWriter, CodecError, Sections};
use std::error::Error;
use std::fmt;
use std::path::Path;

/// The artifact file magic.
pub const ARTIFACT_MAGIC: [u8; 8] = *b"SCAMDTCT";

/// The current (and only) artifact format version.
pub const ARTIFACT_VERSION: u16 = 1;

/// Why an artifact failed to serialize, parse or reconstruct.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArtifactError {
    /// The bytes do not start with [`ARTIFACT_MAGIC`].
    BadMagic,
    /// The artifact declares a format version this build cannot read.
    VersionMismatch {
        /// Version found in the file.
        found: u16,
        /// Version this build supports.
        supported: u16,
    },
    /// A section's stored checksum does not match its payload.
    ChecksumMismatch {
        /// The corrupted section's name.
        section: String,
    },
    /// Well-formed sections were followed by unexpected extra bytes.
    TrailingData {
        /// How many bytes trail the last section.
        bytes: usize,
    },
    /// An enum wire tag decoded to no known variant (artifact written by
    /// a newer build, or corrupted in a way checksums cannot see —
    /// i.e. never, in practice, past the checksum check).
    UnknownTag {
        /// Which enum was being decoded.
        what: &'static str,
        /// The unrecognised tag value.
        value: u8,
    },
    /// The detector wraps a hand-built classifier outside the
    /// [`ClassicModel`] lineup, which the artifact format cannot name.
    UnsupportedModel {
        /// The classifier's self-reported name.
        name: String,
    },
    /// The artifact was trained against a different feature space than
    /// this build computes (e.g. the unified feature vector grew between
    /// versions) — serving it would silently mis-score.
    FeatureSpaceMismatch {
        /// Feature dimensionality recorded in the artifact.
        stored: usize,
        /// Feature dimensionality this build computes for that model.
        expected: usize,
    },
    /// The state sections decode to a different model than the meta
    /// section declares, so `kind()` would misreport what is served.
    KindMismatch {
        /// The model kind the meta section declares.
        declared: String,
        /// The model kind the state sections actually reconstruct.
        decoded: String,
    },
    /// A payload failed structural decoding (truncation, impossible
    /// shapes, missing sections).
    Codec(CodecError),
    /// The underlying file could not be read or written.
    Io {
        /// The offending path.
        path: String,
        /// The OS error message.
        message: String,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::BadMagic => {
                write!(f, "not a ScamDetect model artifact (bad magic)")
            }
            ArtifactError::VersionMismatch { found, supported } => write!(
                f,
                "artifact format version {found} is not supported \
                 (this build reads version {supported})"
            ),
            ArtifactError::ChecksumMismatch { section } => write!(
                f,
                "section '{section}' failed its checksum — the artifact is corrupted"
            ),
            ArtifactError::TrailingData { bytes } => {
                write!(f, "{bytes} unexpected bytes after the last section")
            }
            ArtifactError::UnknownTag { what, value } => {
                write!(f, "unknown {what} tag {value}")
            }
            ArtifactError::UnsupportedModel { name } => write!(
                f,
                "classifier '{name}' is outside the ClassicModel lineup and \
                 cannot be named in an artifact"
            ),
            ArtifactError::FeatureSpaceMismatch { stored, expected } => write!(
                f,
                "artifact was trained on a {stored}-dimensional feature space, \
                 but this build computes {expected} dimensions — retrain or use \
                 a matching build"
            ),
            ArtifactError::KindMismatch { declared, decoded } => write!(
                f,
                "meta declares model kind {declared} but the state sections \
                 decode to {decoded} — the artifact is inconsistent"
            ),
            ArtifactError::Codec(e) => write!(f, "{e}"),
            ArtifactError::Io { path, message } => {
                write!(f, "{path}: {message}")
            }
        }
    }
}

impl Error for ArtifactError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ArtifactError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for ArtifactError {
    fn from(e: CodecError) -> Self {
        ArtifactError::Codec(e)
    }
}

impl From<ArtifactError> for ScamDetectError {
    fn from(e: ArtifactError) -> Self {
        ScamDetectError::Artifact(e)
    }
}

impl From<CodecError> for ScamDetectError {
    fn from(e: CodecError) -> Self {
        ScamDetectError::Artifact(ArtifactError::Codec(e))
    }
}

/// A trained detector in portable binary form: model/feature/threshold/
/// train-options metadata plus the named, checksummed state sections.
#[derive(Debug, Clone)]
pub struct ModelArtifact {
    kind: ModelKind,
    threshold: f64,
    train_options: TrainOptions,
    /// Input feature dimensionality the model was trained on — checked
    /// against this build's feature space at parse time so a detector
    /// trained under different feature constants cannot silently
    /// mis-score.
    feature_dim: usize,
    sections: Sections,
}

/// The input dimensionality this build computes for `kind`.
fn expected_feature_dim(kind: ModelKind) -> usize {
    match kind {
        ModelKind::Classic(_, features) => match features {
            FeatureKind::OpcodeHistogram => 256,
            FeatureKind::Unified => GRAPH_FEATURE_DIM,
            FeatureKind::Combined => 256 + GRAPH_FEATURE_DIM,
        },
        ModelKind::Gnn(_) => NODE_FEATURE_DIM,
    }
}

impl ModelArtifact {
    /// Captures a trained detector with its serving metadata.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::UnsupportedModel`] when the detector wraps a
    /// hand-built classifier the format cannot name.
    pub fn from_detector(
        detector: &Detector,
        threshold: f64,
        train_options: &TrainOptions,
    ) -> Result<ModelArtifact, ScamDetectError> {
        let kind = detector.model_kind().ok_or_else(|| {
            ScamDetectError::Artifact(ArtifactError::UnsupportedModel {
                name: detector.name(),
            })
        })?;
        let mut sections = Sections::new();
        let feature_dim = match detector {
            Detector::Classic { model, .. } => {
                model.export_state(&mut sections);
                expected_feature_dim(kind)
            }
            Detector::Gnn { model } => {
                model.export_state(&mut sections);
                // Self-describing: hand-built toy-dimension GNNs save
                // their real width and are rejected at load time, where
                // the scan pipeline's feature space is fixed.
                model.config().input_dim
            }
        };
        Ok(ModelArtifact {
            kind,
            threshold,
            train_options: train_options.clone(),
            feature_dim,
            sections,
        })
    }

    /// The model architecture this artifact stores.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// The decision threshold the saving scanner used.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The training options recorded at save time (provenance; the seed
    /// also steers model re-instantiation on load).
    pub fn train_options(&self) -> &TrainOptions {
        &self.train_options
    }

    /// The input feature dimensionality the model was trained on.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Reconstructs the trained detector — no corpus, no training.
    ///
    /// # Errors
    ///
    /// Typed [`ArtifactError`]s when the state sections are missing,
    /// corrupted or inconsistent with the declared architecture.
    pub fn into_detector(&self) -> Result<Detector, ScamDetectError> {
        // After import, every model's state must be consistent with the
        // declared feature width: section checksums prove integrity, not
        // coherence, so a crafted artifact could otherwise carry (say) a
        // 3-weight logistic regression or a tree splitting on feature
        // 1000 — state that silently mis-scores or panics at scan time.
        let dim_guard = |ok: bool| {
            if ok {
                Ok(())
            } else {
                Err(ScamDetectError::Artifact(ArtifactError::Codec(
                    CodecError::Malformed {
                        context: "model state dimensionality does not match the declared \
                                  feature space",
                    },
                )))
            }
        };
        let detector = match self.kind {
            ModelKind::Classic(classic, features) => {
                let mut model = classic.instantiate(self.train_options.seed);
                model.import_state(&self.sections)?;
                dim_guard(model.state_matches_dim(self.feature_dim))?;
                Detector::Classic { model, features }
            }
            ModelKind::Gnn(kind) => {
                let mut model = GnnClassifier::new(GnnConfig::new(kind, NODE_FEATURE_DIM));
                model.import_state(&self.sections)?;
                // The imported gnn.config governs the rebuilt architecture;
                // its input width must match the feature space the scan
                // pipeline will actually feed it (parse already pinned
                // self.feature_dim == NODE_FEATURE_DIM).
                dim_guard(model.state_matches_dim(self.feature_dim))?;
                Detector::Gnn { model }
            }
        };
        // The state sections are self-describing (forest `extra` flag,
        // kNN `k`, gnn.config kind); they must agree with what the meta
        // section declares, or `kind()` would misreport what is served.
        if detector.model_kind() != Some(self.kind) {
            return Err(ArtifactError::KindMismatch {
                declared: format!("{:?}", self.kind),
                decoded: detector
                    .model_kind()
                    .map_or_else(|| detector.name(), |k| format!("{k:?}")),
            }
            .into());
        }
        Ok(detector)
    }

    /// Serializes to the version-1 wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut meta = ByteWriter::new();
        match self.kind {
            ModelKind::Classic(model, features) => {
                meta.put_u8(0);
                meta.put_u8(model.code());
                meta.put_u8(features.code());
            }
            ModelKind::Gnn(kind) => {
                meta.put_u8(1);
                meta.put_u8(kind.code());
            }
        }
        meta.put_f64(self.threshold);
        write_train_options(&self.train_options, &mut meta);
        meta.put_usize(self.feature_dim);

        let mut w = ByteWriter::new();
        w.put_bytes(&ARTIFACT_MAGIC);
        w.put_u16(ARTIFACT_VERSION);
        w.put_u32(u32::try_from(1 + self.sections.len()).expect("section count fits u32"));
        write_section(&mut w, "meta", &meta.into_bytes());
        for (name, payload) in self.sections.iter() {
            write_section(&mut w, name, payload);
        }
        w.into_bytes()
    }

    /// Parses the wire format, verifying magic, version and every
    /// section checksum.
    ///
    /// # Errors
    ///
    /// Typed [`ArtifactError`]s — never a panic — on truncation,
    /// corruption, version or tag mismatches.
    pub fn from_bytes(bytes: &[u8]) -> Result<ModelArtifact, ScamDetectError> {
        let mut r = ByteReader::new(bytes);
        let magic = r
            .take(ARTIFACT_MAGIC.len(), "artifact magic")
            .map_err(ArtifactError::from)?;
        if magic != ARTIFACT_MAGIC {
            return Err(ArtifactError::BadMagic.into());
        }
        let version = r.get_u16("artifact version").map_err(ArtifactError::from)?;
        if version != ARTIFACT_VERSION {
            return Err(ArtifactError::VersionMismatch {
                found: version,
                supported: ARTIFACT_VERSION,
            }
            .into());
        }
        let count = r.get_u32("section count").map_err(ArtifactError::from)? as usize;
        // Every section costs at least its fixed header; a count larger
        // than the remaining byte budget is corrupt.
        if count > r.remaining() {
            return Err(ArtifactError::Codec(CodecError::Malformed {
                context: "section count exceeds the artifact size",
            })
            .into());
        }
        // Single pass, single copy: the meta payload and the state
        // sections are split as they are read (model weights can be
        // megabytes; re-copying them to drop the meta entry would double
        // the load cost, which matters in the embed path).
        let mut state = Sections::new();
        let mut meta_payload: Option<&[u8]> = None;
        for _ in 0..count {
            let (name, payload) = read_section(&mut r)?;
            if name == "meta" {
                if meta_payload.replace(payload).is_some() {
                    return Err(ArtifactError::Codec(CodecError::Malformed {
                        context: "duplicate meta section",
                    })
                    .into());
                }
            } else {
                state.push(name, payload.to_vec());
            }
        }
        if !r.is_done() {
            return Err(ArtifactError::TrailingData {
                bytes: r.remaining(),
            }
            .into());
        }
        let meta_payload = meta_payload.ok_or_else(|| {
            ArtifactError::Codec(CodecError::MissingSection {
                name: "meta".to_string(),
            })
        })?;

        let mut meta = ByteReader::new(meta_payload);
        let kind = match meta.get_u8("model kind tag").map_err(ArtifactError::from)? {
            0 => {
                let model_code = meta
                    .get_u8("classic model tag")
                    .map_err(ArtifactError::from)?;
                let model =
                    ClassicModel::from_code(model_code).ok_or(ArtifactError::UnknownTag {
                        what: "classic model",
                        value: model_code,
                    })?;
                let feature_code = meta
                    .get_u8("feature kind tag")
                    .map_err(ArtifactError::from)?;
                let features =
                    FeatureKind::from_code(feature_code).ok_or(ArtifactError::UnknownTag {
                        what: "feature kind",
                        value: feature_code,
                    })?;
                ModelKind::Classic(model, features)
            }
            1 => {
                let gnn_code = meta.get_u8("gnn kind tag").map_err(ArtifactError::from)?;
                let kind = GnnKind::from_code(gnn_code).ok_or(ArtifactError::UnknownTag {
                    what: "gnn architecture",
                    value: gnn_code,
                })?;
                ModelKind::Gnn(kind)
            }
            other => {
                return Err(ArtifactError::UnknownTag {
                    what: "model kind",
                    value: other,
                }
                .into())
            }
        };
        let threshold = meta.get_f64("threshold").map_err(ArtifactError::from)?;
        if !threshold.is_finite() || !(0.0..=1.0).contains(&threshold) {
            return Err(ArtifactError::Codec(CodecError::Malformed {
                context: "threshold outside [0, 1]",
            })
            .into());
        }
        let train_options = read_train_options(&mut meta).map_err(ArtifactError::from)?;
        let feature_dim = meta
            .get_usize("meta feature dimension")
            .map_err(ArtifactError::from)?;
        if !meta.is_done() {
            return Err(ArtifactError::Codec(CodecError::Malformed {
                context: "meta: trailing bytes",
            })
            .into());
        }
        // Refuse artifacts from builds with a different feature space:
        // serving them would not crash, it would silently mis-score.
        let expected = expected_feature_dim(kind);
        if feature_dim != expected {
            return Err(ArtifactError::FeatureSpaceMismatch {
                stored: feature_dim,
                expected,
            }
            .into());
        }

        Ok(ModelArtifact {
            kind,
            threshold,
            train_options,
            feature_dim,
            sections: state,
        })
    }

    /// Writes the artifact to a file.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] on filesystem failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ScamDetectError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_bytes()).map_err(|e| {
            ScamDetectError::Artifact(ArtifactError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            })
        })
    }

    /// Reads and parses an artifact file.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] on filesystem failures, plus every
    /// [`ModelArtifact::from_bytes`] failure mode.
    pub fn load(path: impl AsRef<Path>) -> Result<ModelArtifact, ScamDetectError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| {
            ScamDetectError::Artifact(ArtifactError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            })
        })?;
        ModelArtifact::from_bytes(&bytes)
    }

    /// The named state sections (exposed for inspection/tooling).
    pub fn sections(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.sections.iter()
    }
}

/// FNV-1a over the section name *and* payload (the workspace's shared
/// fingerprint primitive, chained), so a bit flip anywhere in a section —
/// including its name — fails the integrity check.
fn section_checksum(name: &str, payload: &[u8]) -> u64 {
    use scamdetect_evm::proxy::{fnv1a_extend, FNV1A_OFFSET_BASIS};
    fnv1a_extend(fnv1a_extend(FNV1A_OFFSET_BASIS, name.as_bytes()), payload)
}

fn write_section(w: &mut ByteWriter, name: &str, payload: &[u8]) {
    w.put_str(name);
    w.put_u32(u32::try_from(payload.len()).expect("section payload fits u32"));
    w.put_u64(section_checksum(name, payload));
    w.put_bytes(payload);
}

fn read_section<'a>(r: &mut ByteReader<'a>) -> Result<(String, &'a [u8]), ArtifactError> {
    let name = r.get_str("section name")?;
    let len = r.get_u32("section length")? as usize;
    let checksum = r.get_u64("section checksum")?;
    let payload = r.take(len, "section payload")?;
    if section_checksum(&name, payload) != checksum {
        return Err(ArtifactError::ChecksumMismatch { section: name });
    }
    Ok((name, payload))
}

fn write_train_options(options: &TrainOptions, w: &mut ByteWriter) {
    w.put_u64(options.seed);
    let gnn = &options.gnn;
    w.put_usize(gnn.epochs);
    w.put_usize(gnn.batch_size);
    w.put_f32(gnn.lr);
    w.put_f32(gnn.weight_decay);
    w.put_u64(gnn.seed);
    w.put_f32(gnn.loss_target);
    w.put_bool(gnn.bucket_by_size);
    w.put_opt_usize(gnn.max_batch_nodes);
}

fn read_train_options(r: &mut ByteReader<'_>) -> Result<TrainOptions, CodecError> {
    let seed = r.get_u64("train seed")?;
    // Field order matches write_train_options; struct-literal fields
    // evaluate in written order.
    let gnn = scamdetect_gnn::BatchTrainConfig {
        epochs: r.get_usize("gnn epochs")?,
        batch_size: r.get_usize("gnn batch size")?,
        lr: r.get_f32("gnn lr")?,
        weight_decay: r.get_f32("gnn weight decay")?,
        seed: r.get_u64("gnn train seed")?,
        loss_target: r.get_f32("gnn loss target")?,
        bucket_by_size: r.get_bool("gnn bucketing flag")?,
        max_batch_nodes: r.get_opt_usize("gnn max batch nodes")?,
    };
    Ok(TrainOptions { gnn, seed })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scamdetect_dataset::{Corpus, CorpusConfig};

    fn corpus() -> Corpus {
        Corpus::generate(&CorpusConfig {
            size: 30,
            seed: 0xA27,
            ..CorpusConfig::default()
        })
    }

    fn trained(kind: ModelKind) -> Detector {
        let c = corpus();
        let idx: Vec<usize> = (0..c.len()).collect();
        let mut options = TrainOptions::default();
        options.gnn.epochs = 2;
        Detector::train(kind, &c, &idx, &options).expect("trains")
    }

    #[test]
    fn byte_round_trip_preserves_meta() {
        let det = trained(ModelKind::Classic(
            ClassicModel::LogisticRegression,
            FeatureKind::Unified,
        ));
        let options = TrainOptions {
            seed: 99,
            gnn: scamdetect_gnn::BatchTrainConfig {
                bucket_by_size: true,
                max_batch_nodes: Some(2048),
                ..Default::default()
            },
        };
        let artifact = ModelArtifact::from_detector(&det, 0.42, &options).unwrap();
        let back = ModelArtifact::from_bytes(&artifact.to_bytes()).unwrap();
        assert_eq!(back.kind(), artifact.kind());
        assert_eq!(back.threshold(), 0.42);
        assert_eq!(back.train_options().seed, 99);
        assert!(back.train_options().gnn.bucket_by_size);
        assert_eq!(back.train_options().gnn.max_batch_nodes, Some(2048));
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let det = trained(ModelKind::Classic(
            ClassicModel::NearestCentroid,
            FeatureKind::Unified,
        ));
        let artifact = ModelArtifact::from_detector(&det, 0.5, &TrainOptions::default()).unwrap();
        let bytes = artifact.to_bytes();

        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xFF;
        assert!(matches!(
            ModelArtifact::from_bytes(&wrong_magic),
            Err(ScamDetectError::Artifact(ArtifactError::BadMagic))
        ));

        let mut future_version = bytes.clone();
        future_version[8] = 0xFE;
        assert!(matches!(
            ModelArtifact::from_bytes(&future_version),
            Err(ScamDetectError::Artifact(ArtifactError::VersionMismatch {
                found: 0xFE,
                ..
            }))
        ));
    }

    #[test]
    fn every_truncation_point_errors_without_panic() {
        let det = trained(ModelKind::Classic(
            ClassicModel::DecisionTree,
            FeatureKind::Unified,
        ));
        let artifact = ModelArtifact::from_detector(&det, 0.5, &TrainOptions::default()).unwrap();
        let bytes = artifact.to_bytes();
        for k in 0..bytes.len() {
            assert!(
                ModelArtifact::from_bytes(&bytes[..k]).is_err(),
                "prefix of {k} bytes parsed as a complete artifact"
            );
        }
    }

    #[test]
    fn payload_corruption_fails_the_section_checksum() {
        let det = trained(ModelKind::Classic(
            ClassicModel::GaussianNb,
            FeatureKind::Unified,
        ));
        let artifact = ModelArtifact::from_detector(&det, 0.5, &TrainOptions::default()).unwrap();
        let bytes = artifact.to_bytes();
        // Flip a byte in the dead middle — guaranteed to be inside some
        // section's payload or header; either way the parse must fail.
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x40;
        assert!(ModelArtifact::from_bytes(&corrupt).is_err());
    }

    #[test]
    fn foreign_feature_space_rejected_at_parse() {
        // A hand-built toy-width GNN saves its real input dimension;
        // parsing must refuse it because this build's scan pipeline
        // feeds NODE_FEATURE_DIM-wide features.
        let toy = GnnClassifier::new(GnnConfig::new(GnnKind::Gcn, 6));
        let det = Detector::Gnn { model: toy };
        let artifact = ModelArtifact::from_detector(&det, 0.5, &TrainOptions::default()).unwrap();
        assert_eq!(artifact.feature_dim(), 6);
        let err = ModelArtifact::from_bytes(&artifact.to_bytes()).unwrap_err();
        assert!(matches!(
            err,
            ScamDetectError::Artifact(ArtifactError::FeatureSpaceMismatch {
                stored: 6,
                expected: NODE_FEATURE_DIM,
            })
        ));
    }

    #[test]
    fn meta_kind_must_match_decoded_state() {
        // Meta declaring extra_trees over a random_forest state section
        // must fail loudly instead of misreporting what is served.
        let det = trained(ModelKind::Classic(
            ClassicModel::RandomForest,
            FeatureKind::Unified,
        ));
        let honest = ModelArtifact::from_detector(&det, 0.5, &TrainOptions::default()).unwrap();
        let lying = ModelArtifact {
            kind: ModelKind::Classic(ClassicModel::ExtraTrees, FeatureKind::Unified),
            ..honest
        };
        let err = lying.into_detector().unwrap_err();
        assert!(matches!(
            err,
            ScamDetectError::Artifact(ArtifactError::KindMismatch { .. })
        ));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let det = trained(ModelKind::Classic(ClassicModel::Knn1, FeatureKind::Unified));
        let artifact = ModelArtifact::from_detector(&det, 0.5, &TrainOptions::default()).unwrap();
        let mut bytes = artifact.to_bytes();
        bytes.extend_from_slice(&[0xAB; 7]);
        assert!(matches!(
            ModelArtifact::from_bytes(&bytes),
            Err(ScamDetectError::Artifact(ArtifactError::TrailingData {
                bytes: 7
            }))
        ));
    }
}
