//! The CI fleet-smoke gate: two real replicas behind a real router on
//! loopback.
//!
//! What it pins, end to end over the wire:
//!
//! * routed `/scan` reproduces the committed golden fixture's score
//!   bits through the router — routing adds zero numeric drift;
//! * routed `/batch` splits by ownership and merges slot-exact;
//! * a full push → verify → canary → compare → promote rollout lands a
//!   new model on every replica with bumped epochs;
//! * killing one replica rebalances the ring and the survivor serves
//!   every key;
//! * a fleet with zero reachable replicas answers 503 with
//!   `Retry-After` (checked on the raw socket);
//! * shutdown is clean and the router port closes.

use scamdetect::{ClassicModel, FeatureKind, ModelKind, ScannerBuilder};
use scamdetect_dataset::{Corpus, CorpusConfig};
use scamdetect_fleet::proxy::{spawn_router, RouterConfig};
use scamdetect_fleet::rollout::{run_rollout, RolloutPlan};
use scamdetect_serve::client::{http_call, HttpClient};
use scamdetect_serve::daemon::{spawn, RunningDaemon, ServeConfig};
use scamdetect_serve::json::Json;
use scamdetect_serve::wire::encode_hex;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// The committed fixture (same constants as `serve_smoke.rs` and the
/// library-level golden test).
const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/golden-logreg-unified-v1.scam"
);
const GOLDEN_SEED: u64 = 0x601D;
const GOLDEN_SCORE_BITS: [u64; 4] = [
    0x3FE5B791C7F65C58,
    0x3FEBD01B2729C1DE,
    0x3F7B05F5FE2E742D,
    0x3F849BF9437DA553,
];

fn golden_probe_corpus() -> Corpus {
    Corpus::generate(&CorpusConfig {
        size: 4,
        seed: GOLDEN_SEED ^ 1,
        ..CorpusConfig::default()
    })
}

fn hex_body(bytes: &[u8]) -> String {
    format!(r#"{{"bytecode": "{}"}}"#, encode_hex(bytes))
}

fn spawn_replica(dir: &std::path::Path) -> RunningDaemon {
    let mut config = ServeConfig::default();
    config.http.addr = "127.0.0.1:0".to_string();
    // Enough workers that the router's idle pooled connections (which
    // park a worker each in their keep-alive read) never starve health
    // probes on a single-core CI runner.
    config.http.workers = 4;
    config.registry.models_dir = dir.to_path_buf();
    spawn(config).expect("replica spawns")
}

/// A different (freshly trained) artifact for the rollout candidate.
fn candidate_artifact_bytes() -> Vec<u8> {
    let corpus = Corpus::generate(&CorpusConfig {
        size: 30,
        seed: 77,
        ..CorpusConfig::default()
    });
    ScannerBuilder::new()
        .model(ModelKind::Classic(
            ClassicModel::LogisticRegression,
            FeatureKind::Unified,
        ))
        .train(&corpus)
        .expect("trains")
        .to_artifact()
        .expect("artifact")
        .to_bytes()
}

fn fleet_snapshot(router: SocketAddr) -> Json {
    let reply = http_call(router, "GET", "/fleet", None).expect("fleet");
    assert_eq!(reply.status, 200);
    Json::parse(&reply.body).expect("fleet JSON")
}

fn wait_for_up_count(router: SocketAddr, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snapshot = fleet_snapshot(router);
        let up = snapshot.get("replicas_up").unwrap().as_f64().unwrap() as u64;
        if up == want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "fleet never reached {want} up replicas: {snapshot:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn router_routes_golden_bits_rolls_out_and_survives_replica_loss() {
    // ── fleet up: 2 replicas, each its own models dir ───────────────
    let base = std::env::temp_dir().join(format!("scamdetect-fleet-smoke-{}", std::process::id()));
    let golden_bytes = std::fs::read(GOLDEN_PATH).expect("golden fixture is committed");
    let dirs = [base.join("models-a"), base.join("models-b")];
    for dir in &dirs {
        std::fs::create_dir_all(dir).expect("models dir");
        std::fs::write(dir.join("golden-v1.scam"), &golden_bytes).expect("stage artifact");
    }
    let replica_a = spawn_replica(&dirs[0]);
    let replica_b = spawn_replica(&dirs[1]);
    let replica_addrs = vec![replica_a.addr, replica_b.addr];

    let router = spawn_router(RouterConfig {
        replicas: replica_addrs.clone(),
        probe_interval: Duration::from_millis(100),
        probe_timeout: Duration::from_millis(150),
        ..RouterConfig::default()
    })
    .expect("router spawns");
    let front = router.addr;

    // ── routed /scan: golden bits through the router, bit-exact ─────
    let probes = golden_probe_corpus();
    let mut client = HttpClient::connect(front).expect("client connects");
    for (contract, &expected_bits) in probes.contracts().iter().zip(&GOLDEN_SCORE_BITS) {
        let reply = client
            .request("POST", "/scan", Some(&hex_body(&contract.bytes)))
            .expect("routed scan");
        assert_eq!(reply.status, 200, "{}", reply.body);
        let verdict = Json::parse(&reply.body).expect("scan JSON");
        assert_eq!(
            verdict.get("score").unwrap().as_f64().unwrap().to_bits(),
            expected_bits,
            "routed score drifted from the committed golden bits"
        );
        assert_eq!(verdict.get("model").unwrap().as_str(), Some("golden-v1"));
    }

    // ── routed /batch: ownership split + slot-exact merge ───────────
    let batch_body = {
        let slots: Vec<String> = probes
            .contracts()
            .iter()
            .map(|c| format!(r#"{{"bytecode": "{}"}}"#, encode_hex(&c.bytes)))
            .chain(std::iter::once(r#"{"bytecode": "zz"}"#.to_string()))
            .collect();
        format!(r#"{{"requests": [{}]}}"#, slots.join(", "))
    };
    let reply = client
        .request("POST", "/batch", Some(&batch_body))
        .expect("routed batch");
    assert_eq!(reply.status, 200, "{}", reply.body);
    let batch = Json::parse(&reply.body).expect("batch JSON");
    let results = batch.get("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), 5);
    for (slot, &expected_bits) in GOLDEN_SCORE_BITS.iter().enumerate() {
        assert_eq!(
            results[slot]
                .get("score")
                .unwrap()
                .as_f64()
                .unwrap()
                .to_bits(),
            expected_bits,
            "batch slot {slot} drifted through the router"
        );
    }
    assert!(
        results[4].get("error").is_some(),
        "the malformed slot degrades alone: {}",
        reply.body
    );

    // ── topology: full ring, fair-ish shares ────────────────────────
    let snapshot = fleet_snapshot(front);
    assert_eq!(snapshot.get("replicas_total").unwrap().as_f64(), Some(2.0));
    assert_eq!(snapshot.get("replicas_up").unwrap().as_f64(), Some(2.0));
    let replicas = snapshot.get("replicas").unwrap().as_array().unwrap();
    let total_slices: f64 = replicas
        .iter()
        .map(|r| r.get("slices").unwrap().as_f64().unwrap())
        .sum();
    assert_eq!(
        total_slices,
        snapshot.get("slices").unwrap().as_f64().unwrap(),
        "every slice has exactly one owner"
    );

    // ── staged rollout: push → verify → canary → compare → promote ──
    let candidate = candidate_artifact_bytes();
    let report = run_rollout(&RolloutPlan {
        replicas: replica_addrs.clone(),
        model_id: "fleet-v2".to_string(),
        artifact: candidate,
        canary: 0,
        probes: probes.contracts().iter().map(|c| c.bytes.clone()).collect(),
        timeout: Duration::from_secs(5),
        shadow: None,
    })
    .unwrap_or_else(|e| panic!("rollout failed: {e}\nlog:\n{}", e.log.join("\n")));
    assert_eq!(report.model_id, "fleet-v2");
    assert_eq!(report.fleet.len(), 2);
    for (addr, model, epoch) in &report.fleet {
        assert_eq!(model, "fleet-v2", "replica {addr} not promoted");
        assert!(*epoch >= 1, "replica {addr} epoch did not bump");
    }
    // Routed traffic now reports the promoted model.
    let reply = client
        .request(
            "POST",
            "/scan",
            Some(&hex_body(&probes.contracts()[0].bytes)),
        )
        .expect("post-rollout scan");
    let verdict = Json::parse(&reply.body).expect("JSON");
    assert_eq!(verdict.get("model").unwrap().as_str(), Some("fleet-v2"));

    // ── replica loss: kill B, ring rebalances, survivor serves all ──
    replica_b.stop().expect("replica B stops");
    wait_for_up_count(front, 1);
    for contract in probes.contracts() {
        let reply = client
            .request("POST", "/scan", Some(&hex_body(&contract.bytes)))
            .expect("post-loss scan");
        assert_eq!(
            reply.status, 200,
            "a key lost its owner after rebalance: {}",
            reply.body
        );
    }
    let snapshot = fleet_snapshot(front);
    assert_eq!(snapshot.get("replicas_up").unwrap().as_f64(), Some(1.0));
    assert!(
        snapshot.get("rebalances").unwrap().as_f64().unwrap() >= 1.0,
        "the ring must have rebalanced"
    );

    // Router metrics page is well-formed and counts the traffic.
    let metrics = http_call(front, "GET", "/metrics", None).expect("router metrics");
    assert!(metrics
        .body
        .contains("scamdetect_fleet_scan_requests_total"));
    assert!(metrics.body.contains("scamdetect_fleet_replicas_up 1"));

    // ── clean shutdown: router then survivor; port closes ───────────
    router.stop().expect("router thread joins");
    assert!(
        std::net::TcpStream::connect_timeout(&front, Duration::from_millis(300)).is_err(),
        "the router port must be closed after shutdown"
    );
    replica_a.stop().expect("replica A stops");
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn dead_fleet_degrades_to_503_with_retry_after() {
    // A port that refuses connections: bind, snapshot, drop.
    let dead_addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("binds");
        listener.local_addr().expect("addr")
    };
    let router = spawn_router(RouterConfig {
        replicas: vec![dead_addr],
        probe_interval: Duration::from_millis(100),
        probe_timeout: Duration::from_millis(100),
        retry_after_s: 2,
        ..RouterConfig::default()
    })
    .expect("router spawns");

    // Raw socket: the header must actually be on the wire.
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(router.addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let body = r#"{"bytecode": "6001600155"}"#;
    write!(
        stream,
        "POST /scan HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("writes");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("reads");
    assert!(
        raw.starts_with("HTTP/1.1 503"),
        "a dead fleet must answer 503, got: {raw}"
    );
    assert!(
        raw.contains("Retry-After: 2"),
        "503 must carry Retry-After, got: {raw}"
    );

    router.stop().expect("router stops");
}
