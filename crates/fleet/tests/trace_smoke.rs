//! The CI trace-smoke gate: one real replica behind a real router on
//! loopback, a traced scan through the router, and the cross-process
//! span timeline read back over the wire.
//!
//! What it pins, end to end:
//!
//! * every routed response echoes `x-trace-id`; a client-sent id is
//!   honored verbatim and forces capture on both processes;
//! * the router's kept trace carries `route` and `forward` spans, and
//!   the forward note's `replica=<addr>` names the replica that
//!   actually served the request — the stitching contract
//!   `scamdetect-cli trace` relies on;
//! * the replica's kept trace (same id) covers the serve stages
//!   (queue wait, parse, handler, the scan pipeline, write) with
//!   consistent nesting — every parent resolves and children sit
//!   inside their parents' windows;
//! * each process's stage spans fit inside its trace total, and both
//!   totals fit inside the wire-observed latency (plus scheduling
//!   slack);
//! * `/trace/recent` lists the trace, an unknown id answers 404, and a
//!   tracing-disabled daemon answers 409.
//!
//! The transport is env-driven (`SCAMDETECT_TRANSPORT`), so CI re-runs
//! this same body under the epoll backend.

use scamdetect::trace::TraceId;
use scamdetect_fleet::proxy::{spawn_router, RouterConfig};
use scamdetect_serve::client::{http_call, HttpClient};
use scamdetect_serve::daemon::{spawn, RunningDaemon, ServeConfig};
use scamdetect_serve::json::Json;
use scamdetect_serve::wire::encode_hex;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Same committed fixture as `fleet_smoke.rs`.
const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/golden-logreg-unified-v1.scam"
);

/// A decoded span row from a `/trace/<id>` reply.
#[derive(Debug, Clone)]
struct Span {
    id: u64,
    parent: Option<u64>,
    stage: String,
    start_us: u64,
    duration_us: u64,
    note: Option<String>,
}

fn spawn_replica(dir: &std::path::Path, trace_sample: u32) -> RunningDaemon {
    std::fs::create_dir_all(dir).expect("models dir");
    let golden = std::fs::read(GOLDEN_PATH).expect("golden fixture is committed");
    std::fs::write(dir.join("golden-v1.scam"), &golden).expect("stage artifact");
    let mut config = ServeConfig::default();
    config.http.addr = "127.0.0.1:0".to_string();
    config.http.workers = 4;
    config.http.trace_sample = trace_sample;
    config.registry.models_dir = dir.to_path_buf();
    spawn(config).expect("replica spawns")
}

fn scan_body() -> String {
    // Any valid contract works; reuse the corpus generator for a real
    // EVM body so the full lift → score pipeline runs.
    let corpus = scamdetect_dataset::Corpus::generate(&scamdetect_dataset::CorpusConfig {
        size: 1,
        seed: 0x7247,
        ..scamdetect_dataset::CorpusConfig::default()
    });
    format!(
        r#"{{"bytecode": "{}"}}"#,
        encode_hex(&corpus.contracts()[0].bytes)
    )
}

/// Fetches `/trace/<id>` until it lands in the ring (the trace is
/// pushed *after* the response write, so the client can win the race).
fn fetch_trace(addr: SocketAddr, id: &str) -> Json {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let reply = http_call(addr, "GET", &format!("/trace/{id}"), None).expect("trace fetch");
        if reply.status == 200 {
            return Json::parse(&reply.body).expect("trace JSON");
        }
        assert!(
            Instant::now() < deadline,
            "{addr} never kept trace {id}: last answer {} {}",
            reply.status,
            reply.body
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn spans_of(trace: &Json) -> Vec<Span> {
    trace
        .get("spans")
        .and_then(Json::as_array)
        .expect("spans array")
        .iter()
        .map(|s| Span {
            id: s.get("id").and_then(Json::as_f64).expect("span id") as u64,
            parent: s.get("parent").and_then(Json::as_f64).map(|p| p as u64),
            stage: s
                .get("stage")
                .and_then(Json::as_str)
                .expect("span stage")
                .to_string(),
            start_us: s.get("start_us").and_then(Json::as_f64).expect("start") as u64,
            duration_us: s.get("duration_us").and_then(Json::as_f64).expect("dur") as u64,
            note: s.get("note").and_then(Json::as_str).map(str::to_string),
        })
        .collect()
}

/// Every parent id resolves, and every child's window sits inside its
/// parent's — the wire-level mirror of `Trace::nesting_consistent`.
fn assert_nesting_consistent(spans: &[Span], who: &str) {
    for span in spans {
        let Some(parent_id) = span.parent else {
            continue;
        };
        let parent = spans
            .iter()
            .find(|s| s.id == parent_id)
            .unwrap_or_else(|| panic!("{who}: span {} orphaned (parent {parent_id})", span.id));
        assert!(
            span.start_us >= parent.start_us,
            "{who}: span {} ({}) starts before its parent {} ({})",
            span.id,
            span.stage,
            parent.id,
            parent.stage
        );
        assert!(
            span.start_us + span.duration_us <= parent.start_us + parent.duration_us,
            "{who}: span {} ({}) ends after its parent {} ({})",
            span.id,
            span.stage,
            parent.id,
            parent.stage
        );
    }
}

fn stage_set(spans: &[Span]) -> Vec<&str> {
    spans.iter().map(|s| s.stage.as_str()).collect()
}

#[test]
fn traced_scan_through_router_stitches_a_cross_process_timeline() {
    let base = std::env::temp_dir().join(format!("scamdetect-trace-smoke-{}", std::process::id()));
    let replica = spawn_replica(&base.join("models"), 16);
    let router = spawn_router(RouterConfig {
        replicas: vec![replica.addr],
        probe_interval: Duration::from_millis(100),
        probe_timeout: Duration::from_millis(150),
        ..RouterConfig::default()
    })
    .expect("router spawns");
    let front = router.addr;

    // A client-chosen id: forced capture on the router, and the router
    // forwards it so capture is forced on the replica too.
    let forced = TraceId::parse("c0ffee").expect("valid hex id");
    let forced_hex = forced.to_hex();
    let body = scan_body();
    let mut client = HttpClient::connect(front).expect("client connects");
    let sent = Instant::now();
    let reply = client
        .request_raw(
            "POST",
            "/scan",
            body.as_bytes(),
            &[("x-trace-id", &forced_hex)],
        )
        .expect("routed scan");
    let wire_us = sent.elapsed().as_micros() as u64;
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert_eq!(
        reply.header("x-trace-id"),
        Some(forced_hex.as_str()),
        "routed response must echo the client's trace id"
    );

    // ── the router's half of the timeline ───────────────────────────
    let router_trace = fetch_trace(front, &forced_hex);
    assert_eq!(
        router_trace.get("trace_id").and_then(Json::as_str),
        Some(forced_hex.as_str())
    );
    assert_eq!(
        router_trace.get("forced").and_then(Json::as_bool),
        Some(true)
    );
    let router_spans = spans_of(&router_trace);
    assert_nesting_consistent(&router_spans, "router");
    let stages = stage_set(&router_spans);
    for want in ["request", "route", "forward"] {
        assert!(
            stages.contains(&want),
            "router trace lacks a {want} span: {stages:?}"
        );
    }
    let forward = router_spans
        .iter()
        .find(|s| s.stage == "forward")
        .expect("forward span");
    let note = forward
        .note
        .as_deref()
        .expect("forward span carries a note");
    let named_replica: SocketAddr = note
        .split_whitespace()
        .find_map(|t| t.strip_prefix("replica="))
        .expect("forward note names the replica")
        .parse()
        .expect("replica address parses");
    assert_eq!(
        named_replica, replica.addr,
        "forward span must name the replica that served the request"
    );
    assert!(
        note.contains("status=200"),
        "forward note must carry the replica's status: {note}"
    );

    // ── the replica's half, found via the forward note ──────────────
    let replica_trace = fetch_trace(named_replica, &forced_hex);
    assert_eq!(
        replica_trace.get("forced").and_then(Json::as_bool),
        Some(true),
        "forwarded x-trace-id must force capture on the replica"
    );
    let replica_spans = spans_of(&replica_trace);
    assert_nesting_consistent(&replica_spans, "replica");
    let stages = stage_set(&replica_spans);
    for want in ["request", "parse", "handler", "write"] {
        assert!(
            stages.contains(&want),
            "replica trace lacks a {want} span: {stages:?}"
        );
    }
    // The scan pipeline inside the handler: prep + cache lookup always
    // run; score runs unless the verdict cache already had the answer
    // (a single cold request always scores).
    for want in ["prep", "cache_lookup"] {
        assert!(
            stages.contains(&want),
            "replica trace lacks a {want} span: {stages:?}"
        );
    }

    // ── durations: spans fit their process, processes fit the wire ──
    let total = |t: &Json| t.get("total_us").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    let (router_total, replica_total) = (total(&router_trace), total(&replica_trace));
    for (who, spans, process_total) in [
        ("router", &router_spans, router_total),
        ("replica", &replica_spans, replica_total),
    ] {
        for span in spans.iter() {
            assert!(
                span.start_us + span.duration_us <= process_total,
                "{who}: span {} ({}) overruns the trace total {process_total}µs",
                span.id,
                span.stage
            );
        }
    }
    // Generous slack: the client clock starts before the router's
    // accept timestamp and scheduling noise rides on top.
    const SLACK_US: u64 = 50_000;
    assert!(
        router_total <= wire_us + SLACK_US,
        "router total {router_total}µs exceeds wire latency {wire_us}µs (+slack)"
    );
    assert!(
        replica_total <= router_total + SLACK_US,
        "replica total {replica_total}µs exceeds the router's {router_total}µs (+slack)"
    );

    // ── listing + error paths ───────────────────────────────────────
    let recent = http_call(front, "GET", "/trace/recent", None).expect("recent");
    assert_eq!(recent.status, 200);
    let recent = Json::parse(&recent.body).expect("recent JSON");
    assert!(
        recent
            .get("traces")
            .and_then(Json::as_array)
            .expect("traces array")
            .iter()
            .any(|t| t.get("trace_id").and_then(Json::as_str) == Some(forced_hex.as_str())),
        "/trace/recent must list the kept trace"
    );
    let missing = http_call(front, "GET", "/trace/ffffffffffffffff", None).expect("missing fetch");
    assert_eq!(missing.status, 404, "{}", missing.body);
    let bad = http_call(front, "GET", "/trace/not-hex", None).expect("bad fetch");
    assert_eq!(bad.status, 400, "{}", bad.body);

    router.stop().expect("clean router shutdown");
    replica.stop().expect("clean replica shutdown");
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn tracing_disabled_daemon_answers_409_and_samples_nothing() {
    let base =
        std::env::temp_dir().join(format!("scamdetect-trace-smoke-off-{}", std::process::id()));
    let replica = spawn_replica(&base.join("models"), 0);

    let reply = http_call(replica.addr, "GET", "/trace/recent", None).expect("recent");
    assert_eq!(reply.status, 409, "{}", reply.body);
    let reply = http_call(replica.addr, "GET", "/trace/abc123", None).expect("by id");
    assert_eq!(reply.status, 409, "{}", reply.body);

    // Scans still work, and no x-trace-id materializes out of nowhere.
    let body = scan_body();
    let mut client = HttpClient::connect(replica.addr).expect("client connects");
    let reply = client
        .request("POST", "/scan", Some(&body))
        .expect("untraced scan");
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert_eq!(reply.header("x-trace-id"), None);

    replica.stop().expect("clean replica shutdown");
    std::fs::remove_dir_all(&base).ok();
}
