//! The two properties the fleet stands on, checked over random fleets:
//! near-fair key distribution at 64 vnodes, and removal remapping only
//! the removed replica's share.

use proptest::prelude::*;
use scamdetect_fleet::ring::{HashRing, DEFAULT_VNODES};

/// Distinct replica ids shaped like real fleet members.
fn replica_ids(n: usize, salt: u64) -> Vec<String> {
    (0..n).map(|i| format!("10.0.{salt}.{i}:7878")).collect()
}

proptest! {
    /// At 64 vnodes, every replica's share of a large key sample stays
    /// within ±25% of fair. 16384 keys over ≤8 replicas leaves ≥2048
    /// expected keys per replica — enough sample mass that a violation
    /// means skew in the ring, not noise in the draw.
    #[test]
    fn keys_distribute_within_25_percent_of_fair(
        n in 2usize..=8,
        salt in 0u64..200,
        key_seed in any::<u64>(),
    ) {
        let ids = replica_ids(n, salt);
        let ring = HashRing::build(&ids, DEFAULT_VNODES);
        const KEYS: usize = 16_384;
        let mut counts = std::collections::HashMap::<String, usize>::new();
        for i in 0..KEYS {
            // Keys modelled as arbitrary 64-bit skeleton fingerprints.
            let key = key_seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let owner = ring.owner_of(key).expect("non-empty ring").to_string();
            *counts.entry(owner).or_default() += 1;
        }
        let fair = KEYS as f64 / n as f64;
        for id in &ids {
            let got = counts.get(id).copied().unwrap_or(0) as f64;
            let deviation = (got - fair).abs() / fair;
            prop_assert!(
                deviation <= 0.25,
                "replica {} owns {} of {} keys ({:.1}% from fair share {:.0})",
                id, got, KEYS, deviation * 100.0, fair
            );
        }
    }

    /// Removing one replica moves ONLY the keys it owned: every key a
    /// survivor owned before is owned by the same survivor after, and
    /// every orphaned key lands on some survivor.
    #[test]
    fn removal_remaps_only_the_removed_share(
        n in 2usize..=8,
        salt in 200u64..400,
        victim_index in any::<u64>(),
        key_seed in any::<u64>(),
    ) {
        let ids = replica_ids(n, salt);
        let victim = ids[(victim_index % n as u64) as usize].clone();
        let survivors: Vec<String> =
            ids.iter().filter(|id| **id != victim).cloned().collect();
        let before = HashRing::build(&ids, DEFAULT_VNODES);
        let after = HashRing::build(&survivors, DEFAULT_VNODES);
        for i in 0..4096u64 {
            let key = key_seed ^ i.wrapping_mul(0xD6E8_FEB8_6659_FD93);
            let owner_before = before.owner_of(key).expect("non-empty");
            let owner_after = after.owner_of(key).expect("non-empty");
            if owner_before == victim {
                prop_assert!(
                    owner_after != victim,
                    "orphaned key {key:#x} still maps to the removed replica"
                );
            } else {
                prop_assert_eq!(
                    owner_before, owner_after,
                    "key {:#x} moved between survivors", key
                );
            }
        }
    }
}
