//! Prometheus text-format conformance over the real scrape surfaces:
//! a full daemon `/metrics` (tracing on, traffic driven so histograms
//! and exemplars are populated) and a fleet router `/metrics`.
//!
//! What it pins:
//!
//! * every sample's family has exactly one `# HELP` and one `# TYPE`
//!   declaration, and no family is declared twice;
//! * no duplicate series (same name + same label set twice);
//! * every value parses as a finite float;
//! * every histogram family's buckets are cumulative, `+Inf`-terminated,
//!   and agree with the family's `_count`;
//! * the full `LIFECYCLE_COUNTERS` registry is present bare (label-free)
//!   on the daemon scrape, and its fleet roll-up twin on the router
//!   scrape.

use scamdetect_fleet::proxy::{spawn_router, RouterConfig};
use scamdetect_serve::client::{http_call, HttpClient};
use scamdetect_serve::daemon::{spawn, RunningDaemon, ServeConfig};
use scamdetect_serve::wire::encode_hex;
use std::collections::{HashMap, HashSet};
use std::time::Duration;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/golden-logreg-unified-v1.scam"
);

fn spawn_replica(dir: &std::path::Path) -> RunningDaemon {
    std::fs::create_dir_all(dir).expect("models dir");
    let golden = std::fs::read(GOLDEN_PATH).expect("golden fixture is committed");
    std::fs::write(dir.join("golden-v1.scam"), &golden).expect("stage artifact");
    let mut config = ServeConfig::default();
    config.http.addr = "127.0.0.1:0".to_string();
    config.http.workers = 4;
    // Sample everything: the conformance pass should see populated
    // trace gauges, stage histograms and exemplars, not an empty ring.
    config.http.trace_sample = 1;
    config.registry.models_dir = dir.to_path_buf();
    spawn(config).expect("replica spawns")
}

fn bodies() -> Vec<String> {
    let corpus = scamdetect_dataset::Corpus::generate(&scamdetect_dataset::CorpusConfig {
        size: 4,
        seed: 0x7247,
        ..scamdetect_dataset::CorpusConfig::default()
    });
    corpus
        .contracts()
        .iter()
        .map(|c| format!(r#"{{"bytecode": "{}"}}"#, encode_hex(&c.bytes)))
        .collect()
}

/// One parsed sample line: family-resolved name, raw series key, value.
struct Sample {
    name: String,
    labels: String,
    value: f64,
}

/// Parses a scrape and enforces the text-format invariants shared by
/// both surfaces; returns samples keyed for surface-specific checks.
fn check_conformance(text: &str, who: &str) -> Vec<Sample> {
    let mut help: HashSet<String> = HashSet::new();
    let mut types: HashMap<String, String> = HashMap::new();
    let mut samples: Vec<Sample> = Vec::new();
    let mut seen_series: HashSet<String> = HashSet::new();

    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().expect("HELP names a family");
            assert!(
                help.insert(name.to_string()),
                "{who}: duplicate # HELP for {name}"
            );
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE names a family");
            let kind = parts.next().expect("TYPE declares a kind");
            assert!(
                matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ),
                "{who}: {name} declares unknown type {kind}"
            );
            assert!(
                types.insert(name.to_string(), kind.to_string()).is_none(),
                "{who}: duplicate # TYPE for {name}"
            );
        } else if let Some(stripped) = line.strip_prefix('#') {
            panic!("{who}: malformed comment line: #{stripped}");
        } else {
            let (series, value) = line.rsplit_once(' ').expect("sample has a value");
            let value: f64 = value.trim().parse().unwrap_or_else(|e| {
                panic!("{who}: unparseable value on '{line}': {e}");
            });
            assert!(value.is_finite(), "{who}: non-finite value on '{line}'");
            assert!(
                seen_series.insert(series.to_string()),
                "{who}: duplicate series {series}"
            );
            let (name, labels) = match series.split_once('{') {
                Some((name, rest)) => {
                    assert!(rest.ends_with('}'), "{who}: unterminated labels: {series}");
                    (name.to_string(), rest.trim_end_matches('}').to_string())
                }
                None => (series.to_string(), String::new()),
            };
            samples.push(Sample {
                name,
                labels,
                value,
            });
        }
    }

    // Every sample's family is declared. Histogram samples resolve to
    // their family by stripping the _bucket/_sum/_count suffix.
    let family_of = |name: &str| -> String {
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(stem) = name.strip_suffix(suffix) {
                if types.get(stem).is_some_and(|k| k == "histogram") {
                    return stem.to_string();
                }
            }
        }
        name.to_string()
    };
    for sample in &samples {
        let family = family_of(&sample.name);
        assert!(
            types.contains_key(&family),
            "{who}: series {} has no # TYPE",
            sample.name
        );
        assert!(
            help.contains(&family),
            "{who}: series {} has no # HELP",
            sample.name
        );
    }

    // Histogram shape: per label set (minus `le`), buckets cumulative,
    // +Inf-terminated, and the +Inf bucket equals the family _count.
    for (family, kind) in &types {
        if kind != "histogram" {
            continue;
        }
        let bucket_name = format!("{family}_bucket");
        // Group buckets by their label set with `le` removed,
        // preserving scrape order (which is bound order within a set).
        let mut groups: Vec<(String, Vec<(String, f64)>)> = Vec::new();
        for sample in samples.iter().filter(|s| s.name == bucket_name) {
            let mut le = None;
            let rest: Vec<&str> = sample
                .labels
                .split(',')
                .filter(|part| match part.strip_prefix("le=\"") {
                    Some(v) => {
                        le = Some(v.trim_end_matches('"').to_string());
                        false
                    }
                    None => true,
                })
                .collect();
            let le = le.unwrap_or_else(|| panic!("{who}: {bucket_name} sample without le"));
            let key = rest.join(",");
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, buckets)) => buckets.push((le, sample.value)),
                None => groups.push((key, vec![(le, sample.value)])),
            }
        }
        assert!(
            !groups.is_empty(),
            "{who}: histogram {family} rendered no buckets"
        );
        for (key, buckets) in &groups {
            let (last_le, inf_count) = buckets.last().expect("nonempty");
            assert_eq!(
                last_le, "+Inf",
                "{who}: {family}{{{key}}} buckets not +Inf-terminated"
            );
            let mut previous = f64::NEG_INFINITY;
            let mut previous_bound = f64::NEG_INFINITY;
            for (le, count) in buckets {
                assert!(
                    *count >= previous,
                    "{who}: {family}{{{key}}} buckets not cumulative at le={le}"
                );
                let bound = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse()
                        .unwrap_or_else(|e| panic!("{who}: {family}{{{key}}} bad le '{le}': {e}"))
                };
                assert!(
                    bound > previous_bound,
                    "{who}: {family}{{{key}}} le bounds not increasing at {le}"
                );
                previous = *count;
                previous_bound = bound;
            }
            let count_series = samples
                .iter()
                .find(|s| s.name == format!("{family}_count") && s.labels == *key)
                .unwrap_or_else(|| panic!("{who}: {family}{{{key}}} has no _count"));
            assert_eq!(
                *inf_count, count_series.value,
                "{who}: {family}{{{key}}} +Inf bucket disagrees with _count"
            );
            assert!(
                samples
                    .iter()
                    .any(|s| s.name == format!("{family}_sum") && s.labels == *key),
                "{who}: {family}{{{key}}} has no _sum"
            );
        }
    }
    samples
}

#[test]
fn daemon_and_router_scrapes_conform_and_cover_the_lifecycle_registry() {
    let base = std::env::temp_dir().join(format!(
        "scamdetect-metrics-conformance-{}",
        std::process::id()
    ));
    let replica = spawn_replica(&base.join("models"));
    let router = spawn_router(RouterConfig {
        replicas: vec![replica.addr],
        probe_interval: Duration::from_millis(100),
        probe_timeout: Duration::from_millis(150),
        ..RouterConfig::default()
    })
    .expect("router spawns");

    // Populate: direct scans (some repeated for cache hits), a batch,
    // and a routed scan so the router's forward path has counters too.
    let bodies = bodies();
    let mut client = HttpClient::connect(replica.addr).expect("client connects");
    for body in bodies.iter().chain(bodies.iter().take(2)) {
        let reply = client.request("POST", "/scan", Some(body)).expect("scan");
        assert_eq!(reply.status, 200, "{}", reply.body);
    }
    let batch = format!(
        r#"{{"requests": [{}]}}"#,
        bodies
            .iter()
            .map(|b| b.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let reply = client
        .request("POST", "/batch", Some(&batch))
        .expect("batch");
    assert_eq!(reply.status, 200, "{}", reply.body);
    let reply = http_call(router.addr, "POST", "/scan", Some(&bodies[0])).expect("routed scan");
    assert_eq!(reply.status, 200, "{}", reply.body);

    // ── daemon scrape ───────────────────────────────────────────────
    let daemon_text = http_call(replica.addr, "GET", "/metrics", None)
        .expect("daemon scrape")
        .body;
    let daemon_samples = check_conformance(&daemon_text, "daemon");
    for def in scamdetect_serve::LIFECYCLE_COUNTERS {
        assert!(
            daemon_samples
                .iter()
                .any(|s| s.name == def.name && s.labels.is_empty()),
            "daemon scrape lacks the bare lifecycle counter {}",
            def.name
        );
    }
    // The PR-10 families are present and populated.
    let series_with_data = |name: &str| {
        daemon_samples
            .iter()
            .any(|s| s.name == name && s.value > 0.0)
    };
    assert!(series_with_data("scamdetect_request_duration_us_count"));
    assert!(series_with_data("scamdetect_stage_duration_us_count"));
    assert!(series_with_data("scamdetect_traces_kept_total"));
    assert!(
        daemon_samples
            .iter()
            .any(|s| s.name == "scamdetect_slowest_trace_us" && s.labels.contains("trace_id=")),
        "slowest-sample exemplars must carry a trace_id label"
    );
    assert!(
        daemon_samples
            .iter()
            .any(|s| s.name == "scamdetect_build_info"
                && s.labels.contains("version=")
                && s.value == 1.0),
        "build info gauge missing"
    );

    // ── router scrape: the fleet roll-up twin of every counter ──────
    let router_text = http_call(router.addr, "GET", "/metrics", None)
        .expect("router scrape")
        .body;
    let router_samples = check_conformance(&router_text, "router");
    for def in scamdetect_serve::LIFECYCLE_COUNTERS {
        let rolled = format!(
            "scamdetect_fleet_{}",
            def.name.trim_start_matches("scamdetect_")
        );
        assert!(
            router_samples.iter().any(|s| s.name == rolled),
            "router scrape lacks the lifecycle roll-up {rolled}"
        );
    }

    router.stop().expect("clean router shutdown");
    replica.stop().expect("clean replica shutdown");
    std::fs::remove_dir_all(&base).ok();
}
