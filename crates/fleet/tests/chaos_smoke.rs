//! The CI chaos gate: a real router over a healthy replica and a
//! replica wrapped in a [`FaultProxy`] injecting resets, stalls,
//! latency, truncated bodies, and bit corruption on a **seeded
//! deterministic schedule**.
//!
//! The invariant, asserted on every single response: the client gets
//! either the **bit-exact golden score** or a **well-formed 408/429/503
//! with `Retry-After`** — never a hang, a panic, or torn JSON. Chaos
//! may cost latency and shed load; it must never cost correctness or
//! honesty.

use scamdetect_dataset::{Corpus, CorpusConfig};
use scamdetect_fleet::breaker::BreakerConfig;
use scamdetect_fleet::chaos::{FaultKind, FaultProxy, FaultSchedule};
use scamdetect_fleet::proxy::{spawn_router, RouterConfig};
use scamdetect_serve::daemon::{spawn, RunningDaemon, ServeConfig};
use scamdetect_serve::json::Json;
use scamdetect_serve::wire::encode_hex;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Same committed fixture and constants as `fleet_smoke.rs`.
const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/golden-logreg-unified-v1.scam"
);
const GOLDEN_SEED: u64 = 0x601D;
const GOLDEN_SCORE_BITS: [u64; 4] = [
    0x3FE5B791C7F65C58,
    0x3FEBD01B2729C1DE,
    0x3F7B05F5FE2E742D,
    0x3F849BF9437DA553,
];

fn golden_probe_corpus() -> Corpus {
    Corpus::generate(&CorpusConfig {
        size: 4,
        seed: GOLDEN_SEED ^ 1,
        ..CorpusConfig::default()
    })
}

fn spawn_replica(dir: &std::path::Path) -> RunningDaemon {
    std::fs::create_dir_all(dir).expect("models dir");
    let golden = std::fs::read(GOLDEN_PATH).expect("golden fixture is committed");
    std::fs::write(dir.join("golden-v1.scam"), &golden).expect("stage artifact");
    let mut config = ServeConfig::default();
    config.http.addr = "127.0.0.1:0".to_string();
    config.http.workers = 4;
    config.registry.models_dir = dir.to_path_buf();
    spawn(config).expect("replica spawns")
}

/// One raw-socket request/response cycle — raw because the invariant
/// includes *headers* (`Retry-After`), which the bundled client does
/// not surface. A 10s read timeout converts any hang into a loud test
/// failure instead of a wedged CI job.
fn raw_request(
    addr: SocketAddr,
    path: &str,
    extra_headers: &[(&str, String)],
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connects to router");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut request = format!(
        "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        request.push_str(&format!("{name}: {value}\r\n"));
    }
    request.push_str("\r\n");
    request.push_str(body);
    stream.write_all(request.as_bytes()).expect("writes");

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable status line: {status_line:?}"));
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        if line == "\r\n" || line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.trim_end().split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().expect("content length");
            }
            headers.push((name, value));
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (
        status,
        headers,
        String::from_utf8(body).expect("the router never emits invalid utf-8"),
    )
}

fn header<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// The chaos invariant for one `/scan` reply. Returns whether it was a
/// golden 200 (so callers can count successes).
fn assert_scan_sound(
    status: u16,
    headers: &[(String, String)],
    body: &str,
    expected_bits: u64,
) -> bool {
    let parsed = Json::parse(body)
        .unwrap_or_else(|e| panic!("response body must always be JSON ({e}): {body:?}"));
    match status {
        200 => {
            let bits = parsed
                .get("score")
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("200 scan with no score: {body}"))
                .to_bits();
            assert_eq!(
                bits, expected_bits,
                "a 200 under chaos must still be the exact golden bits"
            );
            true
        }
        408 | 429 | 503 => {
            assert!(
                header(headers, "retry-after").is_some(),
                "backpressure status {status} must carry Retry-After: {headers:?}"
            );
            false
        }
        other => panic!("status {other} violates the chaos invariant: {body}"),
    }
}

#[test]
fn mixed_fault_storm_yields_golden_bits_or_honest_backpressure() {
    let base = std::env::temp_dir().join(format!("scamdetect-chaos-storm-{}", std::process::id()));
    let healthy = spawn_replica(&base.join("models-a"));
    let faulty = spawn_replica(&base.join("models-b"));
    // Replica B is only reachable through the fault proxy: every
    // connection the router (or its prober) opens draws a fault from
    // the seeded schedule.
    let proxy = FaultProxy::spawn(
        faulty.addr,
        FaultSchedule::weighted(
            0xD15EA5E,
            vec![
                (3, FaultKind::Pass),
                (2, FaultKind::Reset),
                (1, FaultKind::Stall),
                (1, FaultKind::Latency(Duration::from_millis(150))),
                (2, FaultKind::Truncate(40)),
                (2, FaultKind::Corrupt),
            ],
        ),
    )
    .expect("fault proxy spawns");

    let router = spawn_router(RouterConfig {
        replicas: vec![healthy.addr, proxy.addr],
        probe_interval: Duration::from_millis(100),
        probe_timeout: Duration::from_millis(150),
        forward_timeout: Duration::from_millis(400),
        breaker: BreakerConfig {
            cooldown: Duration::from_millis(300),
            ..BreakerConfig::default()
        },
        ..RouterConfig::default()
    })
    .expect("router spawns");
    let front = router.addr;

    // The storm: every probe, several rounds, each with an explicit
    // deadline budget. Whatever the schedule throws, every reply obeys
    // the invariant — and with a healthy replica in the fleet, chaos on
    // one replica must not blank the whole service.
    let probes = golden_probe_corpus();
    let deadline_ms = 1200u64.to_string();
    let mut golden_replies = 0usize;
    let mut backpressure_replies = 0usize;
    for _round in 0..4 {
        for (contract, &expected_bits) in probes.contracts().iter().zip(&GOLDEN_SCORE_BITS) {
            let body = format!(r#"{{"bytecode": "{}"}}"#, encode_hex(&contract.bytes));
            let started = Instant::now();
            let (status, headers, reply_body) = raw_request(
                front,
                "/scan",
                &[("x-deadline-ms", deadline_ms.clone())],
                &body,
            );
            let elapsed = started.elapsed();
            assert!(
                elapsed < Duration::from_secs(5),
                "a budgeted request must resolve near its deadline, took {elapsed:?}"
            );
            if assert_scan_sound(status, &headers, &reply_body, expected_bits) {
                golden_replies += 1;
            } else {
                backpressure_replies += 1;
            }
        }
    }
    assert!(
        golden_replies >= 8,
        "with one healthy replica most requests must still land golden \
         ({golden_replies} golden / {backpressure_replies} backpressure)"
    );

    // The new observability surface renders and is well-formed.
    let (status, _, metrics) = raw_request(front, "/metrics", &[], "");
    // (POST to /metrics is a 405; re-read over GET via the raw socket.)
    assert_eq!(status, 405, "metrics is GET-only");
    let metrics = {
        let mut stream = TcpStream::connect(front).expect("connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .expect("writes");
        let mut raw = String::new();
        let mut reader = BufReader::new(stream);
        reader.read_to_string(&mut raw).expect("reads");
        drop(metrics);
        raw
    };
    for series in [
        "scamdetect_fleet_flaps_total",
        "scamdetect_fleet_deadline_exhausted_total",
        "scamdetect_fleet_breaker_open",
        "scamdetect_fleet_breaker_half_open",
    ] {
        assert!(metrics.contains(series), "missing {series} in:\n{metrics}");
    }

    router.stop().expect("router stops");
    proxy.stop();
    faulty.stop().expect("faulty replica stops");
    healthy.stop().expect("healthy replica stops");
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn stalled_fleet_exhausts_the_deadline_budget_honestly() {
    let base = std::env::temp_dir().join(format!("scamdetect-chaos-stall-{}", std::process::id()));
    let replica = spawn_replica(&base.join("models"));
    // The ONLY replica stalls every connection: no amount of retrying
    // helps, so the router must burn the budget and then say so.
    let proxy = FaultProxy::spawn(replica.addr, FaultSchedule::always(FaultKind::Stall))
        .expect("fault proxy spawns");
    let router = spawn_router(RouterConfig {
        replicas: vec![proxy.addr],
        probe_interval: Duration::from_millis(100),
        probe_timeout: Duration::from_millis(100),
        forward_timeout: Duration::from_millis(400),
        retry_after_s: 3,
        // A breaker trip would eject the replica and answer through the
        // `unavailable` path; keep it lenient so this test pins the
        // *deadline* path specifically.
        breaker: BreakerConfig {
            consecutive_failures: 1000,
            min_samples: 1 << 20,
            ..BreakerConfig::default()
        },
        ..RouterConfig::default()
    })
    .expect("router spawns");

    let probes = golden_probe_corpus();
    let body = format!(
        r#"{{"bytecode": "{}"}}"#,
        encode_hex(&probes.contracts()[0].bytes)
    );
    let started = Instant::now();
    let (status, headers, reply_body) = raw_request(
        router.addr,
        "/scan",
        &[("x-deadline-ms", "600".to_string())],
        &body,
    );
    let elapsed = started.elapsed();

    assert_eq!(
        status, 503,
        "a fully stalled fleet must degrade to 503: {reply_body}"
    );
    assert_eq!(header(&headers, "retry-after"), Some("3"), "{headers:?}");
    Json::parse(&reply_body).expect("the 503 body is well-formed JSON");
    assert!(
        elapsed >= Duration::from_millis(400),
        "the router should have tried within the budget, took {elapsed:?}"
    );
    assert!(
        elapsed < Duration::from_secs(4),
        "retries must never stretch far past the client's 600ms budget: {elapsed:?}"
    );
    assert!(
        router
            .metrics
            .deadline_exhausted
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1,
        "the deadline exhaustion must be counted"
    );

    router.stop().expect("router stops");
    proxy.stop();
    replica.stop().expect("replica stops");
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn replica_kill_mid_batch_stays_slot_exact() {
    let base = std::env::temp_dir().join(format!("scamdetect-chaos-kill-{}", std::process::id()));
    let replica_a = spawn_replica(&base.join("models-a"));
    let replica_b = spawn_replica(&base.join("models-b"));
    let router = spawn_router(RouterConfig {
        replicas: vec![replica_a.addr, replica_b.addr],
        probe_interval: Duration::from_millis(100),
        probe_timeout: Duration::from_millis(150),
        ..RouterConfig::default()
    })
    .expect("router spawns");

    let probes = golden_probe_corpus();
    let batch_body = {
        let slots: Vec<String> = probes
            .contracts()
            .iter()
            .map(|c| format!(r#"{{"bytecode": "{}"}}"#, encode_hex(&c.bytes)))
            .collect();
        format!(r#"{{"requests": [{}]}}"#, slots.join(", "))
    };
    let assert_batch_sound = |(status, headers, body): (u16, Vec<(String, String)>, String)| {
        let parsed = Json::parse(&body)
            .unwrap_or_else(|e| panic!("batch body must always be JSON ({e}): {body:?}"));
        match status {
            200 => {
                let results = parsed
                    .get("results")
                    .and_then(Json::as_array)
                    .unwrap_or_else(|| panic!("200 batch with no results: {body}"));
                assert_eq!(results.len(), GOLDEN_SCORE_BITS.len());
                for (slot, &expected_bits) in GOLDEN_SCORE_BITS.iter().enumerate() {
                    assert_eq!(
                        results[slot]
                            .get("score")
                            .and_then(Json::as_f64)
                            .unwrap_or_else(|| panic!("slot {slot} lost its score: {body}"))
                            .to_bits(),
                        expected_bits,
                        "batch slot {slot} drifted under replica loss"
                    );
                }
            }
            503 => assert!(
                header(&headers, "retry-after").is_some(),
                "503 must carry Retry-After: {headers:?}"
            ),
            other => panic!("batch status {other} violates the chaos invariant: {body}"),
        }
    };

    // Healthy fleet first: the batch must be slot-exact.
    assert_batch_sound(raw_request(router.addr, "/batch", &[], &batch_body));

    // Kill replica B and immediately re-send, before the prober can
    // possibly have noticed: the router discovers the death through the
    // request path itself, re-pends B's slots, and still merges a
    // slot-exact batch (or degrades to an honest 503).
    replica_b.stop().expect("replica B stops");
    assert_batch_sound(raw_request(router.addr, "/batch", &[], &batch_body));
    // And again after the dust settles — the survivor owns everything.
    std::thread::sleep(Duration::from_millis(400));
    assert_batch_sound(raw_request(router.addr, "/batch", &[], &batch_body));

    router.stop().expect("router stops");
    replica_a.stop().expect("replica A stops");
    std::fs::remove_dir_all(&base).ok();
}
