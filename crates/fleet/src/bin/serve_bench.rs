//! Loopback load generator for the serving path: one replica direct
//! (the PR-5 trajectory), a 2-replica fleet behind the router
//! (`--router`, the PR-6 trajectory), one replica driven past
//! saturation to measure graceful degradation (`--shed`, the PR-7
//! trajectory), both transports compared on an open-connections
//! axis (`--connections`, the PR-8 trajectory), the same replica
//! measured with and without a shadow candidate mirroring every scan
//! (`--shadow`, the PR-9 trajectory), or the same replica measured
//! with request tracing off and on at the default 1-in-16 sampling
//! (`--trace`, the PR-10 trajectory).
//!
//! ```text
//! cargo run --release -p scamdetect-fleet --bin serve_bench \
//!     [-- --out BENCH_PR5.json --clients 4 --requests 800]
//! cargo run --release -p scamdetect-fleet --bin serve_bench \
//!     -- --router [--out BENCH_PR6.json --clients 4 --requests 800]
//! cargo run --release -p scamdetect-fleet --bin serve_bench \
//!     -- --shed [--out BENCH_PR7.json --requests 800]
//! cargo run --release -p scamdetect-fleet --bin serve_bench \
//!     -- --connections [--out BENCH_PR8.json --idle-cap 5000]
//! cargo run --release -p scamdetect-fleet --bin serve_bench \
//!     -- --shadow [--out BENCH_PR9.json --clients 4 --requests 800]
//! cargo run --release -p scamdetect-fleet --bin serve_bench \
//!     -- --trace [--out BENCH_PR10.json --clients 4 --requests 800]
//! ```
//!
//! Trace mode drives the duplicate-heavy mix against a replica with
//! tracing disabled, then against one sampling 1-in-16 requests into
//! the span ring, and gates on the observability tax: traces must
//! actually be kept and readable back (`/trace/recent` → `/trace/<id>`
//! round-trips with spans), and the tracing-on p99 must stay within
//! 1.1× the tracing-off p99 (floored at 500µs against runner noise).
//!
//! Shadow mode drives the duplicate-heavy mix twice against one
//! replica — shadow off, then with a second candidate model scoring
//! every mirrored scan off the response path — and gates on the
//! off-path claim: a probe's champion score must be bit-identical in
//! both phases, the candidate must actually have scored samples, and
//! the shadow-on p99 must stay within 1.5× the shadow-off p99
//! (floored at 500µs against shared-runner noise).
//!
//! Connections mode runs the same req/s measurement against a
//! threaded-transport daemon and an epoll-transport daemon, then ramps
//! **held idle keep-alive connections** on each (a connection counts as
//! held only after it has served a request — merely TCP-established
//! doesn't count) until a probe fails or the cap is reached. The gate
//! is the tentpole's claim: the epoll backend's ceiling must be ≥ 10×
//! the threaded backend's, and the epoll daemon must keep serving
//! (≥ 30% of its unloaded req/s) with the whole herd parked.
//!
//! Shed mode floods a deliberately small daemon (2 workers, shed
//! watermark 2) with close-per-request connections at ~2× saturation
//! and gates on *honest degradation*: some load must actually be shed
//! as `429 + Retry-After`, every reply must be a 200 verdict or a 429
//! (nothing torn, nothing hung), and the p99 of **accepted** requests
//! must stay within 5× the unloaded close-per-request p99 (floored at
//! 500µs to keep shared-runner noise from failing an honest daemon) —
//! shedding exists precisely so accepted traffic keeps its latency.
//!
//! Trains a small logistic-regression artifact, spawns the daemon(s)
//! in-process on ephemeral loopback ports, then drives them with N
//! client threads over keep-alive connections. The request mix mirrors
//! production bulk scanning: a duplicate-heavy corpus (ERC-1167-style
//! proxy clones included), so both the cold lift path and the verdict
//! cache are exercised.
//!
//! Router mode measures the **same request mix twice** — direct to one
//! replica, then through the router — and reports the router-added
//! p50/p99 latency. The gate is **correctness**, not speed: every
//! response must be a 200 with a parseable verdict, and in router mode
//! a probe request's score must be bit-identical via both paths —
//! latency numbers from a shared CI runner are a trajectory, not a
//! contract.

use scamdetect::{ClassicModel, FeatureKind, ModelKind, ScannerBuilder};
use scamdetect_dataset::{Corpus, CorpusConfig};
use scamdetect_fleet::proxy::{spawn_router, RouterConfig};
use scamdetect_serve::client::HttpClient;
use scamdetect_serve::daemon::{spawn, RunningDaemon, ServeConfig};
use scamdetect_serve::json::Json;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Instant;

struct Options {
    out_path: Option<String>,
    clients: usize,
    requests: usize,
    router: bool,
    shed: bool,
    connections: bool,
    shadow: bool,
    trace: bool,
    idle_cap: usize,
}

fn parse_args() -> Result<Options, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut options = Options {
        out_path: None,
        clients: 4,
        requests: 800,
        router: false,
        shed: false,
        connections: false,
        shadow: false,
        trace: false,
        idle_cap: 5000,
    };
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{} needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--out" => options.out_path = Some(value(&mut i)?),
            "--router" => options.router = true,
            "--shed" => options.shed = true,
            "--connections" => options.connections = true,
            "--shadow" => options.shadow = true,
            "--trace" => options.trace = true,
            "--clients" => {
                options.clients = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--requests" => {
                options.requests = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?
            }
            "--idle-cap" => {
                options.idle_cap = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--idle-cap: {e}"))?
            }
            other => {
                return Err(format!(
                    "unknown option '{other}' (usage: serve_bench \
                     [--router | --shed | --connections | --shadow | --trace] [--out <path>] \
                     [--clients <n>] [--requests <n>] [--idle-cap <n>])"
                ))
            }
        }
        i += 1;
    }
    if options.clients == 0 || options.requests == 0 || options.idle_cap == 0 {
        return Err("--clients, --requests and --idle-cap must be at least 1".to_string());
    }
    if usize::from(options.router)
        + usize::from(options.shed)
        + usize::from(options.connections)
        + usize::from(options.shadow)
        + usize::from(options.trace)
        > 1
    {
        return Err(
            "--router, --shed, --connections, --shadow and --trace are separate modes; pick one"
                .to_string(),
        );
    }
    Ok(options)
}

/// Drives `requests` POST /scan calls against `addr` over `clients`
/// keep-alive connections. Returns (sorted latencies µs, failures,
/// elapsed µs).
fn drive(
    addr: SocketAddr,
    bodies: &[String],
    clients: usize,
    requests: usize,
) -> (Vec<u64>, usize, u128) {
    let per_client = requests.div_ceil(clients);
    let started = Instant::now();
    let mut latencies_us: Vec<u64> = Vec::with_capacity(requests);
    let mut failures = 0usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client_idx| {
                scope.spawn(move || {
                    let mut client = HttpClient::connect(addr).expect("client connects");
                    let mut local = Vec::with_capacity(per_client);
                    let mut failed = 0usize;
                    for i in 0..per_client {
                        let body = &bodies[(client_idx + i * 7) % bodies.len()];
                        let sent = Instant::now();
                        match client.request("POST", "/scan", Some(body)) {
                            Ok(reply) if reply.status == 200 => {
                                local.push(sent.elapsed().as_micros() as u64);
                            }
                            Ok(reply) => {
                                eprintln!("serve-bench: status {}: {}", reply.status, reply.body);
                                failed += 1;
                            }
                            Err(e) => {
                                eprintln!("serve-bench: request error: {e}");
                                failed += 1;
                            }
                        }
                    }
                    (local, failed)
                })
            })
            .collect();
        for handle in handles {
            let (local, failed) = handle.join().expect("client thread");
            latencies_us.extend(local);
            failures += failed;
        }
    });
    let elapsed = started.elapsed().as_micros();
    latencies_us.sort_unstable();
    (latencies_us, failures, elapsed)
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        0
    } else {
        sorted[((sorted.len() - 1) as f64 * q) as usize]
    }
}

fn warm(addr: SocketAddr, bodies: &[String]) {
    let mut client = HttpClient::connect(addr).expect("warm-up connects");
    for body in bodies {
        let reply = client
            .request("POST", "/scan", Some(body))
            .expect("warm-up scan");
        assert_eq!(reply.status, 200, "warm-up scan failed: {}", reply.body);
    }
}

fn score_bits(addr: SocketAddr, body: &str) -> Option<u64> {
    let reply = scamdetect_serve::client::http_call(addr, "POST", "/scan", Some(body)).ok()?;
    if reply.status != 200 {
        return None;
    }
    Json::parse(&reply.body)
        .ok()?
        .get("score")
        .and_then(Json::as_f64)
        .map(f64::to_bits)
}

fn spawn_replica(models_dir: &std::path::Path) -> RunningDaemon {
    let mut config = ServeConfig::default();
    config.http.addr = "127.0.0.1:0".to_string();
    // Workers must exceed the router's idle pooled connections plus the
    // direct bench clients: a pooled keep-alive connection parks a
    // worker in its idle read, and on a small box the default
    // (one-per-core) pool would starve health probes into marking the
    // replica down mid-bench.
    config.http.workers = 8;
    config.registry.models_dir = models_dir.to_path_buf();
    spawn(config).expect("daemon spawns")
}

/// One close-per-request scan over a raw socket: connect, send, read
/// to EOF, classify. Returns (status, whether a `Retry-After` header
/// was present, total latency µs).
fn one_shot_scan(addr: SocketAddr, body: &str) -> std::io::Result<(u16, bool, u64)> {
    use std::io::{Read as _, Write as _};
    let started = Instant::now();
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(10)))?;
    let request = format!(
        "POST /scan HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    // A shed connection may FIN before the whole request lands; the 429
    // is still in the socket, so a write error is not a verdict — read.
    let _ = stream.write_all(request.as_bytes());
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("unparseable reply: {raw:?}")))?;
    let has_retry_after = raw.to_ascii_lowercase().contains("retry-after:");
    Ok((
        status,
        has_retry_after,
        started.elapsed().as_micros() as u64,
    ))
}

/// The `--shed` mode: flood one deliberately small daemon at ~2×
/// saturation with close-per-request connections and gate on honest,
/// bounded degradation.
#[allow(clippy::too_many_lines)]
fn run_shed(options: &Options) -> ExitCode {
    const WORKERS: usize = 2;
    const WATERMARK: usize = 2;
    // p99 floor: below this, the 5× multiplier is all shared-runner
    // noise and no daemon could honestly fail or pass it.
    const P99_FLOOR_US: u64 = 500;
    let out_path = options
        .out_path
        .clone()
        .unwrap_or_else(|| "BENCH_PR7.json".to_string());

    eprintln!("serve-bench: training the serving artifact…");
    let base_dir =
        std::env::temp_dir().join(format!("scamdetect-shed-bench-{}", std::process::id()));
    let models_dir = base_dir.join("models");
    if let Err(e) = std::fs::create_dir_all(&models_dir) {
        eprintln!("serve-bench: cannot create {}: {e}", models_dir.display());
        return ExitCode::FAILURE;
    }
    let train_corpus = Corpus::generate(&CorpusConfig {
        size: 80,
        seed: 11,
        ..CorpusConfig::default()
    });
    ScannerBuilder::new()
        .model(ModelKind::Classic(
            ClassicModel::LogisticRegression,
            FeatureKind::Unified,
        ))
        .train(&train_corpus)
        .expect("trains")
        .save(models_dir.join("bench-v1.scam"))
        .expect("saves artifact");

    // A deliberately small daemon: the point is to saturate it.
    let mut config = ServeConfig::default();
    config.http.addr = "127.0.0.1:0".to_string();
    config.http.workers = WORKERS;
    config.http.shed_watermark = WATERMARK;
    config.http.retry_after_s = 1;
    config.registry.models_dir = models_dir;
    let daemon = spawn(config).expect("daemon spawns");
    let addr = daemon.addr;
    eprintln!("serve-bench: replica on http://{addr} ({WORKERS} workers, watermark {WATERMARK})");

    let scan_corpus = Corpus::generate(&CorpusConfig {
        size: 48,
        seed: 12,
        proxy_duplicates: 16,
        ..CorpusConfig::default()
    });
    let bodies: Vec<String> = scan_corpus
        .contracts()
        .iter()
        .map(|c| {
            format!(
                r#"{{"bytecode": "{}"}}"#,
                scamdetect_serve::wire::encode_hex(&c.bytes)
            )
        })
        .collect();
    warm(addr, &bodies);

    // Calibration: unloaded close-per-request latency, one sequential
    // client — the baseline the loaded p99 is gated against.
    let calibration_requests = options.requests.clamp(1, 200);
    eprintln!("serve-bench: calibrating unloaded latency ({calibration_requests} requests)…");
    let mut unloaded: Vec<u64> = Vec::with_capacity(calibration_requests);
    for i in 0..calibration_requests {
        match one_shot_scan(addr, &bodies[i % bodies.len()]) {
            Ok((200, _, us)) => unloaded.push(us),
            Ok((status, _, _)) => {
                eprintln!("serve-bench: unloaded request answered {status}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("serve-bench: unloaded request failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    unloaded.sort_unstable();
    let unloaded_p50 = percentile(&unloaded, 0.50);
    let unloaded_p99 = percentile(&unloaded, 0.99);
    eprintln!("serve-bench: unloaded p50 {unloaded_p50}µs, p99 {unloaded_p99}µs");

    // The flood: 2× the daemon's total capacity (workers + queue
    // slots) in concurrent close-per-request clients.
    let flood_clients = 2 * (WORKERS + WATERMARK);
    let per_client = options.requests.div_ceil(flood_clients);
    eprintln!(
        "serve-bench: flooding {} requests over {flood_clients} close-per-request clients…",
        options.requests
    );
    let started = Instant::now();
    let mut accepted: Vec<u64> = Vec::new();
    let mut shed = 0usize;
    let mut shed_without_retry_after = 0usize;
    let mut failures = 0usize;
    std::thread::scope(|scope| {
        let bodies = &bodies;
        let handles: Vec<_> = (0..flood_clients)
            .map(|client_idx| {
                scope.spawn(move || {
                    let mut local_accepted = Vec::with_capacity(per_client);
                    let mut local_shed = 0usize;
                    let mut local_bad_shed = 0usize;
                    let mut local_failures = 0usize;
                    for i in 0..per_client {
                        match one_shot_scan(addr, &bodies[(client_idx + i * 7) % bodies.len()]) {
                            Ok((200, _, us)) => local_accepted.push(us),
                            Ok((429, retry_after, _)) => {
                                local_shed += 1;
                                if !retry_after {
                                    local_bad_shed += 1;
                                }
                            }
                            Ok((status, _, _)) => {
                                eprintln!("serve-bench: unexpected status {status} under flood");
                                local_failures += 1;
                            }
                            Err(e) => {
                                eprintln!("serve-bench: flood request failed: {e}");
                                local_failures += 1;
                            }
                        }
                    }
                    (local_accepted, local_shed, local_bad_shed, local_failures)
                })
            })
            .collect();
        for handle in handles {
            let (local_accepted, local_shed, local_bad_shed, local_failures) =
                handle.join().expect("flood thread");
            accepted.extend(local_accepted);
            shed += local_shed;
            shed_without_retry_after += local_bad_shed;
            failures += local_failures;
        }
    });
    let flood_elapsed = started.elapsed().as_micros();
    accepted.sort_unstable();
    let accepted_p50 = percentile(&accepted, 0.50);
    let accepted_p99 = percentile(&accepted, 0.99);
    let total = accepted.len() + shed + failures;
    let shed_rate = shed as f64 / (total as f64).max(1.0);

    // The daemon's own ledger must agree that shedding happened.
    let metrics_text = scamdetect_serve::client::http_call(addr, "GET", "/metrics", None)
        .expect("metrics scrape")
        .body;
    let shed_counted = metrics_text
        .lines()
        .find_map(|l| l.strip_prefix("scamdetect_requests_shed_total "))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    daemon.stop().expect("clean daemon shutdown");

    let p99_budget = 5 * unloaded_p99.max(P99_FLOOR_US);
    let latency_held = accepted_p99 <= p99_budget;
    let gate_pass = failures == 0
        && shed_without_retry_after == 0
        && shed > 0
        && shed_counted > 0
        && !accepted.is_empty()
        && latency_held;
    eprintln!(
        "serve-bench: flood {} requests → {} accepted (p50 {accepted_p50}µs, p99 {accepted_p99}µs, \
         budget {p99_budget}µs), {shed} shed ({:.0}% shed rate), {failures} failures",
        total,
        accepted.len(),
        shed_rate * 100.0
    );

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"scamdetect-shed-bench/v1\",\n");
    let _ = writeln!(
        json,
        "  \"unloaded\": {{\"requests\": {calibration_requests}, \"p50_us\": {unloaded_p50}, \
         \"p99_us\": {unloaded_p99}}},"
    );
    let _ = writeln!(
        json,
        "  \"overload\": {{\"clients\": {flood_clients}, \"requests\": {total}, \
         \"elapsed_us\": {flood_elapsed}, \"accepted\": {}, \"shed\": {shed}, \
         \"failures\": {failures}, \"accepted_p50_us\": {accepted_p50}, \
         \"accepted_p99_us\": {accepted_p99}, \"shed_rate\": {shed_rate:.4}, \
         \"server_shed_total\": {shed_counted}}},",
        accepted.len()
    );
    let _ = writeln!(
        json,
        "  \"gate\": {{\"pass\": {gate_pass}, \"accepted_p99_budget_us\": {p99_budget}, \
         \"rule\": \"at 2x saturation every reply is a 200 verdict or a 429 with Retry-After, \
         load is actually shed (client- and server-side counts agree it happened), and the p99 \
         of accepted requests stays within 5x the unloaded p99 (floored at {P99_FLOOR_US}us)\"}}"
    );
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("serve-bench: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("serve-bench: wrote {out_path}");
    std::fs::remove_dir_all(&base_dir).ok();
    if !gate_pass {
        eprintln!(
            "serve-bench: GATE FAILED ({failures} failures, {shed} shed \
             ({shed_without_retry_after} without Retry-After, server counted {shed_counted}), \
             accepted p99 {accepted_p99}µs vs budget {p99_budget}µs)"
        );
        return ExitCode::FAILURE;
    }
    eprintln!("serve-bench: gate passed");
    ExitCode::SUCCESS
}

/// One held idle connection: connect, serve one `/healthz` round trip
/// (proving the server actually owns this connection), then park it.
/// `None` means the backend could not take on one more connection —
/// the ceiling.
fn probe_idle(addr: SocketAddr) -> Option<std::net::TcpStream> {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(2)))
        .ok()?;
    let _ = stream.set_nodelay(true);
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        .ok()?;
    let mut raw = Vec::new();
    let mut byte = [0u8; 1];
    while !raw.ends_with(b"\r\n\r\n") {
        match stream.read(&mut byte) {
            Ok(1) => raw.push(byte[0]),
            _ => return None,
        }
    }
    let head = String::from_utf8_lossy(&raw).into_owned();
    if !head.starts_with("HTTP/1.1 200") {
        return None;
    }
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())?;
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).ok()?;
    Some(stream)
}

/// Live thread count of this process (0 where `/proc` is absent).
fn process_threads() -> u64 {
    #[cfg(target_os = "linux")]
    {
        std::fs::read_to_string("/proc/self/status")
            .ok()
            .and_then(|s| {
                s.lines()
                    .find_map(|l| l.strip_prefix("Threads:"))
                    .and_then(|v| v.trim().parse().ok())
            })
            .unwrap_or(0)
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// Per-backend numbers from the `--connections` mode.
struct BackendRun {
    req_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    failures: usize,
    idle_held: usize,
    threads_at_peak: u64,
    /// req/s re-measured with the full idle herd parked (epoll only:
    /// under threads the herd pins every worker, which is the point).
    loaded_req_per_sec: Option<f64>,
}

/// The `--connections` mode: same req/s measurement on both
/// transports, then ramp held idle keep-alive connections to each
/// backend's ceiling.
#[allow(clippy::too_many_lines)]
fn run_connections(options: &Options) -> ExitCode {
    use scamdetect_serve::http::TransportKind;
    const WORKERS: usize = 4;
    let out_path = options
        .out_path
        .clone()
        .unwrap_or_else(|| "BENCH_PR8.json".to_string());

    eprintln!("serve-bench: training the serving artifact…");
    let base_dir =
        std::env::temp_dir().join(format!("scamdetect-conn-bench-{}", std::process::id()));
    let models_dir = base_dir.join("models");
    if let Err(e) = std::fs::create_dir_all(&models_dir) {
        eprintln!("serve-bench: cannot create {}: {e}", models_dir.display());
        return ExitCode::FAILURE;
    }
    let train_corpus = Corpus::generate(&CorpusConfig {
        size: 80,
        seed: 11,
        ..CorpusConfig::default()
    });
    ScannerBuilder::new()
        .model(ModelKind::Classic(
            ClassicModel::LogisticRegression,
            FeatureKind::Unified,
        ))
        .train(&train_corpus)
        .expect("trains")
        .save(models_dir.join("bench-v1.scam"))
        .expect("saves artifact");
    let scan_corpus = Corpus::generate(&CorpusConfig {
        size: 48,
        seed: 12,
        proxy_duplicates: 16,
        ..CorpusConfig::default()
    });
    let bodies: Vec<String> = scan_corpus
        .contracts()
        .iter()
        .map(|c| {
            format!(
                r#"{{"bytecode": "{}"}}"#,
                scamdetect_serve::wire::encode_hex(&c.bytes)
            )
        })
        .collect();

    let mut runs: Vec<(TransportKind, BackendRun)> = Vec::new();
    for kind in [TransportKind::Threaded, TransportKind::Epoll] {
        let mut config = ServeConfig::default();
        config.http.addr = "127.0.0.1:0".to_string();
        config.http.transport = kind;
        config.http.workers = WORKERS;
        // The herd must park idle for the whole measurement.
        config.http.read_timeout = std::time::Duration::from_secs(120);
        config.http.request_deadline = std::time::Duration::from_secs(120);
        config.registry.models_dir = models_dir.clone();
        let daemon = match spawn(config) {
            Ok(daemon) => daemon,
            Err(e) => {
                eprintln!("serve-bench: cannot spawn {kind} daemon: {e}");
                return ExitCode::FAILURE;
            }
        };
        let addr = daemon.addr;
        eprintln!("serve-bench: {kind} replica on http://{addr} ({WORKERS} workers)");
        warm(addr, &bodies);

        // Phase 1: throughput with no idle herd — the "equal req/s"
        // baseline both backends are compared at.
        let (lat, failures, elapsed) = drive(addr, &bodies, options.clients, options.requests);
        let req_per_sec = lat.len() as f64 / (elapsed as f64 / 1e6).max(1e-9);
        let (p50_us, p99_us) = (percentile(&lat, 0.50), percentile(&lat, 0.99));
        eprintln!(
            "serve-bench: {kind} baseline {} requests → {req_per_sec:.0} req/s \
             (p50 {p50_us}µs, p99 {p99_us}µs)",
            lat.len()
        );

        // Phase 2: ramp held idle connections to the ceiling. Each
        // probe must be *served* before it counts.
        let mut herd = Vec::new();
        while herd.len() < options.idle_cap {
            match probe_idle(addr) {
                Some(stream) => herd.push(stream),
                None => break,
            }
        }
        let idle_held = herd.len();
        let threads_at_peak = process_threads();
        eprintln!(
            "serve-bench: {kind} holds {idle_held} idle connections \
             (cap {}, process threads {threads_at_peak})",
            options.idle_cap
        );

        // Phase 3: throughput with the herd still parked. Only
        // meaningful where the herd leaves workers free — under the
        // threaded backend every held connection pins a pool worker,
        // which is exactly the limitation this mode documents.
        let loaded_req_per_sec = if kind == TransportKind::Epoll && idle_held > 0 {
            let (lat, _, elapsed) = drive(addr, &bodies, options.clients, options.requests);
            let rps = lat.len() as f64 / (elapsed as f64 / 1e6).max(1e-9);
            eprintln!("serve-bench: {kind} with {idle_held} parked connections → {rps:.0} req/s");
            Some(rps)
        } else {
            None
        };

        drop(herd);
        daemon.stop().expect("clean daemon shutdown");
        runs.push((
            kind,
            BackendRun {
                req_per_sec,
                p50_us,
                p99_us,
                failures,
                idle_held,
                threads_at_peak,
                loaded_req_per_sec,
            },
        ));
    }

    let threaded = &runs[0].1;
    let epoll = &runs[1].1;
    let ceiling_ratio = epoll.idle_held as f64 / (threaded.idle_held as f64).max(1.0);
    let loaded_ok = epoll
        .loaded_req_per_sec
        .is_some_and(|rps| rps >= 0.3 * epoll.req_per_sec);
    let gate_pass =
        threaded.failures == 0 && epoll.failures == 0 && ceiling_ratio >= 10.0 && loaded_ok;

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"scamdetect-transport-bench/v1\",\n");
    let _ = writeln!(
        json,
        "  \"workers\": {WORKERS}, \"clients\": {}, \"requests\": {}, \"idle_cap\": {},",
        options.clients, options.requests, options.idle_cap
    );
    for (kind, run) in &runs {
        let loaded = run
            .loaded_req_per_sec
            .map_or("null".to_string(), |rps| format!("{rps:.0}"));
        let _ = writeln!(
            json,
            "  \"{kind}\": {{\"req_per_sec\": {:.0}, \"p50_us\": {}, \"p99_us\": {}, \
             \"failures\": {}, \"idle_connections_held\": {}, \"process_threads_at_peak\": {}, \
             \"req_per_sec_with_idle_herd\": {loaded}}},",
            run.req_per_sec,
            run.p50_us,
            run.p99_us,
            run.failures,
            run.idle_held,
            run.threads_at_peak
        );
    }
    let _ = writeln!(json, "  \"ceiling_ratio\": {ceiling_ratio:.1},");
    let _ = writeln!(
        json,
        "  \"gate\": {{\"pass\": {gate_pass}, \"rule\": \"every baseline request answers 200 on \
         both transports, the epoll idle-connection ceiling is at least 10x the threaded \
         backend's, and with the whole herd parked the epoll daemon still serves at least 30% \
         of its unloaded req/s\"}}"
    );
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("serve-bench: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("serve-bench: wrote {out_path}");
    std::fs::remove_dir_all(&base_dir).ok();
    if !gate_pass {
        eprintln!(
            "serve-bench: GATE FAILED (threaded held {} / epoll held {} → ratio {ceiling_ratio:.1}, \
             loaded_ok {loaded_ok}, failures {}+{})",
            threaded.idle_held, epoll.idle_held, threaded.failures, epoll.failures
        );
        return ExitCode::FAILURE;
    }
    eprintln!("serve-bench: gate passed");
    ExitCode::SUCCESS
}

/// The `--shadow` mode: the same duplicate-heavy mix measured with the
/// shadow scorer off and on, gated on champion bit-identity and a
/// bounded latency tax.
#[allow(clippy::too_many_lines)]
fn run_shadow(options: &Options) -> ExitCode {
    use scamdetect_fleet::client::parse_metric;
    const WORKERS: usize = 8;
    // Below this, the 1.5× multiplier is all shared-runner noise.
    const P99_FLOOR_US: u64 = 500;
    let out_path = options
        .out_path
        .clone()
        .unwrap_or_else(|| "BENCH_PR9.json".to_string());

    eprintln!("serve-bench: training champion and candidate artifacts…");
    let base_dir =
        std::env::temp_dir().join(format!("scamdetect-shadow-bench-{}", std::process::id()));
    let models_dir = base_dir.join("models");
    if let Err(e) = std::fs::create_dir_all(&models_dir) {
        eprintln!("serve-bench: cannot create {}: {e}", models_dir.display());
        return ExitCode::FAILURE;
    }
    // Different corpus seeds → genuinely different weights, so the
    // candidate does real scoring work instead of replaying the
    // champion's arithmetic.
    for (stem, seed) in [("bench-v1", 11u64), ("bench-cand", 13u64)] {
        let train_corpus = Corpus::generate(&CorpusConfig {
            size: 80,
            seed,
            ..CorpusConfig::default()
        });
        ScannerBuilder::new()
            .model(ModelKind::Classic(
                ClassicModel::LogisticRegression,
                FeatureKind::Unified,
            ))
            .train(&train_corpus)
            .expect("trains")
            .save(models_dir.join(format!("{stem}.scam")))
            .expect("saves artifact");
    }

    let mut config = ServeConfig::default();
    config.http.addr = "127.0.0.1:0".to_string();
    config.http.workers = WORKERS;
    config.registry.models_dir = models_dir;
    // "bench-v1" sorts after "bench-cand", so the champion wins the
    // directory scan — pin anyway to keep the intent explicit.
    config.registry.pinned = Some("bench-v1".to_string());
    let daemon = spawn(config).expect("daemon spawns");
    let addr = daemon.addr;
    eprintln!("serve-bench: replica on http://{addr} serving bench-v1 ({WORKERS} workers)");

    let scan_corpus = Corpus::generate(&CorpusConfig {
        size: 48,
        seed: 12,
        proxy_duplicates: 16,
        ..CorpusConfig::default()
    });
    let bodies: Vec<String> = scan_corpus
        .contracts()
        .iter()
        .map(|c| {
            format!(
                r#"{{"bytecode": "{}"}}"#,
                scamdetect_serve::wire::encode_hex(&c.bytes)
            )
        })
        .collect();
    warm(addr, &bodies);
    let probe_body = &bodies[0];

    // Phase 1: shadow off.
    eprintln!(
        "serve-bench: driving {} requests over {} clients (shadow off)…",
        options.requests, options.clients
    );
    let (lat_off, failures_off, elapsed_off) =
        drive(addr, &bodies, options.clients, options.requests);
    let bits_off = score_bits(addr, probe_body);
    let (off_count, off_p50, off_p99) = (
        lat_off.len(),
        percentile(&lat_off, 0.50),
        percentile(&lat_off, 0.99),
    );
    let off_rps = off_count as f64 / (elapsed_off as f64 / 1e6).max(1e-9);
    eprintln!("serve-bench: shadow off → {off_rps:.0} req/s (p50 {off_p50}µs, p99 {off_p99}µs)");

    // Phase 2: candidate mirrors every scan off the response path.
    let reply = scamdetect_serve::client::http_call(
        addr,
        "POST",
        "/shadow/start",
        Some(r#"{"model": "bench-cand"}"#),
    )
    .expect("shadow start call");
    if reply.status != 200 {
        eprintln!(
            "serve-bench: shadow start answered {}: {}",
            reply.status, reply.body
        );
        return ExitCode::FAILURE;
    }
    eprintln!(
        "serve-bench: driving {} requests over {} clients (shadow on)…",
        options.requests, options.clients
    );
    let (lat_on, failures_on, elapsed_on) = drive(addr, &bodies, options.clients, options.requests);
    let bits_on = score_bits(addr, probe_body);
    let (on_count, on_p50, on_p99) = (
        lat_on.len(),
        percentile(&lat_on, 0.50),
        percentile(&lat_on, 0.99),
    );
    let on_rps = on_count as f64 / (elapsed_on as f64 / 1e6).max(1e-9);
    eprintln!("serve-bench: shadow on  → {on_rps:.0} req/s (p50 {on_p50}µs, p99 {on_p99}µs)");

    // The candidate must have done real work: scrape the session
    // counters off /metrics before stopping anything.
    let metrics_text = scamdetect_serve::client::http_call(addr, "GET", "/metrics", None)
        .expect("metrics scrape")
        .body;
    let shadow_samples =
        parse_metric(&metrics_text, "scamdetect_shadow_samples_total").unwrap_or(0.0) as u64;
    let shadow_dropped =
        parse_metric(&metrics_text, "scamdetect_shadow_dropped_total").unwrap_or(0.0) as u64;
    let shadow_agreement =
        parse_metric(&metrics_text, "scamdetect_shadow_agreement_ratio").unwrap_or(0.0);
    daemon.stop().expect("clean daemon shutdown");

    let p99_budget = 3 * off_p99.max(P99_FLOOR_US) / 2;
    let latency_held = on_p99 <= p99_budget;
    let bits_identical = bits_off.is_some() && bits_off == bits_on;
    let gate_pass = failures_off == 0
        && failures_on == 0
        && off_count >= options.requests
        && on_count >= options.requests
        && bits_identical
        && shadow_samples > 0
        && latency_held;
    eprintln!(
        "serve-bench: candidate scored {shadow_samples} mirrored scans \
         (agreement {shadow_agreement:.3}, {shadow_dropped} dropped)"
    );

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"scamdetect-shadow-bench/v1\",\n");
    let _ = writeln!(
        json,
        "  \"shadow_off\": {{\"clients\": {}, \"requests\": {off_count}, \
         \"elapsed_us\": {elapsed_off}, \"req_per_sec\": {off_rps:.0}, \"p50_us\": {off_p50}, \
         \"p99_us\": {off_p99}, \"failures\": {failures_off}}},",
        options.clients
    );
    let _ = writeln!(
        json,
        "  \"shadow_on\": {{\"clients\": {}, \"requests\": {on_count}, \
         \"elapsed_us\": {elapsed_on}, \"req_per_sec\": {on_rps:.0}, \"p50_us\": {on_p50}, \
         \"p99_us\": {on_p99}, \"failures\": {failures_on}, \"candidate\": \"bench-cand\", \
         \"shadow_samples\": {shadow_samples}, \"shadow_dropped\": {shadow_dropped}, \
         \"shadow_agreement\": {shadow_agreement:.4}}},",
        options.clients
    );
    let _ = writeln!(
        json,
        "  \"champion_score_bits_identical\": {bits_identical},"
    );
    let _ = writeln!(
        json,
        "  \"gate\": {{\"pass\": {gate_pass}, \"shadow_on_p99_budget_us\": {p99_budget}, \
         \"rule\": \"every request answers 200 in both phases, a probe's champion score is \
         bit-identical with the shadow on and off, the candidate actually scores mirrored \
         traffic, and the shadow-on p99 stays within 1.5x the shadow-off p99 (floored at \
         {P99_FLOOR_US}us)\"}}"
    );
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("serve-bench: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("serve-bench: wrote {out_path}");
    std::fs::remove_dir_all(&base_dir).ok();
    if !gate_pass {
        eprintln!(
            "serve-bench: GATE FAILED ({failures_off}+{failures_on} failures, \
             bits_identical {bits_identical}, {shadow_samples} shadow samples, \
             p99 {on_p99}µs vs budget {p99_budget}µs)"
        );
        return ExitCode::FAILURE;
    }
    eprintln!("serve-bench: gate passed");
    ExitCode::SUCCESS
}

/// The `--trace` mode: the same duplicate-heavy mix measured with
/// request tracing disabled and at the default 1-in-16 head sampling,
/// gated on traces being genuinely readable back and a bounded
/// latency tax.
#[allow(clippy::too_many_lines)]
fn run_trace(options: &Options) -> ExitCode {
    const WORKERS: usize = 8;
    const SAMPLE_EVERY: u32 = 16;
    // Below this, the 1.1× multiplier is all shared-runner noise.
    const P99_FLOOR_US: u64 = 500;
    let out_path = options
        .out_path
        .clone()
        .unwrap_or_else(|| "BENCH_PR10.json".to_string());

    eprintln!("serve-bench: training the serving artifact…");
    let base_dir =
        std::env::temp_dir().join(format!("scamdetect-trace-bench-{}", std::process::id()));
    let models_dir = base_dir.join("models");
    if let Err(e) = std::fs::create_dir_all(&models_dir) {
        eprintln!("serve-bench: cannot create {}: {e}", models_dir.display());
        return ExitCode::FAILURE;
    }
    let train_corpus = Corpus::generate(&CorpusConfig {
        size: 80,
        seed: 11,
        ..CorpusConfig::default()
    });
    ScannerBuilder::new()
        .model(ModelKind::Classic(
            ClassicModel::LogisticRegression,
            FeatureKind::Unified,
        ))
        .train(&train_corpus)
        .expect("trains")
        .save(models_dir.join("bench-v1.scam"))
        .expect("saves artifact");

    let scan_corpus = Corpus::generate(&CorpusConfig {
        size: 48,
        seed: 12,
        proxy_duplicates: 16,
        ..CorpusConfig::default()
    });
    let bodies: Vec<String> = scan_corpus
        .contracts()
        .iter()
        .map(|c| {
            format!(
                r#"{{"bytecode": "{}"}}"#,
                scamdetect_serve::wire::encode_hex(&c.bytes)
            )
        })
        .collect();

    // One fresh daemon per phase: tracing is a startup knob, and a
    // clean process per phase keeps the comparison honest (no warm ring
    // or allocator state leaking across).
    let mut phases: Vec<(u32, usize, f64, u64, u64, usize)> = Vec::new();
    let mut traces_kept = 0u64;
    let mut readback_spans = 0usize;
    for sample in [0u32, SAMPLE_EVERY] {
        let mut config = ServeConfig::default();
        config.http.addr = "127.0.0.1:0".to_string();
        config.http.workers = WORKERS;
        config.http.trace_sample = sample;
        config.registry.models_dir = models_dir.clone();
        let daemon = spawn(config).expect("daemon spawns");
        let addr = daemon.addr;
        eprintln!(
            "serve-bench: replica on http://{addr} (trace sample {sample}); \
             driving {} requests over {} clients…",
            options.requests, options.clients
        );
        warm(addr, &bodies);
        let (lat, failures, elapsed) = drive(addr, &bodies, options.clients, options.requests);
        let count = lat.len();
        let rps = count as f64 / (elapsed as f64 / 1e6).max(1e-9);
        let (p50, p99) = (percentile(&lat, 0.50), percentile(&lat, 0.99));
        eprintln!(
            "serve-bench: trace sample {sample} → {rps:.0} req/s (p50 {p50}µs, p99 {p99}µs, \
             {failures} failures)"
        );

        if sample > 0 {
            // The tax only counts if the traces are real: round-trip
            // /trace/recent → /trace/<id> and demand actual spans.
            let recent = scamdetect_serve::client::http_call(addr, "GET", "/trace/recent", None)
                .expect("trace/recent scrape");
            if recent.status == 200 {
                if let Ok(parsed) = Json::parse(&recent.body) {
                    traces_kept = parsed.get("kept").and_then(Json::as_f64).unwrap_or(0.0) as u64;
                    let first_id = parsed
                        .get("traces")
                        .and_then(Json::as_array)
                        .and_then(<[Json]>::first)
                        .and_then(|t| t.get("trace_id").and_then(Json::as_str))
                        .map(str::to_string);
                    if let Some(id) = first_id {
                        let one = scamdetect_serve::client::http_call(
                            addr,
                            "GET",
                            &format!("/trace/{id}"),
                            None,
                        )
                        .expect("trace fetch");
                        if one.status == 200 {
                            readback_spans = Json::parse(&one.body)
                                .ok()
                                .and_then(|t| {
                                    t.get("spans").and_then(Json::as_array).map(<[Json]>::len)
                                })
                                .unwrap_or(0);
                        }
                    }
                }
            }
            eprintln!(
                "serve-bench: {traces_kept} traces kept; read-back trace carries \
                 {readback_spans} spans"
            );
        }
        daemon.stop().expect("clean daemon shutdown");
        phases.push((sample, count, rps, p50, p99, failures));
    }

    let (_, off_count, off_rps, off_p50, off_p99, off_failures) = phases[0];
    let (_, on_count, on_rps, on_p50, on_p99, on_failures) = phases[1];
    let p99_budget = 11 * off_p99.max(P99_FLOOR_US) / 10;
    let latency_held = on_p99 <= p99_budget;
    let gate_pass = off_failures == 0
        && on_failures == 0
        && off_count >= options.requests
        && on_count >= options.requests
        && traces_kept > 0
        && readback_spans > 0
        && latency_held;

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"scamdetect-trace-bench/v1\",\n");
    let _ = writeln!(
        json,
        "  \"tracing_off\": {{\"clients\": {}, \"requests\": {off_count}, \
         \"req_per_sec\": {off_rps:.0}, \"p50_us\": {off_p50}, \"p99_us\": {off_p99}, \
         \"failures\": {off_failures}}},",
        options.clients
    );
    let _ = writeln!(
        json,
        "  \"tracing_on\": {{\"clients\": {}, \"requests\": {on_count}, \
         \"req_per_sec\": {on_rps:.0}, \"p50_us\": {on_p50}, \"p99_us\": {on_p99}, \
         \"failures\": {on_failures}, \"sample_every\": {SAMPLE_EVERY}, \
         \"traces_kept\": {traces_kept}, \"readback_spans\": {readback_spans}}},",
        options.clients
    );
    let _ = writeln!(
        json,
        "  \"gate\": {{\"pass\": {gate_pass}, \"tracing_on_p99_budget_us\": {p99_budget}, \
         \"rule\": \"every request answers 200 in both phases, the 1-in-{SAMPLE_EVERY}-sampled \
         daemon keeps traces that read back with real spans, and the tracing-on p99 stays \
         within 1.1x the tracing-off p99 (floored at {P99_FLOOR_US}us)\"}}"
    );
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("serve-bench: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("serve-bench: wrote {out_path}");
    std::fs::remove_dir_all(&base_dir).ok();
    if !gate_pass {
        eprintln!(
            "serve-bench: GATE FAILED ({off_failures}+{on_failures} failures, \
             {traces_kept} traces kept, {readback_spans} read-back spans, \
             p99 {on_p99}µs vs budget {p99_budget}µs)"
        );
        return ExitCode::FAILURE;
    }
    eprintln!("serve-bench: gate passed");
    ExitCode::SUCCESS
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("serve-bench: {message}");
            return ExitCode::from(2);
        }
    };
    if options.shed {
        return run_shed(&options);
    }
    if options.connections {
        return run_connections(&options);
    }
    if options.shadow {
        return run_shadow(&options);
    }
    if options.trace {
        return run_trace(&options);
    }
    let out_path = options.out_path.clone().unwrap_or_else(|| {
        if options.router {
            "BENCH_PR6.json".to_string()
        } else {
            "BENCH_PR5.json".to_string()
        }
    });

    // 1. Train once, persist into throwaway models dirs (one per
    //    replica: a real fleet does not share a filesystem).
    eprintln!("serve-bench: training the serving artifact…");
    let base_dir =
        std::env::temp_dir().join(format!("scamdetect-serve-bench-{}", std::process::id()));
    let replica_count = if options.router { 2 } else { 1 };
    let mut model_dirs = Vec::new();
    for r in 0..replica_count {
        let dir = base_dir.join(format!("models-{r}"));
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("serve-bench: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        model_dirs.push(dir);
    }
    let train_corpus = Corpus::generate(&CorpusConfig {
        size: 80,
        seed: 11,
        ..CorpusConfig::default()
    });
    let trained = ScannerBuilder::new()
        .model(ModelKind::Classic(
            ClassicModel::LogisticRegression,
            FeatureKind::Unified,
        ))
        .train(&train_corpus)
        .expect("trains");
    for dir in &model_dirs {
        trained
            .save(dir.join("bench-v1.scam"))
            .expect("saves artifact");
    }

    // 2. Spawn the daemon(s) on ephemeral loopback ports, plus the
    //    router in router mode.
    let daemons: Vec<RunningDaemon> = model_dirs.iter().map(|d| spawn_replica(d)).collect();
    let replica_addrs: Vec<SocketAddr> = daemons.iter().map(|d| d.addr).collect();
    for addr in &replica_addrs {
        eprintln!("serve-bench: replica on http://{addr}");
    }
    let router = if options.router {
        let running = spawn_router(RouterConfig {
            replicas: replica_addrs.clone(),
            ..RouterConfig::default()
        })
        .expect("router spawns");
        eprintln!("serve-bench: router on http://{}", running.addr);
        Some(running)
    } else {
        None
    };

    // 3. The request mix: duplicate-heavy bulk traffic.
    let scan_corpus = Corpus::generate(&CorpusConfig {
        size: 48,
        seed: 12,
        proxy_duplicates: 16,
        ..CorpusConfig::default()
    });
    let bodies: Vec<String> = scan_corpus
        .contracts()
        .iter()
        .map(|c| {
            format!(
                r#"{{"bytecode": "{}"}}"#,
                scamdetect_serve::wire::encode_hex(&c.bytes)
            )
        })
        .collect();

    // Warm-up: every unique skeleton lifted once on every path before
    // the measured window, so the numbers describe steady-state serving.
    warm(replica_addrs[0], &bodies);
    if let Some(running) = &router {
        warm(running.addr, &bodies);
    }

    // 4. Measured windows. Direct first, routed second (same mix).
    eprintln!(
        "serve-bench: driving {} requests over {} client threads (direct)…",
        options.requests, options.clients
    );
    let (direct_lat, direct_failures, direct_elapsed) =
        drive(replica_addrs[0], &bodies, options.clients, options.requests);
    let routed = router.as_ref().map(|running| {
        eprintln!(
            "serve-bench: driving {} requests over {} client threads (routed)…",
            options.requests, options.clients
        );
        drive(running.addr, &bodies, options.clients, options.requests)
    });

    // 5. Correctness probes after load: a verdict must still parse,
    //    and in router mode the routed score must equal the direct one
    //    bit for bit.
    let probe_body = &bodies[0];
    let direct_bits = score_bits(replica_addrs[0], probe_body);
    let verdict_ok = direct_bits.is_some();
    let routed_bits_match = match &router {
        Some(running) => score_bits(running.addr, probe_body) == direct_bits,
        None => true,
    };
    let metrics_addr = router.as_ref().map_or(replica_addrs[0], |r| r.addr);
    let metrics_name = if options.router {
        "scamdetect_fleet_scan_requests_total"
    } else {
        "scamdetect_requests_total"
    };
    let metrics_text = scamdetect_serve::client::http_call(metrics_addr, "GET", "/metrics", None)
        .expect("metrics scrape")
        .body;
    let hit_ratio = daemons[0].metrics.cache_hit_ratio();

    let mut failures = direct_failures;
    if let Some((_, routed_failures, _)) = &routed {
        failures += routed_failures;
    }
    if let Some(running) = router {
        running.stop().expect("clean router shutdown");
    }
    let mut server_connections = 0u64;
    let mut server_requests = 0u64;
    for daemon in daemons {
        let stats = daemon.stop().expect("clean daemon shutdown");
        server_connections += stats.connections;
        server_requests += stats.requests;
    }

    // 6. Aggregate + emit.
    let summarize = |lat: &[u64], elapsed_us: u128| {
        let completed = lat.len();
        let rps = completed as f64 / (elapsed_us as f64 / 1e6).max(1e-9);
        (completed, rps, percentile(lat, 0.50), percentile(lat, 0.99))
    };
    let (d_count, d_rps, d_p50, d_p99) = summarize(&direct_lat, direct_elapsed);
    eprintln!(
        "serve-bench: direct {d_count} requests → {d_rps:.0} req/s (p50 {d_p50}µs, p99 {d_p99}µs, \
         cache hit ratio {hit_ratio:.2})"
    );

    let mut completed_ok = d_count >= options.requests;
    let mut json = String::new();
    let gate_pass;
    if options.router {
        let (routed_lat, _, routed_elapsed) = routed.expect("router mode measured");
        let (r_count, r_rps, r_p50, r_p99) = summarize(&routed_lat, routed_elapsed);
        completed_ok &= r_count >= options.requests;
        // Router-added latency: routed minus direct at the same
        // percentile, floored at zero (CI noise can invert them).
        let over_p50 = r_p50.saturating_sub(d_p50);
        let over_p99 = r_p99.saturating_sub(d_p99);
        eprintln!(
            "serve-bench: routed {r_count} requests → {r_rps:.0} req/s (p50 {r_p50}µs, \
             p99 {r_p99}µs; router overhead p50 +{over_p50}µs, p99 +{over_p99}µs)"
        );
        gate_pass = failures == 0
            && verdict_ok
            && routed_bits_match
            && completed_ok
            && metrics_text.contains(metrics_name);
        json.push_str("{\n  \"schema\": \"scamdetect-fleet-bench/v1\",\n");
        let _ = writeln!(
            json,
            "  \"direct_scan\": {{\"clients\": {}, \"requests\": {d_count}, \
             \"elapsed_us\": {direct_elapsed}, \"req_per_sec\": {d_rps:.0}, \
             \"p50_us\": {d_p50}, \"p99_us\": {d_p99}}},",
            options.clients,
        );
        let _ = writeln!(
            json,
            "  \"routed_scan\": {{\"clients\": {}, \"requests\": {r_count}, \
             \"elapsed_us\": {routed_elapsed}, \"req_per_sec\": {r_rps:.0}, \
             \"p50_us\": {r_p50}, \"p99_us\": {r_p99}, \"replicas\": 2}},",
            options.clients,
        );
        let _ = writeln!(
            json,
            "  \"router_overhead\": {{\"p50_us\": {over_p50}, \"p99_us\": {over_p99}}},"
        );
        let _ = writeln!(
            json,
            "  \"gate\": {{\"pass\": {gate_pass}, \"rule\": \"every request answers 200 with a \
             parseable verdict on both paths, a probe scores bit-identically direct and routed, \
             and everything shuts down cleanly; latency is recorded as a trajectory, not \
             gated\"}}"
        );
        json.push_str("}\n");
    } else {
        gate_pass =
            failures == 0 && verdict_ok && completed_ok && metrics_text.contains(metrics_name);
        json.push_str("{\n  \"schema\": \"scamdetect-serve-bench/v1\",\n");
        let _ = writeln!(
            json,
            "  \"scan_loopback\": {{\"clients\": {}, \"requests\": {d_count}, \
             \"elapsed_us\": {direct_elapsed}, \"req_per_sec\": {d_rps:.0}, \"p50_us\": {d_p50}, \
             \"p99_us\": {d_p99}, \"cache_hit_ratio\": {hit_ratio:.4}, \
             \"server_connections\": {server_connections}, \
             \"server_requests\": {server_requests}}},",
            options.clients,
        );
        let _ = writeln!(
            json,
            "  \"gate\": {{\"pass\": {gate_pass}, \"rule\": \"every request answers 200 with a \
             parseable verdict and the daemon shuts down cleanly; latency is recorded as a \
             trajectory, not gated\"}}"
        );
        json.push_str("}\n");
    }
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("serve-bench: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("serve-bench: wrote {out_path}");
    std::fs::remove_dir_all(&base_dir).ok();
    if !gate_pass {
        eprintln!(
            "serve-bench: GATE FAILED ({failures} failed requests, verdict_ok {verdict_ok}, \
             routed_bits_match {routed_bits_match})"
        );
        return ExitCode::FAILURE;
    }
    eprintln!("serve-bench: gate passed");
    ExitCode::SUCCESS
}
