//! The front-door router: one HTTP endpoint that looks exactly like a
//! `scamdetect-serve` replica to clients, but fans `/scan` and `/batch`
//! across the fleet by skeleton-hash ownership.
//!
//! # Request path
//!
//! 1. Decode the scan request just far enough to compute
//!    [`scamdetect::request_fingerprint`] — the *same* equivalence the
//!    replicas' verdict/prep caches key on, so one skeleton always
//!    lands on the replica whose caches are warm for it.
//! 2. Look up the owner in the live ring ([`FleetState`]).
//! 3. Forward the original JSON over a pooled keep-alive connection.
//!
//! A forward failure (after the serve client's own one-shot retry)
//! feeds the replica's [`crate::breaker::CircuitBreaker`]; a tripped
//! breaker ejects the replica, rebalances the ring, and the request
//! re-routes to the new owner — bounded attempts, never a spin. Every
//! request carries a **deadline budget** (the `x-deadline-ms` header,
//! defaulting to the forward timeout): each attempt's socket timeout
//! is the *remaining* budget, so a retry can never stretch the
//! client's wait beyond its original deadline — when the budget runs
//! out mid-re-route the router answers **503 with `Retry-After`**
//! instead of silently overshooting. Replica replies are validated
//! before passing through (parseable JSON, and a `score` on a 200
//! scan): a torn or corrupted body counts as a transport failure and
//! re-routes rather than reaching the client. When no replica is up,
//! the router degrades the same honest way: 503 + `Retry-After`.
//!
//! `/batch` is split by ownership into per-replica sub-batches and the
//! replies merged back in slot order, so batch dedup still happens on
//! the replica that owns each skeleton. Verdict JSON passes through the
//! bit-exact float round-trip of [`scamdetect_serve::json`], so routed
//! scores are bit-identical to direct ones.

use crate::breaker::BreakerConfig;
use crate::health::{FleetState, HealthMonitor};
use scamdetect::detect_platform;
use scamdetect::trace::{Stage, TraceId};
use scamdetect_serve::client::{ClientResponse, HttpClient};
use scamdetect_serve::http::{
    HttpConfig, HttpRequest, HttpResponse, HttpServer, ServerStats, ShutdownHandle, TraceHub,
    TransportKind,
};
use scamdetect_serve::json::{obj, Json};
use scamdetect_serve::wire;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Keep-alive connections retained per replica (beyond this, extra
/// connections are simply dropped after use).
const POOL_PER_REPLICA: usize = 8;

/// Everything the router needs to run.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address for the router itself (e.g. `127.0.0.1:0`).
    pub addr: String,
    /// The replica fleet (each a running `scamdetect-serve`).
    pub replicas: Vec<SocketAddr>,
    /// Virtual nodes per replica on the ring.
    pub vnodes: usize,
    /// Router worker threads (0 = HTTP default).
    pub workers: usize,
    /// Connection backend for the router's own listener. A front door
    /// is exactly the fan-in point where idle client keep-alive
    /// connections dwarf the worker pool, so `epoll` pays off here
    /// first; `threads` stays the portable default.
    pub transport: TransportKind,
    /// Health-probe cadence.
    pub probe_interval: Duration,
    /// Per-probe timeout (keep well under the interval).
    pub probe_timeout: Duration,
    /// Per-forward timeout, and the default deadline budget for
    /// requests that do not send an `x-deadline-ms` header.
    pub forward_timeout: Duration,
    /// Seconds suggested in `Retry-After` when the fleet is down.
    pub retry_after_s: u32,
    /// Per-replica circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Head-sampling rate for the router's own request traces: keep
    /// 1-in-N. `0` disables tracing entirely (`/trace/*` answers 409).
    pub trace_sample: u32,
    /// Requests slower than this (µs, wire-observed at the router) are
    /// kept regardless of sampling.
    pub trace_slow_us: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            replicas: Vec::new(),
            vnodes: crate::ring::DEFAULT_VNODES,
            workers: 0,
            transport: TransportKind::default(),
            probe_interval: Duration::from_millis(500),
            probe_timeout: Duration::from_millis(250),
            forward_timeout: Duration::from_secs(10),
            retry_after_s: 2,
            breaker: BreakerConfig::default(),
            trace_sample: 16,
            trace_slow_us: 50_000,
        }
    }
}

/// Router-side counters, rendered on the router's own `/metrics`.
#[derive(Debug, Default)]
pub struct RouterMetrics {
    /// `/scan` requests routed.
    pub routed_scan: AtomicU64,
    /// `/batch` requests routed.
    pub routed_batch: AtomicU64,
    /// Forwards that failed transport-level (each marks a replica
    /// down).
    pub forward_failures: AtomicU64,
    /// Requests that were re-routed to a different owner after a
    /// failure.
    pub reroutes: AtomicU64,
    /// Requests answered 503 because no replica was up.
    pub unavailable: AtomicU64,
    /// Requests answered 503 because their deadline budget ran out
    /// before any replica produced a sound reply.
    pub deadline_exhausted: AtomicU64,
    /// Everything else (`/fleet`, `/healthz`, `/metrics`, 404s).
    pub requests_other: AtomicU64,
}

/// A router bound and serving on a background thread.
pub struct RunningRouter {
    /// The bound address (real port when `:0` was configured).
    pub addr: SocketAddr,
    /// Graceful-stop trigger for the HTTP front end.
    pub shutdown: ShutdownHandle,
    /// Shared fleet state (tests read and poke this).
    pub state: Arc<FleetState>,
    /// Router counters.
    pub metrics: Arc<RouterMetrics>,
    monitor: Option<HealthMonitor>,
    thread: std::thread::JoinHandle<ServerStats>,
}

impl RunningRouter {
    /// Stops the prober and the HTTP server; returns final stats.
    ///
    /// # Errors
    ///
    /// The server thread's panic payload, if it panicked.
    pub fn stop(mut self) -> std::thread::Result<ServerStats> {
        if let Some(monitor) = self.monitor.take() {
            monitor.stop();
        }
        self.shutdown.shutdown();
        self.thread.join()
    }

    /// Blocks until the HTTP server stops (a signal handler or another
    /// clone of [`RunningRouter::shutdown`] triggers it), then stops
    /// the prober; returns final stats. The foreground counterpart of
    /// [`RunningRouter::stop`].
    ///
    /// # Errors
    ///
    /// The server thread's panic payload, if it panicked.
    pub fn join(mut self) -> std::thread::Result<ServerStats> {
        let stats = self.thread.join();
        if let Some(monitor) = self.monitor.take() {
            monitor.stop();
        }
        stats
    }
}

/// Binds the router and serves on a background thread.
///
/// # Errors
///
/// Bind failures.
pub fn spawn_router(config: RouterConfig) -> std::io::Result<RunningRouter> {
    let state = Arc::new(FleetState::with_breaker(
        &config.replicas,
        config.vnodes,
        config.breaker.clone(),
    ));
    let metrics = Arc::new(RouterMetrics::default());
    let mut http = HttpConfig::builder()
        .addr(config.addr.clone())
        .transport(config.transport)
        .trace_sample(config.trace_sample)
        .trace_slow_us(config.trace_slow_us);
    if config.workers > 0 {
        http = http.workers(config.workers);
    }
    let http = http
        .build()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
    let server = HttpServer::bind(http)?;
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let monitor = HealthMonitor::spawn(
        Arc::clone(&state),
        config.probe_interval,
        config.probe_timeout,
    );
    let ctx = Arc::new(RouterCtx {
        state: Arc::clone(&state),
        metrics: Arc::clone(&metrics),
        pool: ConnPool::new(config.forward_timeout),
        retry_after_s: config.retry_after_s,
        forward_timeout: config.forward_timeout,
        attempts_per_replica: config.breaker.consecutive_failures.max(1) as usize,
        trace: server.trace_hub(),
    });
    let handler_ctx = Arc::clone(&ctx);
    let thread = std::thread::spawn(move || {
        server.serve(Arc::new(move |request: &HttpRequest| {
            route(&handler_ctx, request)
        }))
    });
    Ok(RunningRouter {
        addr,
        shutdown,
        state,
        metrics,
        monitor: Some(monitor),
        thread,
    })
}

struct RouterCtx {
    state: Arc<FleetState>,
    metrics: Arc<RouterMetrics>,
    pool: ConnPool,
    retry_after_s: u32,
    /// Per-attempt timeout cap and the default deadline budget.
    forward_timeout: Duration,
    /// How many failures it takes to trip one replica's breaker —
    /// bounds the re-route loop at `replicas × this` attempts.
    attempts_per_replica: usize,
    /// The router's own completed-trace ring (same hub the transport
    /// layer samples into); `/trace/*` reads it.
    trace: Arc<TraceHub>,
}

/// A tiny keep-alive connection pool, one stack of clients per
/// replica. `HttpClient` already reconnects once on stale connections,
/// so pooled clients can sit idle across probe intervals safely.
///
/// Sizing note: each idle pooled connection parks one replica worker
/// in its keep-alive read until the replica's idle timeout expires, so
/// replicas behind a router should run with `--http-workers` safely
/// above the router's concurrent-forward count — otherwise health
/// probes queue behind idle pool connections and a loaded replica can
/// be marked down spuriously.
struct ConnPool {
    timeout: Duration,
    idle: Mutex<HashMap<SocketAddr, Vec<HttpClient>>>,
}

impl ConnPool {
    fn new(timeout: Duration) -> ConnPool {
        ConnPool {
            timeout,
            idle: Mutex::new(HashMap::new()),
        }
    }

    /// One request over a pooled (or fresh) connection; the connection
    /// returns to the pool only on success. `timeout` is this attempt's
    /// I/O deadline — the caller passes its request's *remaining*
    /// budget, so a pooled connection never waits longer than the
    /// client would. `headers` rides along verbatim — the forward path
    /// uses it to propagate `x-trace-id` to the owning replica.
    fn roundtrip(
        &self,
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: &[u8],
        timeout: Duration,
        headers: &[(&str, &str)],
    ) -> std::io::Result<ClientResponse> {
        let pooled = self
            .idle
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get_mut(&addr)
            .and_then(Vec::pop);
        let mut client = match pooled {
            Some(client) => client,
            None => HttpClient::connect_with_timeout(addr, timeout)?,
        };
        client.set_io_timeout(timeout);
        let reply = client.request_raw(method, path, body, headers)?;
        // Pooled connections revert to the default forward timeout so a
        // short-budget request cannot poison the next user's deadline.
        client.set_io_timeout(self.timeout);
        let mut idle = self.idle.lock().unwrap_or_else(|e| e.into_inner());
        let stack = idle.entry(addr).or_default();
        if stack.len() < POOL_PER_REPLICA {
            stack.push(client);
        }
        Ok(reply)
    }
}

fn route(ctx: &RouterCtx, request: &HttpRequest) -> HttpResponse {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/scan") => {
            ctx.metrics.routed_scan.fetch_add(1, Ordering::Relaxed);
            handle_scan(ctx, request)
        }
        ("POST", "/batch") => {
            ctx.metrics.routed_batch.fetch_add(1, Ordering::Relaxed);
            handle_batch(ctx, request)
        }
        ("GET", "/fleet") => {
            ctx.metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            handle_fleet(ctx)
        }
        ("GET", "/healthz") => {
            ctx.metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            let (up, total) = ctx.state.up_counts();
            HttpResponse::json(
                200,
                &obj([
                    ("status", Json::from(if up > 0 { "ok" } else { "degraded" })),
                    ("role", Json::from("router")),
                    ("replicas_up", Json::from(up as u64)),
                    ("replicas_total", Json::from(total as u64)),
                ]),
            )
        }
        ("GET", "/metrics") => {
            ctx.metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            HttpResponse::text(200, render_router_metrics(ctx))
        }
        ("GET", "/trace/recent") => {
            ctx.metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            handle_trace_recent(ctx)
        }
        ("GET", path) if path.strip_prefix("/trace/").is_some_and(|s| !s.is_empty()) => {
            ctx.metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            handle_trace_by_id(ctx, path.strip_prefix("/trace/").expect("guard matched"))
        }
        (_, "/scan" | "/batch") => {
            ctx.metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            HttpResponse::error(405, "use POST")
        }
        (_, path)
            if path == "/fleet"
                || path == "/healthz"
                || path == "/metrics"
                || path.starts_with("/trace/") =>
        {
            ctx.metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            HttpResponse::error(405, "use GET")
        }
        _ => {
            ctx.metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            HttpResponse::error(
                404,
                "no such route (router exposes /scan /batch /fleet /healthz /metrics /trace)",
            )
        }
    }
}

/// Router-side `/trace/recent`: the most recent kept traces from the
/// router's own ring (summaries only; fetch `/trace/<id>` for spans).
fn handle_trace_recent(ctx: &RouterCtx) -> HttpResponse {
    if !ctx.trace.enabled() {
        return HttpResponse::error(409, "tracing disabled (serve with trace sampling > 0)");
    }
    let (kept, dropped) = ctx.trace.ring_counts();
    let recent = ctx.trace.recent(wire::TRACE_RECENT_LIMIT);
    HttpResponse::json(200, &wire::render_trace_recent(&recent, kept, dropped))
}

/// Router-side `/trace/<id>`: the full span tree for one kept trace.
/// The `forward` span notes name the owning replica, which is what
/// `scamdetect-cli trace` follows to stitch the cross-process timeline.
fn handle_trace_by_id(ctx: &RouterCtx, raw: &str) -> HttpResponse {
    if !ctx.trace.enabled() {
        return HttpResponse::error(409, "tracing disabled (serve with trace sampling > 0)");
    }
    let Some(id) = TraceId::parse(raw) else {
        return HttpResponse::error(400, "trace id must be 1-16 hex digits");
    };
    match ctx.trace.find(id) {
        Some(trace) => HttpResponse::json(200, &wire::render_trace(&trace)),
        None => HttpResponse::error(
            404,
            "no kept trace with that id (sampled away, evicted, or never seen)",
        ),
    }
}

/// The degradation path: every slice needs an owner and none is up.
fn unavailable(ctx: &RouterCtx) -> HttpResponse {
    ctx.metrics.unavailable.fetch_add(1, Ordering::Relaxed);
    HttpResponse::error(503, "no replica available for this key slice; retry later")
        .with_header("Retry-After", ctx.retry_after_s.to_string())
}

/// The deadline path: the request's budget ran out before any replica
/// produced a sound reply. Still a well-formed 503 + Retry-After — the
/// router never lets a retry overshoot the client's deadline silently.
fn deadline_exhausted(ctx: &RouterCtx) -> HttpResponse {
    ctx.metrics
        .deadline_exhausted
        .fetch_add(1, Ordering::Relaxed);
    HttpResponse::error(503, "deadline budget exhausted before a replica answered")
        .with_header("Retry-After", ctx.retry_after_s.to_string())
}

/// This request's deadline: the client's `x-deadline-ms` header when
/// present (clamped to something sane), else the forward timeout.
fn deadline_of(ctx: &RouterCtx, request: &HttpRequest) -> Instant {
    let budget = request
        .header("x-deadline-ms")
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(ctx.forward_timeout)
        .clamp(Duration::from_millis(1), Duration::from_secs(300));
    Instant::now() + budget
}

/// Budget left before `deadline`, if any useful amount remains.
fn remaining_budget(deadline: Instant) -> Option<Duration> {
    let remaining = deadline.saturating_duration_since(Instant::now());
    (remaining >= Duration::from_millis(1)).then_some(remaining)
}

/// Re-emits a replica reply through the router's own JSON writer. The
/// writer round-trips `f64` bit-exactly, so a routed score equals the
/// direct one to the last bit. Backpressure statuses re-attach
/// `Retry-After` (the replica's copy of the header does not survive
/// the hop). Callers validate the body with [`reply_is_sound`] first —
/// by the time a reply reaches here it is known-parseable JSON.
fn passthrough(ctx: &RouterCtx, reply: &ClientResponse) -> HttpResponse {
    let response = match Json::parse(&reply.body) {
        Ok(parsed) => HttpResponse::json(reply.status, &parsed),
        Err(_) => HttpResponse::text(reply.status, reply.body.clone()),
    };
    if matches!(reply.status, 408 | 429 | 503) {
        response.with_header("Retry-After", ctx.retry_after_s.to_string())
    } else {
        response
    }
}

/// Is a replica reply fit to pass through? A torn, truncated or
/// corrupted body must read as a *transport* failure (feed the breaker,
/// re-route), never reach the client: the body must parse as JSON, and
/// a `200` scan verdict must actually carry a `score`.
fn reply_is_sound(path: &str, reply: &ClientResponse) -> bool {
    match Json::parse(&reply.body) {
        Ok(parsed) => reply.status != 200 || path != "/scan" || parsed.get("score").is_some(),
        Err(_) => false,
    }
}

/// Forwards `body` to the owner of `key` within the request's deadline
/// budget, feeding every outcome to the owner's breaker and re-routing
/// after trips. Attempts are bounded by `replicas × failures-to-trip`
/// (each replica leaves the ring after at most that many failures) and
/// by the deadline itself, so the loop can neither spin nor overshoot
/// the client's wait.
fn forward_owned(
    ctx: &RouterCtx,
    request: &HttpRequest,
    key: u64,
    path: &str,
    body: &[u8],
    deadline: Instant,
) -> HttpResponse {
    // The replica treats a client-sent `x-trace-id` as *forced* capture,
    // so a trace the router kept is guaranteed to have its child spans
    // kept replica-side — that is what makes stitching deterministic.
    let trace_hex = request.trace_id().map(|id| id.to_hex());
    let forward_headers: Vec<(&str, &str)> = trace_hex
        .as_deref()
        .map(|hex| ("x-trace-id", hex))
        .into_iter()
        .collect();
    let (_, total) = ctx.state.up_counts();
    let max_attempts = total * ctx.attempts_per_replica + 1;
    for attempt in 0..max_attempts {
        let attempt_start = Instant::now();
        let Some(remaining) = remaining_budget(deadline) else {
            return deadline_exhausted(ctx);
        };
        let Some((owner_id, owner_addr)) = ctx.state.owner_of(key) else {
            return unavailable(ctx);
        };
        request.trace_record_note(
            Stage::Route,
            attempt_start,
            Instant::now(),
            format!("owner={owner_id} attempt={attempt}"),
        );
        let timeout = remaining.min(ctx.forward_timeout);
        let forward_start = Instant::now();
        let outcome = ctx
            .pool
            .roundtrip(owner_addr, "POST", path, body, timeout, &forward_headers);
        match outcome {
            Ok(reply) if reply_is_sound(path, &reply) => {
                // Note format is a contract: `scamdetect-cli trace`
                // parses `replica=<addr>` to find the owning replica's
                // child spans.
                request.trace_record_note(
                    Stage::Forward,
                    forward_start,
                    Instant::now(),
                    format!(
                        "replica={owner_addr} status={} attempt={attempt}",
                        reply.status
                    ),
                );
                ctx.state.record_success(&owner_id);
                if attempt > 0 {
                    ctx.metrics.reroutes.fetch_add(1, Ordering::Relaxed);
                    request.trace_record_note(
                        Stage::Retry,
                        attempt_start,
                        Instant::now(),
                        format!("attempts={}", attempt + 1),
                    );
                }
                return passthrough(ctx, &reply);
            }
            outcome => {
                let detail = match &outcome {
                    Ok(reply) => format!(
                        "replica={owner_addr} status={} attempt={attempt} unsound",
                        reply.status
                    ),
                    Err(e) => {
                        format!(
                            "replica={owner_addr} attempt={attempt} error={:?}",
                            e.kind()
                        )
                    }
                };
                request.trace_record_note(Stage::Forward, forward_start, Instant::now(), detail);
                ctx.metrics.forward_failures.fetch_add(1, Ordering::Relaxed);
                let breaker_start = Instant::now();
                ctx.state.record_failure(&owner_id);
                request.trace_record_note(
                    Stage::Breaker,
                    breaker_start,
                    Instant::now(),
                    format!("replica={owner_id} failure recorded"),
                );
            }
        }
    }
    unavailable(ctx)
}

/// The routing key for one decoded request: the exact cache-key
/// equivalence the replica will use.
fn routing_key(wire_request: &wire::WireScanRequest) -> u64 {
    let platform = wire_request
        .platform
        .unwrap_or_else(|| detect_platform(&wire_request.bytes));
    scamdetect::request_fingerprint(platform, &wire_request.bytes)
}

fn parse_json_body(request: &HttpRequest) -> Result<Json, HttpResponse> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| HttpResponse::error(400, "request body is not valid utf-8"))?;
    Json::parse(text).map_err(|e| HttpResponse::error(400, &format!("invalid JSON: {e}")))
}

fn handle_scan(ctx: &RouterCtx, request: &HttpRequest) -> HttpResponse {
    let body = match parse_json_body(request) {
        Ok(body) => body,
        Err(response) => return response,
    };
    // Decode only as far as the routing key; the original body is what
    // gets forwarded (the replica re-validates it anyway).
    let wire_request = match wire::parse_scan_request(&body) {
        Ok(parsed) => parsed,
        Err(message) => return HttpResponse::error(400, &message),
    };
    let deadline = deadline_of(ctx, request);
    forward_owned(
        ctx,
        request,
        routing_key(&wire_request),
        "/scan",
        &request.body,
        deadline,
    )
}

fn handle_batch(ctx: &RouterCtx, request: &HttpRequest) -> HttpResponse {
    let body = match parse_json_body(request) {
        Ok(body) => body,
        Err(response) => return response,
    };
    let Some(items) = body.get("requests").and_then(Json::as_array) else {
        return HttpResponse::error(400, "missing 'requests' array");
    };
    if items.len() > wire::MAX_BATCH_REQUESTS {
        return HttpResponse::error(
            413,
            &format!(
                "batch of {} exceeds the {} request cap",
                items.len(),
                wire::MAX_BATCH_REQUESTS
            ),
        );
    }

    // Per slot: undecodable → local error (same message the replica
    // would produce, it is the same parser); decodable → routing key.
    let mut results: Vec<Option<Json>> = vec![None; items.len()];
    let mut pending: Vec<(usize, u64)> = Vec::with_capacity(items.len());
    for (slot, item) in items.iter().enumerate() {
        match wire::parse_scan_request(item) {
            Ok(wire_request) => pending.push((slot, routing_key(&wire_request))),
            Err(message) => results[slot] = Some(obj([("error", Json::from(message))])),
        }
    }

    let deadline = deadline_of(ctx, request);
    let trace_hex = request.trace_id().map(|id| id.to_hex());
    let forward_headers: Vec<(&str, &str)> = trace_hex
        .as_deref()
        .map(|hex| ("x-trace-id", hex))
        .into_iter()
        .collect();
    let mut model: Option<(String, u64)> = None;
    // Ownership can shift mid-batch (a forward failure rebalances), so
    // group → forward → regroup leftovers, bounded by fleet size times
    // the breaker's failures-to-trip, and by the deadline budget.
    let (_, total) = ctx.state.up_counts();
    for _round in 0..(total * ctx.attempts_per_replica + 1) {
        if pending.is_empty() {
            break;
        }
        // Group the still-unanswered slots by current owner.
        let mut groups: HashMap<String, (SocketAddr, Vec<(usize, u64)>)> = HashMap::new();
        let mut unowned = false;
        for &(slot, key) in &pending {
            match ctx.state.owner_of(key) {
                Some((id, addr)) => {
                    groups
                        .entry(id)
                        .or_insert_with(|| (addr, Vec::new()))
                        .1
                        .push((slot, key));
                }
                None => unowned = true,
            }
        }
        if unowned || groups.is_empty() {
            return unavailable(ctx);
        }
        let mut still_pending: Vec<(usize, u64)> = Vec::new();
        let mut owner_ids: Vec<&String> = groups.keys().collect();
        owner_ids.sort(); // deterministic forward order
        let owner_ids: Vec<String> = owner_ids.into_iter().cloned().collect();
        for owner_id in owner_ids {
            let (addr, slots) = groups.remove(&owner_id).expect("grouped");
            let Some(remaining) = remaining_budget(deadline) else {
                return deadline_exhausted(ctx);
            };
            let sub_body = Json::Obj(vec![(
                "requests".to_string(),
                Json::Arr(slots.iter().map(|&(slot, _)| items[slot].clone()).collect()),
            )])
            .render();
            let timeout = remaining.min(ctx.forward_timeout);
            let forward_start = Instant::now();
            let outcome = ctx.pool.roundtrip(
                addr,
                "POST",
                "/batch",
                sub_body.as_bytes(),
                timeout,
                &forward_headers,
            );
            request.trace_record_note(
                Stage::Forward,
                forward_start,
                Instant::now(),
                match &outcome {
                    Ok(reply) => format!(
                        "replica={addr} status={} slots={}",
                        reply.status,
                        slots.len()
                    ),
                    Err(e) => format!("replica={addr} slots={} error={:?}", slots.len(), e.kind()),
                },
            );
            // A 200 with results for every slot settles the group; a
            // transport error, a torn/short body, or a backpressure
            // status (408/429/503) feeds the breaker and re-pends the
            // slots for the next round's (possibly rebalanced) owner.
            let mut settled = false;
            if let Ok(reply) = &outcome {
                if reply.status == 200 {
                    if let Ok(parsed) = Json::parse(&reply.body) {
                        let sub_results = parsed.get("results").and_then(Json::as_array);
                        if let Some(sub_results) = sub_results {
                            if sub_results.len() == slots.len() {
                                if model.is_none() {
                                    let id =
                                        parsed.get("model").and_then(Json::as_str).unwrap_or("");
                                    let epoch = parsed
                                        .get("model_epoch")
                                        .and_then(Json::as_f64)
                                        .unwrap_or(0.0)
                                        as u64;
                                    model = Some((id.to_string(), epoch));
                                }
                                for (&(slot, _), result) in slots.iter().zip(sub_results) {
                                    results[slot] = Some(result.clone());
                                }
                                ctx.state.record_success(&owner_id);
                                settled = true;
                            }
                        }
                    }
                } else if !matches!(reply.status, 408 | 429 | 503) {
                    // The replica is alive and deliberately rejected the
                    // sub-batch; that is a real (non-transport) error —
                    // surface it rather than retrying a hopeless send.
                    return HttpResponse::error(
                        502,
                        &format!(
                            "replica {owner_id} answered {}: {}",
                            reply.status, reply.body
                        ),
                    );
                }
            }
            if !settled {
                ctx.metrics.forward_failures.fetch_add(1, Ordering::Relaxed);
                ctx.state.record_failure(&owner_id);
                ctx.metrics.reroutes.fetch_add(1, Ordering::Relaxed);
                still_pending.extend(slots);
            }
        }
        pending = still_pending;
    }
    if !pending.is_empty() {
        return unavailable(ctx);
    }

    let (model_id, model_epoch) = model.unwrap_or_default();
    HttpResponse::json(
        200,
        &obj([
            ("model", Json::from(model_id)),
            ("model_epoch", Json::from(model_epoch)),
            (
                "results",
                Json::Arr(
                    results
                        .into_iter()
                        .map(|r| r.expect("every slot filled"))
                        .collect(),
                ),
            ),
        ]),
    )
}

fn handle_fleet(ctx: &RouterCtx) -> HttpResponse {
    let statuses = ctx.state.statuses();
    let shares: HashMap<String, usize> = ctx.state.shares().into_iter().collect();
    let replicas: Vec<Json> = statuses
        .iter()
        .map(|s| {
            obj([
                ("id", Json::from(s.id.as_str())),
                ("up", Json::from(s.up)),
                ("breaker", Json::from(s.breaker.as_str())),
                (
                    "slices",
                    Json::from(shares.get(&s.id).copied().unwrap_or(0) as u64),
                ),
                (
                    "consecutive_failures",
                    Json::from(u64::from(s.consecutive_failures)),
                ),
                ("recoveries", Json::from(u64::from(s.recoveries))),
                ("model", s.model.as_deref().map_or(Json::Null, Json::from)),
                ("model_epoch", s.model_epoch.map_or(Json::Null, Json::from)),
            ])
        })
        .collect();
    let (up, total) = ctx.state.up_counts();
    HttpResponse::json(
        200,
        &obj([
            ("vnodes", Json::from(ctx.state.vnodes() as u64)),
            (
                "slices",
                Json::from((ctx.state.vnodes() * crate::ring::SLICES_PER_VNODE) as u64),
            ),
            ("replicas_up", Json::from(up as u64)),
            ("replicas_total", Json::from(total as u64)),
            ("rebalances", Json::from(ctx.state.rebalances())),
            ("replicas", Json::Arr(replicas)),
        ]),
    )
}

fn render_router_metrics(ctx: &RouterCtx) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(1024);
    let mut metric = |name: &str, kind: &str, help: &str, value: u64| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} {kind}");
        let _ = writeln!(out, "{name} {value}");
    };
    let m = &ctx.metrics;
    metric(
        "scamdetect_fleet_scan_requests_total",
        "counter",
        "scan requests routed",
        m.routed_scan.load(Ordering::Relaxed),
    );
    metric(
        "scamdetect_fleet_batch_requests_total",
        "counter",
        "batch requests routed",
        m.routed_batch.load(Ordering::Relaxed),
    );
    metric(
        "scamdetect_fleet_forward_failures_total",
        "counter",
        "transport-level forward failures (each marks a replica down)",
        m.forward_failures.load(Ordering::Relaxed),
    );
    metric(
        "scamdetect_fleet_reroutes_total",
        "counter",
        "requests re-routed to a rebalanced owner after a failure",
        m.reroutes.load(Ordering::Relaxed),
    );
    metric(
        "scamdetect_fleet_unavailable_total",
        "counter",
        "requests answered 503 (no up replica for the slice)",
        m.unavailable.load(Ordering::Relaxed),
    );
    metric(
        "scamdetect_fleet_deadline_exhausted_total",
        "counter",
        "requests answered 503 because their deadline budget ran out",
        m.deadline_exhausted.load(Ordering::Relaxed),
    );
    metric(
        "scamdetect_fleet_rebalances_total",
        "counter",
        "ring membership flips",
        ctx.state.rebalances(),
    );
    metric(
        "scamdetect_fleet_flaps_total",
        "counter",
        "post-recovery down flips (a flapping replica re-trips its breaker)",
        ctx.state.flaps(),
    );
    let (open, half_open) = ctx.state.breaker_counts();
    metric(
        "scamdetect_fleet_breaker_open",
        "gauge",
        "replicas whose circuit breaker is open",
        open as u64,
    );
    metric(
        "scamdetect_fleet_breaker_half_open",
        "gauge",
        "replicas whose circuit breaker is half-open (probation)",
        half_open as u64,
    );
    let (up, total) = ctx.state.up_counts();
    metric(
        "scamdetect_fleet_replicas_up",
        "gauge",
        "replicas currently in the ring",
        up as u64,
    );
    metric(
        "scamdetect_fleet_replicas_total",
        "gauge",
        "replicas configured",
        total as u64,
    );
    if ctx.trace.enabled() {
        let (kept, dropped) = ctx.trace.ring_counts();
        metric(
            "scamdetect_fleet_traces_kept_total",
            "counter",
            "router request traces kept in the ring",
            kept,
        );
        metric(
            "scamdetect_fleet_traces_dropped_total",
            "counter",
            "router request traces dropped (ring contention)",
            dropped,
        );
    }

    // ── Lifecycle roll-up ──────────────────────────────────────────
    // The one registration point in the serve crate
    // (`LIFECYCLE_COUNTERS`) drives the fleet aggregation too: every
    // counter in the family is scraped from each up replica and summed
    // under a `scamdetect_fleet_` prefix, so feedback volume and
    // shadow agreement are fleet-wide reads off one endpoint. The
    // family is label-free by construction, which is what makes the
    // bare-name `parse_metric` sum sound.
    let mut sums = vec![0u64; scamdetect_serve::LIFECYCLE_COUNTERS.len()];
    let mut scraped = 0u64;
    for status in ctx.state.statuses().iter().filter(|s| s.up) {
        let Ok(reply) = ctx.pool.roundtrip(
            status.addr,
            "GET",
            "/metrics",
            &[],
            ctx.forward_timeout,
            &[],
        ) else {
            continue;
        };
        if reply.status != 200 {
            continue;
        }
        scraped += 1;
        for (sum, def) in sums.iter_mut().zip(scamdetect_serve::LIFECYCLE_COUNTERS) {
            if let Some(value) = crate::client::parse_metric(&reply.body, def.name) {
                *sum += value as u64;
            }
        }
    }
    metric(
        "scamdetect_fleet_lifecycle_scrape_replicas",
        "gauge",
        "up replicas whose lifecycle counters landed in this scrape",
        scraped,
    );
    for (def, sum) in scamdetect_serve::LIFECYCLE_COUNTERS.iter().zip(&sums) {
        let name = format!(
            "scamdetect_fleet_{}",
            def.name.trim_start_matches("scamdetect_")
        );
        metric(&name, "counter", def.help, *sum);
    }
    out
}
