//! Per-replica circuit breakers: closed → open → half-open.
//!
//! The old health model was binary — one failed probe or forward
//! flipped a replica out of the ring, one good probe flipped it back.
//! That is both trigger-happy (a single dropped packet rebalances the
//! whole ring) and blind to **brownouts**: a replica that still answers
//! probes but fails half its traffic never leaves the ring at all.
//!
//! The breaker fixes both with two trip conditions and a staged
//! recovery:
//!
//! * **Trip** (closed → open) on `consecutive_failures` failures in a
//!   row *or* on an error rate ≥ `error_rate` over a sliding window of
//!   recent outcomes (once at least `min_samples` are in the window) —
//!   the second condition catches the brownout the first cannot.
//! * **Cooldown** while open: probes are suppressed for
//!   `cooldown × 2^reopens` (capped), plus a deterministic per-replica
//!   jitter so a fleet of routers does not re-probe a recovering
//!   replica in lockstep.
//! * **Half-open** after the cooldown: probe successes accumulate; only
//!   `half_open_successes` consecutive good probes re-close the breaker
//!   (and readmit the replica to the ring). One failure in half-open
//!   re-opens with a longer cooldown.
//!
//! The breaker records outcomes and decides state; ring membership and
//! flap accounting live in [`crate::health::FleetState`], which owns
//! one breaker per replica.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Sliding-window capacity (bitmask bits): the error rate is computed
/// over at most this many recent outcomes.
const WINDOW_BITS: u32 = 64;

/// Cap on the cooldown's exponential growth (2^6 = 64× base).
const MAX_REOPEN_EXP: u32 = 6;

/// Breaker thresholds. Defaults suit a loopback fleet with sub-second
/// probe intervals; the CLI exposes each as a flag.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker (the fast path for a
    /// hard-down replica).
    pub consecutive_failures: u32,
    /// Error rate over the sliding window that trips the breaker (the
    /// brownout path), in `0.0..=1.0`.
    pub error_rate: f64,
    /// Minimum outcomes in the window before the error-rate condition
    /// is allowed to trip (stops one early failure reading as 100%).
    pub min_samples: u32,
    /// Base cooldown while open; doubles on every re-open (capped).
    pub cooldown: Duration,
    /// Consecutive half-open probe successes required to re-close.
    pub half_open_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            consecutive_failures: 2,
            error_rate: 0.5,
            min_samples: 8,
            cooldown: Duration::from_millis(500),
            half_open_successes: 2,
        }
    }
}

/// Where the breaker stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: traffic flows, outcomes are recorded.
    Closed,
    /// Tripped: no traffic, probes suppressed until the cooldown ends.
    Open,
    /// Probation: probes flow, successes accumulate toward re-close.
    HalfOpen,
}

impl BreakerState {
    /// Lowercase label for metrics and `/fleet` JSON.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// What a recorded outcome changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// No state change.
    None,
    /// This outcome tripped the breaker closed → open (the caller
    /// should eject the replica from the ring).
    Opened,
    /// This outcome completed half-open probation (the caller should
    /// readmit the replica).
    Closed,
}

struct BreakerInner {
    state: BreakerState,
    /// Consecutive failures since the last success (closed state).
    consecutive: u32,
    /// Outcome bitmask, newest in bit 0; 1 = failure.
    window: u64,
    /// Outcomes recorded into the window, saturating at [`WINDOW_BITS`].
    window_len: u32,
    /// When the breaker last opened.
    opened_at: Option<Instant>,
    /// Times the breaker has opened (drives the cooldown exponent).
    reopens: u32,
    /// Successes accumulated in half-open.
    probation_successes: u32,
}

/// One replica's breaker. All methods take `&self`; a small mutex
/// serializes outcome recording (the router's forward path records one
/// outcome per request — negligible next to the socket work around it).
pub struct CircuitBreaker {
    config: BreakerConfig,
    /// FNV-1a of the replica id: the deterministic jitter seed.
    jitter_seed: u64,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A closed breaker for the replica named `id` (the id only feeds
    /// the deterministic probe jitter).
    #[must_use]
    pub fn new(id: &str, config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            jitter_seed: fnv1a(id.as_bytes()),
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive: 0,
                window: 0,
                window_len: 0,
                opened_at: None,
                reopens: 0,
                probation_successes: 0,
            }),
        }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// Failure rate over the sliding window (`0.0` before any sample).
    #[must_use]
    pub fn error_rate(&self) -> f64 {
        let inner = self.lock();
        if inner.window_len == 0 {
            return 0.0;
        }
        let mask = mask_of(inner.window_len);
        f64::from((inner.window & mask).count_ones()) / f64::from(inner.window_len)
    }

    /// Records a successful outcome (forward or probe).
    pub fn record_success(&self) -> Transition {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive = 0;
                push_outcome(&mut inner, false);
                Transition::None
            }
            // A success against an open breaker is the first half-open
            // probe landing: enter probation.
            BreakerState::Open | BreakerState::HalfOpen => {
                inner.state = BreakerState::HalfOpen;
                inner.probation_successes += 1;
                if inner.probation_successes >= self.config.half_open_successes {
                    inner.state = BreakerState::Closed;
                    inner.consecutive = 0;
                    inner.window = 0;
                    inner.window_len = 0;
                    inner.opened_at = None;
                    inner.probation_successes = 0;
                    Transition::Closed
                } else {
                    Transition::None
                }
            }
        }
    }

    /// Records a failed outcome (forward or probe) observed at `now`.
    pub fn record_failure(&self, now: Instant) -> Transition {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive = inner.consecutive.saturating_add(1);
                push_outcome(&mut inner, true);
                let mask = mask_of(inner.window_len);
                let rate =
                    f64::from((inner.window & mask).count_ones()) / f64::from(inner.window_len);
                let consecutive_trip = inner.consecutive >= self.config.consecutive_failures;
                let rate_trip =
                    inner.window_len >= self.config.min_samples && rate >= self.config.error_rate;
                if consecutive_trip || rate_trip {
                    open(&mut inner, now);
                    Transition::Opened
                } else {
                    Transition::None
                }
            }
            // A half-open failure aborts probation: re-open with a
            // longer cooldown. Already-open failures (a racing forward
            // that was in flight when the breaker tripped) just refresh
            // the cooldown clock.
            BreakerState::HalfOpen => {
                open(&mut inner, now);
                Transition::None
            }
            BreakerState::Open => {
                inner.opened_at = Some(now);
                Transition::None
            }
        }
    }

    /// Should the health prober attempt this replica at `now`? Closed
    /// and half-open replicas are probed every tick; open ones only
    /// once their (exponential, jittered) cooldown has elapsed.
    #[must_use]
    pub fn probe_due(&self, now: Instant) -> bool {
        let inner = self.lock();
        match inner.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => match inner.opened_at {
                Some(at) => now.duration_since(at) >= self.current_cooldown(inner.reopens),
                None => true,
            },
        }
    }

    /// The open-state cooldown after `reopens` trips: exponential with
    /// a deterministic per-replica jitter (up to +25% of the base), so
    /// recovering replicas across a fleet of routers are not re-probed
    /// in lockstep.
    #[must_use]
    pub fn current_cooldown(&self, reopens: u32) -> Duration {
        let exp = reopens.saturating_sub(1).min(MAX_REOPEN_EXP);
        let base = self.config.cooldown * (1u32 << exp);
        let quarter = (self.config.cooldown.as_millis() as u64 / 4).max(1);
        let jitter = splitmix64(self.jitter_seed ^ u64::from(reopens)) % quarter;
        base + Duration::from_millis(jitter)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

fn open(inner: &mut BreakerInner, now: Instant) {
    inner.state = BreakerState::Open;
    inner.opened_at = Some(now);
    inner.reopens = inner.reopens.saturating_add(1);
    inner.probation_successes = 0;
    inner.consecutive = 0;
}

fn push_outcome(inner: &mut BreakerInner, failure: bool) {
    inner.window = (inner.window << 1) | u64::from(failure);
    inner.window_len = (inner.window_len + 1).min(WINDOW_BITS);
}

fn mask_of(len: u32) -> u64 {
    if len >= WINDOW_BITS {
        u64::MAX
    } else {
        (1u64 << len) - 1
    }
}

/// FNV-1a over bytes — the workspace's standard no-dependency hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// splitmix64: one multiply-xor-shift round, enough to decorrelate the
/// jitter across `(replica, reopens)` pairs.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker::new("127.0.0.1:40000", config)
    }

    #[test]
    fn consecutive_failures_trip_and_probation_recloses() {
        let b = breaker(BreakerConfig::default());
        let now = Instant::now();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(
            b.record_failure(now),
            Transition::None,
            "one failure is noise"
        );
        assert_eq!(
            b.record_failure(now),
            Transition::Opened,
            "two in a row trip"
        );
        assert_eq!(b.state(), BreakerState::Open);
        // First good probe enters probation, second re-closes.
        assert_eq!(b.record_success(), Transition::None);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.record_success(), Transition::Closed);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn a_success_between_failures_resets_the_consecutive_count() {
        let b = breaker(BreakerConfig {
            min_samples: 64, // keep the rate condition out of the way
            ..BreakerConfig::default()
        });
        let now = Instant::now();
        for _ in 0..10 {
            assert_eq!(b.record_failure(now), Transition::None);
            assert_eq!(b.record_success(), Transition::None);
        }
        assert_eq!(b.state(), BreakerState::Closed, "never two in a row");
    }

    #[test]
    fn error_rate_catches_the_brownout_consecutive_count_misses() {
        // Alternating success/failure: consecutive never reaches 2, but
        // the window hits 50% error rate once min_samples accumulate.
        let b = breaker(BreakerConfig {
            consecutive_failures: 2,
            error_rate: 0.5,
            min_samples: 8,
            ..BreakerConfig::default()
        });
        let now = Instant::now();
        let mut tripped = false;
        for _ in 0..8 {
            b.record_success();
            if b.record_failure(now) == Transition::Opened {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "a 50% brownout must trip the rate condition");
    }

    #[test]
    fn half_open_failure_reopens_with_a_longer_cooldown() {
        let b = breaker(BreakerConfig {
            cooldown: Duration::from_millis(100),
            ..BreakerConfig::default()
        });
        let now = Instant::now();
        b.record_failure(now);
        b.record_failure(now); // trips: reopens = 1
        b.record_success(); // half-open
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_failure(now); // probation aborted: reopens = 2
        assert_eq!(b.state(), BreakerState::Open);
        assert!(
            b.current_cooldown(2) >= b.current_cooldown(1),
            "the cooldown must not shrink on a re-open"
        );
        assert!(
            b.current_cooldown(2) >= Duration::from_millis(200),
            "second open doubles the base cooldown"
        );
    }

    #[test]
    fn open_suppresses_probes_until_the_cooldown_elapses() {
        let b = breaker(BreakerConfig {
            cooldown: Duration::from_millis(100),
            ..BreakerConfig::default()
        });
        let opened = Instant::now();
        b.record_failure(opened);
        b.record_failure(opened);
        assert!(!b.probe_due(opened), "fresh open: not due");
        assert!(
            !b.probe_due(opened + Duration::from_millis(50)),
            "mid-cooldown: not due"
        );
        assert!(
            b.probe_due(opened + Duration::from_millis(200)),
            "past cooldown + max jitter: due"
        );
    }

    #[test]
    fn jitter_is_deterministic_and_replica_specific() {
        let config = BreakerConfig {
            cooldown: Duration::from_millis(400),
            ..BreakerConfig::default()
        };
        let a1 = CircuitBreaker::new("127.0.0.1:1", config.clone());
        let a2 = CircuitBreaker::new("127.0.0.1:1", config.clone());
        let c = CircuitBreaker::new("127.0.0.1:2", config);
        assert_eq!(
            a1.current_cooldown(1),
            a2.current_cooldown(1),
            "same replica, same reopen count: identical jitter"
        );
        assert_ne!(
            a1.current_cooldown(1),
            c.current_cooldown(1),
            "distinct replicas must not probe in lockstep"
        );
    }

    #[test]
    fn reclose_clears_the_window() {
        let b = breaker(BreakerConfig::default());
        let now = Instant::now();
        b.record_failure(now);
        b.record_failure(now); // open
        b.record_success();
        b.record_success(); // closed again
        assert_eq!(b.error_rate(), 0.0, "probation wipes the stale window");
        assert_eq!(
            b.record_failure(now),
            Transition::None,
            "one failure after recovery is noise again"
        );
    }
}
