//! Staged fleet-wide model rollout: push → verify → canary → compare →
//! promote, with automatic rollback on any failure past the push.
//!
//! ```text
//!          ┌────────┐   all replicas   ┌────────┐  echo == local
//!          │  PUSH  ├─────────────────▶│ VERIFY │  FNV-1a on every
//!          └────────┘  PUT /models/id  └───┬────┘  replica
//!                                          │
//!                                          ▼
//!          ┌────────┐  pinned reload   ┌────────┐  probes 200, scan
//!          │ CANARY │◀─────────────────┤        │  failures flat,
//!          │ 1 node │  POST /models/   │COMPARE │  /metrics names the
//!          └───┬────┘      reload      └───┬────┘  new model
//!              │                           │
//!              │ any failure               │ pass
//!              ▼                           ▼
//!          ┌────────┐                  ┌─────────┐  pinned reload on
//!          │ ABORT  │                  │ PROMOTE │  every remaining
//!          │ = pin  │                  └─────────┘  replica, healthz
//!          │ back + │                                must agree
//!          │ DELETE │
//!          └────────┘
//! ```
//!
//! The rollout never leaves the fleet torn on failure: the canary is
//! pinned back to the model it served before, and the rejected
//! artifact is deleted from every replica it reached. A failure during
//! *promote* (some replicas already swapped) is reported loudly with
//! per-replica state instead of silently half-rolled — the operator
//! decides whether to re-run or roll back, because by then the canary
//! has proven the model serves correctly.

use crate::client::{
    delete_model, fetch_metric, probe_healthz, push_artifact, reload_model, shadow_promote,
    shadow_start, shadow_status, shadow_stop, ReplicaError,
};
use scamdetect_serve::client::http_call_with_timeout;
use scamdetect_serve::json::Json;
use scamdetect_serve::wire::encode_hex;
use std::net::SocketAddr;
use std::time::Duration;

/// Which stage a rollout failed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutStage {
    /// Pushing artifact bytes to the replicas.
    Push,
    /// Checksum handshake verification.
    Verify,
    /// Shadow-scoring the candidate on mirrored canary traffic.
    Shadow,
    /// Swapping the canary replica.
    Canary,
    /// Judging the canary under probe traffic.
    Compare,
    /// Fleet-wide promotion.
    Promote,
}

impl std::fmt::Display for RolloutStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            RolloutStage::Push => "push",
            RolloutStage::Verify => "verify",
            RolloutStage::Shadow => "shadow",
            RolloutStage::Canary => "canary",
            RolloutStage::Compare => "compare",
            RolloutStage::Promote => "promote",
        };
        f.write_str(name)
    }
}

/// A failed rollout: which stage, why, and whether the automatic
/// rollback completed.
#[derive(Debug)]
pub struct RolloutError {
    /// Stage the failure occurred in.
    pub stage: RolloutStage,
    /// What went wrong.
    pub message: String,
    /// `true` when the canary was pinned back and the candidate
    /// artifact deleted everywhere it had landed.
    pub rolled_back: bool,
    /// The log lines accumulated before the failure.
    pub log: Vec<String>,
}

impl std::fmt::Display for RolloutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rollout failed at {}: {} (rolled back: {})",
            self.stage, self.message, self.rolled_back
        )
    }
}

impl std::error::Error for RolloutError {}

/// What to roll out and how to judge the canary.
#[derive(Debug, Clone)]
pub struct RolloutPlan {
    /// The whole fleet; `replicas[canary]` is swapped first.
    pub replicas: Vec<SocketAddr>,
    /// Artifact id the fleet will serve (file stem on each replica).
    pub model_id: String,
    /// Raw `ModelArtifact` bytes to push.
    pub artifact: Vec<u8>,
    /// Index of the canary replica.
    pub canary: usize,
    /// Contract bytecodes smoked through the canary after its swap;
    /// every probe must score (HTTP 200) on the new model.
    pub probes: Vec<Vec<u8>>,
    /// Per-call timeout.
    pub timeout: Duration,
    /// `Some` interposes a shadow-scoring gate before the canary swap:
    /// the candidate is loaded alongside the canary's champion, probes
    /// are replayed as real mirrored traffic (the champion answers the
    /// wire, the candidate scores off-path), and the swap happens via
    /// the replica's thresholded `/shadow/promote` instead of a blind
    /// reload.
    pub shadow: Option<ShadowPlan>,
}

/// The shadow gate ahead of the canary swap ([`RolloutPlan::shadow`]).
#[derive(Debug, Clone)]
pub struct ShadowPlan {
    /// Mirrored scans the candidate must score before promotion.
    pub min_samples: u64,
    /// Champion-agreement ratio the candidate must clear.
    pub min_agreement: f64,
    /// Probe-replay rounds to attempt before giving up on reaching
    /// `min_samples` (a full shadow queue drops mirrors, so one round
    /// is not guaranteed to land one sample per probe).
    pub max_rounds: usize,
}

impl Default for ShadowPlan {
    fn default() -> ShadowPlan {
        ShadowPlan {
            min_samples: 32,
            min_agreement: 0.95,
            max_rounds: 64,
        }
    }
}

/// A completed (promoted) rollout.
#[derive(Debug)]
pub struct RolloutReport {
    /// The now-fleet-wide model id.
    pub model_id: String,
    /// FNV-1a every replica verified during push.
    pub checksum: u64,
    /// The canary's address.
    pub canary: SocketAddr,
    /// `(replica, served model, epoch)` after promotion.
    pub fleet: Vec<(SocketAddr, String, u64)>,
    /// Human-readable stage log.
    pub log: Vec<String>,
}

/// Runs the full staged rollout. See the module docs for the state
/// machine; on `Err` the rollback status is inside the error.
///
/// # Errors
///
/// [`RolloutError`] naming the failed stage.
///
/// # Panics
///
/// When `plan.replicas` is empty or `plan.canary` is out of range.
pub fn run_rollout(plan: &RolloutPlan) -> Result<RolloutReport, RolloutError> {
    assert!(!plan.replicas.is_empty(), "rollout needs replicas");
    assert!(plan.canary < plan.replicas.len(), "canary index in range");
    let mut log: Vec<String> = Vec::new();
    let canary_addr = plan.replicas[plan.canary];

    // ── PUSH + VERIFY ──────────────────────────────────────────────
    // `push_artifact` performs the checksum handshake per replica (the
    // request carries the expected FNV-1a, the replica re-hashes and
    // 409s on mismatch, the response echo is checked against our local
    // hash), so a successful push IS a verified push. Track where the
    // artifact landed for rollback.
    let mut pushed_to: Vec<SocketAddr> = Vec::new();
    let mut checksum = 0u64;
    for &addr in &plan.replicas {
        match push_artifact(addr, plan.timeout, &plan.model_id, &plan.artifact) {
            Ok(sum) => {
                checksum = sum;
                pushed_to.push(addr);
                log.push(format!(
                    "push: {addr} accepted '{}' ({} bytes, fnv1a {sum:#018x})",
                    plan.model_id,
                    plan.artifact.len()
                ));
            }
            Err(e) => {
                let rolled_back = cleanup_artifact(&pushed_to, plan, &mut log);
                return Err(RolloutError {
                    stage: stage_of_push_error(&e),
                    message: e.to_string(),
                    rolled_back,
                    log,
                });
            }
        }
    }
    log.push(format!(
        "verify: all {} replicas hold fnv1a {checksum:#018x}",
        plan.replicas.len()
    ));

    // ── CANARY ─────────────────────────────────────────────────────
    // Remember what the canary serves now: that is the rollback pin.
    let before = probe_healthz(canary_addr, plan.timeout).map_err(|e| RolloutError {
        stage: RolloutStage::Canary,
        message: format!("cannot snapshot canary before swap: {e}"),
        rolled_back: cleanup_artifact(&pushed_to, plan, &mut log),
        log: log.clone(),
    })?;
    if before.model == plan.model_id {
        return Err(RolloutError {
            stage: RolloutStage::Canary,
            message: format!("canary already serves '{}'", plan.model_id),
            rolled_back: cleanup_artifact(&pushed_to, plan, &mut log),
            log,
        });
    }
    if let Some(shadow) = &plan.shadow {
        // ── SHADOW ─────────────────────────────────────────────────
        // The candidate scores real mirrored canary traffic off the
        // response path; the swap is the replica's own thresholded
        // promote. The champion never stops serving, so a failure here
        // only needs the session torn down + the artifact deleted.
        if let Err(message) = shadow_canary(canary_addr, plan, shadow, &mut log) {
            if let Err(e) = shadow_stop(canary_addr, plan.timeout) {
                log.push(format!("rollback: shadow stop FAILED: {e}"));
            }
            let rolled_back = cleanup_artifact(&pushed_to, plan, &mut log);
            return Err(RolloutError {
                stage: RolloutStage::Shadow,
                message,
                rolled_back,
                log,
            });
        }
    } else {
        match reload_model(canary_addr, plan.timeout, Some(&plan.model_id)) {
            Ok((active, epoch)) if active == plan.model_id => {
                log.push(format!(
                    "canary: {canary_addr} swapped '{}' → '{active}' (epoch {epoch})",
                    before.model
                ));
            }
            Ok((active, _)) => {
                let rolled_back = rollback(canary_addr, &before.model, &pushed_to, plan, &mut log);
                return Err(RolloutError {
                    stage: RolloutStage::Canary,
                    message: format!("canary swapped to '{active}', wanted '{}'", plan.model_id),
                    rolled_back,
                    log,
                });
            }
            Err(e) => {
                let rolled_back = rollback(canary_addr, &before.model, &pushed_to, plan, &mut log);
                return Err(RolloutError {
                    stage: RolloutStage::Canary,
                    message: e.to_string(),
                    rolled_back,
                    log,
                });
            }
        }
    }

    // ── COMPARE ────────────────────────────────────────────────────
    if let Err(message) = judge_canary(canary_addr, plan, &mut log) {
        let rolled_back = rollback(canary_addr, &before.model, &pushed_to, plan, &mut log);
        return Err(RolloutError {
            stage: RolloutStage::Compare,
            message,
            rolled_back,
            log,
        });
    }

    // ── PROMOTE ────────────────────────────────────────────────────
    // Past this point we do NOT auto-rollback: the canary proved the
    // model serves, so a partial promotion is a retry-forward
    // situation, not a destroy-the-candidate one.
    let mut fleet: Vec<(SocketAddr, String, u64)> = Vec::new();
    for &addr in &plan.replicas {
        if addr == canary_addr {
            continue;
        }
        match reload_model(addr, plan.timeout, Some(&plan.model_id)) {
            Ok((active, epoch)) if active == plan.model_id => {
                log.push(format!(
                    "promote: {addr} now serves '{active}' (epoch {epoch})"
                ));
            }
            Ok((active, _)) => {
                return Err(RolloutError {
                    stage: RolloutStage::Promote,
                    message: format!("{addr} swapped to '{active}', wanted '{}'", plan.model_id),
                    rolled_back: false,
                    log,
                });
            }
            Err(e) => {
                return Err(RolloutError {
                    stage: RolloutStage::Promote,
                    message: e.to_string(),
                    rolled_back: false,
                    log,
                });
            }
        }
    }
    // Final agreement check across the whole fleet, canary included.
    for &addr in &plan.replicas {
        match probe_healthz(addr, plan.timeout) {
            Ok(health) if health.model == plan.model_id => {
                fleet.push((addr, health.model, health.model_epoch));
            }
            Ok(health) => {
                return Err(RolloutError {
                    stage: RolloutStage::Promote,
                    message: format!("{addr} reports '{}' after promotion", health.model),
                    rolled_back: false,
                    log,
                });
            }
            Err(e) => {
                return Err(RolloutError {
                    stage: RolloutStage::Promote,
                    message: e.to_string(),
                    rolled_back: false,
                    log,
                });
            }
        }
    }
    log.push(format!(
        "promote: fleet of {} agrees on '{}'",
        fleet.len(),
        plan.model_id
    ));
    Ok(RolloutReport {
        model_id: plan.model_id.clone(),
        checksum,
        canary: canary_addr,
        fleet,
        log,
    })
}

/// A push failure that mentions a checksum is a Verify failure (the
/// handshake caught corruption); anything else is transport/Push.
fn stage_of_push_error(e: &ReplicaError) -> RolloutStage {
    if e.message.contains("checksum") || e.message.contains("echoed") {
        RolloutStage::Verify
    } else {
        RolloutStage::Push
    }
}

/// The shadow gate: load the candidate beside the canary's champion,
/// replay the probes as real traffic (the champion answers each scan,
/// the daemon mirrors it to the candidate off-path), wait for the
/// mirror queue to drain, and promote through the replica's own
/// sample/agreement thresholds.
fn shadow_canary(
    canary: SocketAddr,
    plan: &RolloutPlan,
    shadow: &ShadowPlan,
    log: &mut Vec<String>,
) -> Result<(), String> {
    if plan.probes.is_empty() {
        return Err("shadow stage needs probe traffic to mirror".to_string());
    }
    let (candidate, epoch) =
        shadow_start(canary, plan.timeout, &plan.model_id).map_err(|e| e.to_string())?;
    log.push(format!(
        "shadow: {canary} mirroring traffic to '{candidate}' (candidate epoch {epoch})"
    ));

    let mut sent = 0u64;
    let mut status = crate::client::ShadowStatus::default();
    for round in 0..shadow.max_rounds.max(1) {
        for (i, probe) in plan.probes.iter().enumerate() {
            let body = format!(r#"{{"bytecode": "{}"}}"#, encode_hex(probe));
            let reply = http_call_with_timeout(canary, "POST", "/scan", Some(&body), plan.timeout)
                .map_err(|e| format!("mirror round {round} probe {i}: {e}"))?;
            if reply.status != 200 {
                return Err(format!(
                    "mirror round {round} probe {i}: HTTP {} — {}",
                    reply.status, reply.body
                ));
            }
        }
        sent += plan.probes.len() as u64;
        // Shadow scoring is asynchronous: wait until every mirror we
        // sent is either scored or dropped before judging the round.
        loop {
            status = shadow_status(canary, plan.timeout).map_err(|e| e.to_string())?;
            if !status.active {
                return Err("shadow session vanished mid-mirror".to_string());
            }
            if status.samples + status.dropped >= sent {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        if status.samples >= shadow.min_samples {
            break;
        }
    }
    if status.samples < shadow.min_samples {
        return Err(format!(
            "candidate scored {} mirrored scans across {} rounds ({} dropped), needed {}",
            status.samples, shadow.max_rounds, status.dropped, shadow.min_samples
        ));
    }
    log.push(format!(
        "shadow: candidate scored {} mirrored scans, agreement {:.3} ({} disagreements, {} dropped)",
        status.samples, status.agreement, status.disagreements, status.dropped
    ));

    // The replica re-checks the thresholds under its swap lock; this is
    // the epoch-bumped hot swap, not a separate reload.
    let (promoted, epoch) = shadow_promote(
        canary,
        plan.timeout,
        shadow.min_samples,
        shadow.min_agreement,
    )
    .map_err(|e| e.to_string())?;
    if promoted != plan.model_id {
        return Err(format!(
            "promote swapped to '{promoted}', wanted '{}'",
            plan.model_id
        ));
    }
    log.push(format!(
        "shadow: {canary} promoted '{promoted}' (epoch {epoch})"
    ));
    Ok(())
}

/// Judge the swapped canary: every probe must score, the failure
/// counter must hold still, and `/metrics` must name the new model.
fn judge_canary(
    canary: SocketAddr,
    plan: &RolloutPlan,
    log: &mut Vec<String>,
) -> Result<(), String> {
    let failures_before = fetch_metric(canary, plan.timeout, "scamdetect_scan_failures_total")
        .map_err(|e| e.to_string())?;
    for (i, probe) in plan.probes.iter().enumerate() {
        let body = format!(r#"{{"bytecode": "{}"}}"#, encode_hex(probe));
        let reply = http_call_with_timeout(canary, "POST", "/scan", Some(&body), plan.timeout)
            .map_err(|e| format!("probe {i}: {e}"))?;
        if reply.status != 200 {
            return Err(format!("probe {i}: HTTP {} — {}", reply.status, reply.body));
        }
        let scored = Json::parse(&reply.body)
            .ok()
            .and_then(|v| v.get("score").and_then(Json::as_f64))
            .is_some_and(f64::is_finite);
        if !scored {
            return Err(format!("probe {i}: no finite score in {}", reply.body));
        }
    }
    let failures_after = fetch_metric(canary, plan.timeout, "scamdetect_scan_failures_total")
        .map_err(|e| e.to_string())?;
    if failures_after > failures_before {
        return Err(format!(
            "scan failures rose {failures_before} → {failures_after} under canary probes"
        ));
    }
    // The metrics page must attribute traffic to the candidate.
    let metrics_text = http_call_with_timeout(canary, "GET", "/metrics", None, plan.timeout)
        .map_err(|e| format!("metrics scrape: {e}"))?
        .body;
    if !metrics_text.contains(&format!("model=\"{}\"", plan.model_id)) {
        return Err("canary /metrics does not name the candidate model".to_string());
    }
    log.push(format!(
        "compare: {} probes scored on the canary, scan failures flat at {failures_after}",
        plan.probes.len()
    ));
    Ok(())
}

/// Pin the canary back, then delete the candidate everywhere it
/// landed. Returns `true` when every step succeeded.
fn rollback(
    canary: SocketAddr,
    previous_model: &str,
    pushed_to: &[SocketAddr],
    plan: &RolloutPlan,
    log: &mut Vec<String>,
) -> bool {
    let mut clean = true;
    match reload_model(canary, plan.timeout, Some(previous_model)) {
        Ok((active, epoch)) => {
            log.push(format!(
                "rollback: canary pinned back to '{active}' (epoch {epoch})"
            ));
            clean &= active == previous_model;
        }
        Err(e) => {
            log.push(format!("rollback: canary re-pin FAILED: {e}"));
            clean = false;
        }
    }
    clean & cleanup_artifact(pushed_to, plan, log)
}

/// Delete the candidate artifact from every replica it reached.
fn cleanup_artifact(pushed_to: &[SocketAddr], plan: &RolloutPlan, log: &mut Vec<String>) -> bool {
    let mut clean = true;
    for &addr in pushed_to {
        match delete_model(addr, plan.timeout, &plan.model_id) {
            Ok(()) => log.push(format!("rollback: {addr} deleted '{}'", plan.model_id)),
            Err(e) => {
                log.push(format!("rollback: delete on {addr} FAILED: {e}"));
                clean = false;
            }
        }
    }
    clean
}
