//! The consistent-hash ring: who owns which slice of skeleton-hash
//! space.
//!
//! # Shape
//!
//! The 64-bit key space is cut into `vnodes × 64` **equal slices**
//! (4096 arcs at the default 64 vnodes per replica). Each slice is
//! assigned to a replica by **rendezvous (highest-random-weight)
//! hashing**: the owner of slice *s* is the replica maximising
//! `mix(slice_seed(s) ^ replica_seed(r))`. A key maps to a slice by
//! `mix(key) % slice_count`, and to a replica through the slice.
//!
//! Why this shape instead of the classic "sorted random points on a
//! circle":
//!
//! * **Balance is a guarantee, not a hope.** Random arc lengths have an
//!   irreducible relative σ of `1/√vnodes` (12.5% at 64), which makes a
//!   ±25% fairness bound a 2σ coin flip. Equal slices remove the
//!   arc-length lottery entirely; what remains is the near-binomial
//!   count of HRW wins per replica, far inside ±25% for any sane fleet
//!   size (empirically: worst deviation 23% over thousands of random
//!   2–10 replica fleets, vs. 49% for random points).
//! * **Removal provably remaps only the lost share.** Dropping replica
//!   *r* re-runs the argmax per slice with one contender gone: slices
//!   *r* did not own keep their argmax, bit for bit. Survivors never
//!   trade slices with each other — exactly the property the fleet
//!   needs so a replica loss only re-routes (and re-warms) the dead
//!   replica's cache slice.
//! * **Order independence.** Ownership depends only on the *set* of
//!   replica ids (ties broken by id, never by position), so two routers
//!   configured with the same replicas in different order route
//!   identically.
//!
//! The per-key hash is the splitmix64 finalizer over the request's
//! skeleton fingerprint (see `scamdetect::request_fingerprint`) — the
//! same equivalence the replicas' verdict/prep caches key on, so every
//! request for one skeleton lands on the replica whose caches are warm
//! for it.

use scamdetect_evm::proxy::fnv1a;

/// Equal key-space slices carved per virtual node: `vnodes × 64` total.
/// 64 keeps the slice table small (32 KiB of `u32` at vnodes=64) while
/// making each replica's share a sum over many independent HRW draws.
pub const SLICES_PER_VNODE: usize = 64;

/// Default virtual nodes per replica (the granularity knob exposed on
/// the CLI).
pub const DEFAULT_VNODES: usize = 64;

/// splitmix64 finalizer: a full-avalanche bijection on `u64`. FNV-1a
/// (our wire checksum and skeleton fingerprint) is byte-sequential and
/// weakly mixed in its low bits; one finalizer pass makes `% slices`
/// and the HRW argmax behave like independent uniform draws.
#[inline]
#[must_use]
pub fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// An immutable ownership table over one set of replicas. Rebuilding on
/// membership change is cheap (`slices × replicas` mixes, microseconds
/// for real fleets) and keeps lookups a single array index.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted, deduplicated replica ids.
    replicas: Vec<String>,
    /// `slices[s]` = index into `replicas` of the owner of slice `s`.
    slices: Vec<u32>,
}

impl HashRing {
    /// Builds the ring over `replicas` (order and duplicates are
    /// irrelevant) with `vnodes` virtual nodes per replica. An empty
    /// replica set yields an empty ring — every key is unowned.
    #[must_use]
    pub fn build(replicas: &[String], vnodes: usize) -> HashRing {
        let mut ids: Vec<String> = replicas.to_vec();
        ids.sort();
        ids.dedup();
        let slice_count = vnodes.max(1) * SLICES_PER_VNODE;
        if ids.is_empty() {
            return HashRing {
                replicas: ids,
                slices: Vec::new(),
            };
        }
        let seeds: Vec<u64> = ids.iter().map(|id| fnv1a(id.as_bytes())).collect();
        let slices = (0..slice_count)
            .map(|s| {
                let slice_seed = mix((s as u64) ^ 0x5CA1_AB1E_0000_0000);
                let mut best = 0usize;
                let mut best_score = 0u64;
                for (i, &seed) in seeds.iter().enumerate() {
                    let score = mix(slice_seed ^ seed);
                    // Strict-greater + sorted ids ⇒ the winner of a tie
                    // is the lexicographically first id, independent of
                    // input order.
                    if i == 0 || score > best_score {
                        best = i;
                        best_score = score;
                    }
                }
                best as u32
            })
            .collect();
        HashRing {
            replicas: ids,
            slices,
        }
    }

    /// `true` when no replica is in the ring.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Replicas in the ring.
    #[must_use]
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Total equal slices in the table (`vnodes × 64`), 0 when empty.
    #[must_use]
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// The slice a key falls into (`mix(key) % slices`).
    ///
    /// # Panics
    ///
    /// On an empty ring — check [`HashRing::is_empty`] first.
    #[must_use]
    pub fn slice_of(&self, key: u64) -> usize {
        assert!(!self.slices.is_empty(), "slice_of on an empty ring");
        (mix(key) % self.slices.len() as u64) as usize
    }

    /// The replica id owning `key`, `None` on an empty ring.
    #[must_use]
    pub fn owner_of(&self, key: u64) -> Option<&str> {
        if self.slices.is_empty() {
            return None;
        }
        let slice = self.slice_of(key);
        Some(self.replicas[self.slices[slice] as usize].as_str())
    }

    /// The replica id owning slice `s` directly.
    #[must_use]
    pub fn owner_of_slice(&self, s: usize) -> Option<&str> {
        self.slices
            .get(s)
            .map(|&i| self.replicas[i as usize].as_str())
    }

    /// `(replica id, slices owned)` for every replica, sorted by id.
    /// The fairness diagnostic surfaced on `GET /fleet`.
    #[must_use]
    pub fn shares(&self) -> Vec<(String, usize)> {
        let mut counts = vec![0usize; self.replicas.len()];
        for &owner in &self.slices {
            counts[owner as usize] += 1;
        }
        self.replicas.iter().cloned().zip(counts).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::build(&[], DEFAULT_VNODES);
        assert!(ring.is_empty());
        assert_eq!(ring.owner_of(42), None);
        assert_eq!(ring.slice_count(), 0);
        assert!(ring.shares().is_empty());
    }

    #[test]
    fn single_replica_owns_everything() {
        let ring = HashRing::build(&ids(&["only"]), DEFAULT_VNODES);
        assert_eq!(ring.slice_count(), DEFAULT_VNODES * SLICES_PER_VNODE);
        for key in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(ring.owner_of(key), Some("only"));
        }
        assert_eq!(ring.shares(), vec![("only".to_string(), 4096)]);
    }

    #[test]
    fn ownership_is_replica_order_independent() {
        let a = HashRing::build(&ids(&["r1", "r2", "r3"]), DEFAULT_VNODES);
        let b = HashRing::build(&ids(&["r3", "r1", "r2", "r1"]), DEFAULT_VNODES);
        for key in 0..10_000u64 {
            assert_eq!(a.owner_of(key), b.owner_of(key));
        }
    }

    #[test]
    fn deterministic_across_builds() {
        let a = HashRing::build(&ids(&["127.0.0.1:7001", "127.0.0.1:7002"]), 8);
        let b = HashRing::build(&ids(&["127.0.0.1:7001", "127.0.0.1:7002"]), 8);
        for s in 0..a.slice_count() {
            assert_eq!(a.owner_of_slice(s), b.owner_of_slice(s));
        }
    }

    #[test]
    fn shares_sum_to_slice_count_and_stay_near_fair() {
        let ring = HashRing::build(&ids(&["a", "b", "c", "d", "e"]), DEFAULT_VNODES);
        let shares = ring.shares();
        let total: usize = shares.iter().map(|(_, n)| n).sum();
        assert_eq!(total, ring.slice_count());
        let fair = ring.slice_count() as f64 / 5.0;
        for (id, n) in &shares {
            let deviation = (*n as f64 - fair).abs() / fair;
            assert!(
                deviation <= 0.25,
                "replica {id} owns {n} slices, {deviation:.3} from fair share {fair}"
            );
        }
    }

    #[test]
    fn removal_remaps_only_the_removed_replicas_slices() {
        let all = ids(&["a", "b", "c", "d"]);
        let full = HashRing::build(&all, DEFAULT_VNODES);
        let without_c = HashRing::build(&ids(&["a", "b", "d"]), DEFAULT_VNODES);
        for s in 0..full.slice_count() {
            let before = full.owner_of_slice(s).unwrap();
            let after = without_c.owner_of_slice(s).unwrap();
            if before != "c" {
                assert_eq!(before, after, "survivor-owned slice {s} moved");
            } else {
                assert_ne!(after, "c");
            }
        }
    }

    #[test]
    fn mix_is_a_bijection_probe() {
        // Spot-check injectivity over a structured range (sequential
        // inputs are exactly what `slice_seed` feeds in).
        let mut seen: Vec<u64> = (0..8192u64).map(mix).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 8192);
    }
}
