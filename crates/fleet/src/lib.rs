//! # scamdetect-fleet
//!
//! The fleet layer over [`scamdetect-serve`]: one front-door router
//! that shards scan traffic across N replicas by **skeleton hash**, a
//! health monitor that rebalances the ring on replica loss, and a
//! staged **canary rollout** that distributes new model artifacts
//! fleet-wide without a restart. Std-only, like everything below it.
//!
//! ## Topology
//!
//! ```text
//!                         clients (POST /scan, /batch)
//!                                    │
//!                                    ▼
//!                     ┌──────────────────────────────┐
//!                     │        fleet router          │
//!                     │  key = request_fingerprint   │
//!                     │  ring: vnodes×64 equal       │
//!                     │  slices, rendezvous-placed   │──── GET /fleet,
//!                     │  ┌────────────────────────┐  │     /healthz,
//!                     │  │ health monitor         │  │     /metrics
//!                     │  │ GET /healthz each tick │  │
//!                     │  │ backoff when down      │  │
//!                     │  └────────────────────────┘  │
//!                     └──────┬────────┬────────┬─────┘
//!                 slice  ┌───┘        │        └───┐
//!                 owner  ▼            ▼            ▼
//!                ┌───────────┐ ┌───────────┐ ┌───────────┐
//!                │ serve #1  │ │ serve #2  │ │ serve #N  │
//!                │ caches hot│ │           │ │           │
//!                │ for slice1│ │   …       │ │   …       │
//!                └───────────┘ └───────────┘ └───────────┘
//! ```
//!
//! Routing keys on [`scamdetect::request_fingerprint`] — the exact
//! equivalence the replicas' verdict/prep caches use — so each
//! replica's [`ShardedLru`]/[`PrepCache`] stays hot for its slice of
//! skeleton space. Replica loss re-routes **only the lost slice**
//! (rendezvous placement; see [`ring`]), and a fleet with zero up
//! replicas answers `503` + `Retry-After` instead of hanging clients.
//!
//! ## Quickstart
//!
//! ```text
//! # replicas (each its own models dir, same artifacts)
//! scamdetect-cli serve --models-dir models-a --addr 127.0.0.1:7001 &
//! scamdetect-cli serve --models-dir models-b --addr 127.0.0.1:7002 &
//!
//! # the router in front
//! scamdetect-cli fleet serve --addr 127.0.0.1:7000 \
//!     --replicas 127.0.0.1:7001,127.0.0.1:7002
//!
//! # clients talk to the router exactly like to a single replica
//! curl -s -X POST http://127.0.0.1:7000/scan -d '{"bytecode": "0x6001600155"}'
//!
//! # topology & shard shares
//! scamdetect-cli fleet status --router 127.0.0.1:7000
//!
//! # staged rollout of a new artifact to the whole fleet
//! scamdetect-cli train --save rf-v2.scam --model rf --seed 43
//! scamdetect-cli fleet rollout --replicas 127.0.0.1:7001,127.0.0.1:7002 \
//!     --artifact rf-v2.scam --model-id rf-v2
//! ```
//!
//! ## Rollout state machine
//!
//! ```text
//! PUSH ──▶ VERIFY ──▶ [SHADOW] ──▶ CANARY ──▶ COMPARE ──▶ PROMOTE
//!  │          │           │           │           │           │ failure here is
//!  │          │           │           │           │           │ reported, not
//!  ▼          ▼           ▼           ▼           ▼           ▼ auto-rolled-back
//! abort     abort       abort       abort       abort      (canary already proved
//!  └──────────┴───────────┴───────────┴───────────┘         the model serves)
//!              = pin canary back + DELETE candidate everywhere
//! ```
//!
//! * **Push**: `PUT /models/<id>` to every replica, body = raw
//!   artifact bytes, `x-artifact-fnv1a` checksum handshake (409 on
//!   mismatch, atomic install, no swap).
//! * **Verify**: every replica echoed the same FNV-1a we computed
//!   locally.
//! * **Shadow** (opt-in via [`rollout::RolloutPlan::shadow`], `fleet
//!   rollout --shadow` on the CLI): the candidate loads *beside* the
//!   canary's champion and scores every mirrored probe off the
//!   response path; the canary swap becomes the replica's own
//!   thresholded `POST /shadow/promote` — refused until the candidate
//!   has scored enough real traffic at high enough champion agreement.
//! * **Canary**: one replica hot-swaps via `POST /models/reload`
//!   `{"model": "<id>"}` (a pinned, one-shot reload) — or has already
//!   swapped through the shadow gate above.
//! * **Compare**: probe scans must score on the canary, its scan
//!   failure counter must hold still, `/metrics` must name the
//!   candidate.
//! * **Promote**: pinned reload on the rest; `/healthz` must agree on
//!   the new id fleet-wide.
//!
//! ## Operating under load
//!
//! The router treats replica failure as a spectrum, not a bit:
//!
//! * **Circuit breakers, not up/down flags.** Every replica carries a
//!   [`breaker::CircuitBreaker`] (closed → open → half-open). It trips
//!   on *consecutive* failures (default 2) **or** a windowed error
//!   rate (default ≥50% over the last 8 outcomes) — a replica that
//!   fails every other request never hits "consecutive" but still gets
//!   ejected. An open breaker removes the replica from the ring;
//!   half-open probes re-admit it only after consecutive successes,
//!   with exponential cooldown plus deterministic jitter between
//!   probation rounds so a flapping replica costs progressively less.
//! * **Deadline budgets.** Every `/scan` and `/batch` carries a budget
//!   (the `x-deadline-ms` request header, defaulting to
//!   [`proxy::RouterConfig::forward_timeout`]). Each forward attempt's
//!   socket timeout is the *remaining* budget, so re-routes after a
//!   trip can never stretch a client's wait past its own deadline —
//!   when the budget dies first the router answers an honest `503` +
//!   `Retry-After` and counts it in
//!   `scamdetect_fleet_deadline_exhausted_total`.
//! * **Reply validation.** A forwarded reply must parse as JSON (and a
//!   200 scan must carry a score) before it passes through; torn,
//!   truncated, or bit-corrupted bodies count as transport failures
//!   and re-route instead of reaching the client.
//! * **Flap accounting.** A replica that recovers and then trips again
//!   increments `scamdetect_fleet_flaps_total`; breaker states surface
//!   per-replica on `GET /fleet` and as
//!   `scamdetect_fleet_breaker_open` / `_half_open` gauges.
//!
//! The [`chaos`] module makes all of this testable: a std-only
//! in-process TCP [`chaos::FaultProxy`] injects resets, stalls,
//! ramping latency, truncated bodies, and single-bit corruption on a
//! seeded deterministic schedule. The `chaos_smoke` integration suite
//! (`cargo test -p scamdetect-fleet --test chaos_smoke`) drives a real
//! router + replicas through a mixed fault storm and asserts the
//! invariant CI enforces: every response is either the bit-exact
//! golden score or a well-formed 408/429/503 with `Retry-After` —
//! never a hang, a panic, or torn JSON.
//!
//! Module map: [`ring`] (slice ownership), [`health`] (membership +
//! probing), [`breaker`] (per-replica circuit breakers), [`proxy`]
//! (the router), [`rollout`] (the state machine), [`client`] (typed
//! replica management calls), [`chaos`] (fault injection). The
//! `serve_bench` binary measures direct-vs-routed latency and writes
//! `BENCH_PR6.json` in `--router` mode; `serve_bench --shed` drives a
//! replica past saturation and writes the `BENCH_PR7.json`
//! graceful-degradation gate.
//!
//! [`scamdetect-serve`]: scamdetect_serve
//! [`ShardedLru`]: scamdetect::scan::PrepCache
//! [`PrepCache`]: scamdetect::PrepCache

pub mod breaker;
pub mod chaos;
pub mod client;
pub mod health;
pub mod proxy;
pub mod ring;
pub mod rollout;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use chaos::{FaultKind, FaultProxy, FaultSchedule};
pub use client::ShadowStatus;
pub use health::{FleetState, HealthMonitor, ReplicaStatus};
pub use proxy::{spawn_router, RouterConfig, RouterMetrics, RunningRouter};
pub use ring::HashRing;
pub use rollout::{
    run_rollout, RolloutError, RolloutPlan, RolloutReport, RolloutStage, ShadowPlan,
};
