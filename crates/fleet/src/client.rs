//! Typed helpers over one replica's management API — the verbs the
//! health monitor, the rollout orchestrator and the CLI share. All of
//! them ride `scamdetect_serve::client::HttpClient`, so every call
//! inherits its one-shot reconnect-retry (a draining replica does not
//! fail a rollout step).

use scamdetect_evm::proxy::fnv1a;
use scamdetect_serve::client::{http_call_with_timeout, HttpClient};
use scamdetect_serve::json::Json;
use std::net::SocketAddr;
use std::time::Duration;

/// What a replica's `/healthz` body reports.
#[derive(Debug, Clone)]
pub struct ReplicaHealth {
    /// Served model id.
    pub model: String,
    /// Served model epoch.
    pub model_epoch: u64,
    /// Detector kind string.
    pub kind: String,
    /// Verdict-cache entries (staleness/warmth signal).
    pub verdict_cache_entries: u64,
}

/// A failed management call, with enough context to log usefully.
#[derive(Debug)]
pub struct ReplicaError {
    /// Which replica.
    pub addr: SocketAddr,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "replica {}: {}", self.addr, self.message)
    }
}

impl std::error::Error for ReplicaError {}

fn fail(addr: SocketAddr, message: impl Into<String>) -> ReplicaError {
    ReplicaError {
        addr,
        message: message.into(),
    }
}

fn expect_200(
    addr: SocketAddr,
    what: &str,
    reply: std::io::Result<scamdetect_serve::client::ClientResponse>,
) -> Result<Json, ReplicaError> {
    let reply = reply.map_err(|e| fail(addr, format!("{what}: {e}")))?;
    if reply.status != 200 {
        return Err(fail(
            addr,
            format!("{what}: HTTP {} — {}", reply.status, reply.body),
        ));
    }
    Json::parse(&reply.body).map_err(|e| fail(addr, format!("{what}: unparseable body: {e}")))
}

/// Probes `GET /healthz`.
///
/// # Errors
///
/// Connection failures, non-200, or a body missing the model fields.
pub fn probe_healthz(addr: SocketAddr, timeout: Duration) -> Result<ReplicaHealth, ReplicaError> {
    let body = expect_200(
        addr,
        "healthz",
        http_call_with_timeout(addr, "GET", "/healthz", None, timeout),
    )?;
    let model = body
        .get("model")
        .and_then(Json::as_str)
        .ok_or_else(|| fail(addr, "healthz: no 'model' field"))?
        .to_string();
    let model_epoch = body
        .get("model_epoch")
        .and_then(Json::as_f64)
        .ok_or_else(|| fail(addr, "healthz: no 'model_epoch' field"))? as u64;
    let kind = body
        .get("kind")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    let verdict_cache_entries = body
        .get("verdict_cache_entries")
        .and_then(Json::as_f64)
        .unwrap_or(0.0) as u64;
    Ok(ReplicaHealth {
        model,
        model_epoch,
        kind,
        verdict_cache_entries,
    })
}

/// Pushes artifact bytes to `PUT /models/<id>` with the FNV-1a
/// checksum handshake; returns the checksum the replica verified.
///
/// # Errors
///
/// Transport failures, 409 checksum mismatches, 422 artifact
/// rejections.
pub fn push_artifact(
    addr: SocketAddr,
    timeout: Duration,
    id: &str,
    bytes: &[u8],
) -> Result<u64, ReplicaError> {
    let checksum = fnv1a(bytes);
    let header = format!("{checksum:#018x}");
    let mut client = HttpClient::connect_with_timeout(addr, timeout)
        .map_err(|e| fail(addr, format!("connect: {e}")))?;
    // `retry_safe = false`: an artifact push must never double-send —
    // if the first attempt died mid-body the caller retries explicitly,
    // rather than the client silently resending megabytes on a maybe-
    // already-applied write.
    let reply = client
        .request_raw_opts(
            "PUT",
            &format!("/models/{id}"),
            bytes,
            &[("x-artifact-fnv1a", &header)],
            false,
        )
        .map_err(|e| fail(addr, format!("push: {e}")))?;
    if reply.status != 200 {
        return Err(fail(
            addr,
            format!("push: HTTP {} — {}", reply.status, reply.body),
        ));
    }
    let body =
        Json::parse(&reply.body).map_err(|e| fail(addr, format!("push: unparseable body: {e}")))?;
    let echoed = body
        .get("fnv1a")
        .and_then(Json::as_str)
        .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok())
        .ok_or_else(|| fail(addr, "push: response carries no fnv1a echo"))?;
    if echoed != checksum {
        return Err(fail(
            addr,
            format!("push: replica echoed {echoed:#018x}, pushed {checksum:#018x}"),
        ));
    }
    Ok(checksum)
}

/// `POST /models/reload` — pinned to `model` when given, directory
/// re-resolution otherwise. Returns `(active id, epoch)`.
///
/// # Errors
///
/// Transport failures and 409 reload rejections.
pub fn reload_model(
    addr: SocketAddr,
    timeout: Duration,
    model: Option<&str>,
) -> Result<(String, u64), ReplicaError> {
    let body =
        model.map(|id| Json::render(&scamdetect_serve::json::obj([("model", Json::from(id))])));
    let reply = expect_200(
        addr,
        "reload",
        http_call_with_timeout(addr, "POST", "/models/reload", body.as_deref(), timeout),
    )?;
    let active = reply
        .get("active")
        .and_then(Json::as_str)
        .ok_or_else(|| fail(addr, "reload: no 'active' field"))?
        .to_string();
    let epoch = reply
        .get("model_epoch")
        .and_then(Json::as_f64)
        .ok_or_else(|| fail(addr, "reload: no 'model_epoch' field"))? as u64;
    Ok((active, epoch))
}

/// `DELETE /models/<id>` — rollout-abort cleanup.
///
/// # Errors
///
/// Transport failures, 409 (artifact is being served), 404 (absent).
pub fn delete_model(addr: SocketAddr, timeout: Duration, id: &str) -> Result<(), ReplicaError> {
    expect_200(
        addr,
        "delete",
        http_call_with_timeout(addr, "DELETE", &format!("/models/{id}"), None, timeout),
    )
    .map(|_| ())
}

/// One replica's shadow-session snapshot (`GET /shadow`).
#[derive(Debug, Clone, Default)]
pub struct ShadowStatus {
    /// A candidate is loaded and mirroring traffic.
    pub active: bool,
    /// Candidate artifact id (empty when inactive).
    pub candidate: String,
    /// Mirrored scans the candidate has scored.
    pub samples: u64,
    /// Scores agreeing with the champion verdict.
    pub agreements: u64,
    /// Scores disagreeing (candidate failures count here too).
    pub disagreements: u64,
    /// Mirrored scans dropped because the shadow queue was full.
    pub dropped: u64,
    /// `agreements / samples` (0 when no samples).
    pub agreement: f64,
}

/// `POST /shadow/start` — loads `id` as the shadow candidate. Returns
/// `(candidate id, candidate epoch)`.
///
/// # Errors
///
/// Transport failures, 404 (unknown artifact), 409 (already serving).
pub fn shadow_start(
    addr: SocketAddr,
    timeout: Duration,
    id: &str,
) -> Result<(String, u64), ReplicaError> {
    let body = Json::render(&scamdetect_serve::json::obj([("model", Json::from(id))]));
    let reply = expect_200(
        addr,
        "shadow start",
        http_call_with_timeout(addr, "POST", "/shadow/start", Some(&body), timeout),
    )?;
    let candidate = reply
        .get("shadowing")
        .and_then(Json::as_str)
        .ok_or_else(|| fail(addr, "shadow start: no 'shadowing' field"))?
        .to_string();
    let epoch = reply
        .get("candidate_epoch")
        .and_then(Json::as_f64)
        .unwrap_or(0.0) as u64;
    Ok((candidate, epoch))
}

/// `GET /shadow` — the live session counters.
///
/// # Errors
///
/// Transport failures or an unparseable body.
pub fn shadow_status(addr: SocketAddr, timeout: Duration) -> Result<ShadowStatus, ReplicaError> {
    let body = expect_200(
        addr,
        "shadow status",
        http_call_with_timeout(addr, "GET", "/shadow", None, timeout),
    )?;
    let num = |k: &str| body.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    Ok(ShadowStatus {
        active: body.get("active").and_then(Json::as_bool).unwrap_or(false),
        candidate: body
            .get("candidate")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string(),
        samples: num("samples") as u64,
        agreements: num("agreements") as u64,
        disagreements: num("disagreements") as u64,
        dropped: num("dropped") as u64,
        agreement: num("agreement"),
    })
}

/// `POST /shadow/stop` — tears the shadow session down. Returns `true`
/// when a session was actually running.
///
/// # Errors
///
/// Transport failures.
pub fn shadow_stop(addr: SocketAddr, timeout: Duration) -> Result<bool, ReplicaError> {
    let body = expect_200(
        addr,
        "shadow stop",
        http_call_with_timeout(addr, "POST", "/shadow/stop", None, timeout),
    )?;
    Ok(body.get("stopped").and_then(Json::as_bool).unwrap_or(false))
}

/// `POST /shadow/promote` — the thresholded candidate → champion swap.
/// Returns `(promoted id, new epoch)`.
///
/// # Errors
///
/// Transport failures and 409 (no session, or thresholds not met).
pub fn shadow_promote(
    addr: SocketAddr,
    timeout: Duration,
    min_samples: u64,
    min_agreement: f64,
) -> Result<(String, u64), ReplicaError> {
    let body = Json::render(&scamdetect_serve::json::obj([
        ("min_samples", Json::from(min_samples)),
        ("min_agreement", Json::from(min_agreement)),
    ]));
    let reply = expect_200(
        addr,
        "shadow promote",
        http_call_with_timeout(addr, "POST", "/shadow/promote", Some(&body), timeout),
    )?;
    let promoted = reply
        .get("promoted")
        .and_then(Json::as_str)
        .ok_or_else(|| fail(addr, "shadow promote: no 'promoted' field"))?
        .to_string();
    let epoch = reply
        .get("model_epoch")
        .and_then(Json::as_f64)
        .ok_or_else(|| fail(addr, "shadow promote: no 'model_epoch' field"))?
        as u64;
    Ok((promoted, epoch))
}

/// Scrapes one counter/gauge from a replica's Prometheus `/metrics`
/// text (exact metric-name match, labels ignored).
///
/// # Errors
///
/// Transport failures or a scrape without that metric.
pub fn fetch_metric(addr: SocketAddr, timeout: Duration, name: &str) -> Result<f64, ReplicaError> {
    let reply = http_call_with_timeout(addr, "GET", "/metrics", None, timeout)
        .map_err(|e| fail(addr, format!("metrics: {e}")))?;
    if reply.status != 200 {
        return Err(fail(addr, format!("metrics: HTTP {}", reply.status)));
    }
    parse_metric(&reply.body, name)
        .ok_or_else(|| fail(addr, format!("metrics: no sample named '{name}'")))
}

/// Finds `name <value>` (or `name{labels} <value>`) in Prometheus text.
#[must_use]
pub fn parse_metric(text: &str, name: &str) -> Option<f64> {
    text.lines()
        .filter(|line| !line.starts_with('#'))
        .find_map(|line| {
            let (metric, value) = line.split_once(' ')?;
            let bare = metric.split('{').next()?;
            if bare == name {
                value.trim().parse().ok()
            } else {
                None
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_metric_handles_labels_comments_and_misses() {
        let text = "# HELP x y\n# TYPE x counter\nx 42\n\
                    scamdetect_model_info{model=\"rf-v1\"} 1\nlatency 3.5\n";
        assert_eq!(parse_metric(text, "x"), Some(42.0));
        assert_eq!(parse_metric(text, "scamdetect_model_info"), Some(1.0));
        assert_eq!(parse_metric(text, "latency"), Some(3.5));
        assert_eq!(parse_metric(text, "absent"), None);
        // Prefix must not match.
        assert_eq!(parse_metric(text, "laten"), None);
    }
}
