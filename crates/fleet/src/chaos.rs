//! Fault injection for chaos tests: a **std-only, in-process TCP
//! proxy** that sits between a client (usually the fleet router) and a
//! real upstream (usually a `scamdetect-serve` replica) and injects
//! transport faults on a **seeded, deterministic schedule** — the same
//! seed always produces the same fault sequence, so a chaos failure
//! reproduces locally from the seed in the test name alone.
//!
//! Faults model what real networks and sick replicas actually do:
//!
//! * [`FaultKind::Reset`] — accept, then drop the connection before
//!   reading a byte (the peer sees EOF / broken pipe mid-request);
//! * [`FaultKind::Stall`] — accept and read the request, then never
//!   respond (a wedged replica; only the caller's deadline saves it);
//! * [`FaultKind::Latency`] — delay the response by a fixed amount
//!   (use [`FaultSchedule::ramp`] for latency that grows per
//!   connection, the classic slow-degradation curve);
//! * [`FaultKind::Truncate`] — forward only the first N response
//!   bytes, then close (a torn body mid-JSON);
//! * [`FaultKind::Corrupt`] — flip the high bit of one response byte
//!   (a single flipped bit in an ASCII JSON body is always invalid
//!   UTF-8, so corruption is detectable without checksums);
//! * [`FaultKind::Pass`] — relay untouched (the control arm).
//!
//! The proxy is thread-per-connection like everything else in this
//! workspace: the accept loop hands each connection a fault drawn from
//! the schedule by **connection index**, relays client→upstream
//! verbatim on a side thread, and applies the fault to the
//! upstream→client direction. The `chaos_smoke` integration suite
//! drives a router + healthy replica + faulty replica through every
//! fault class and asserts the end-to-end invariant: every response is
//! either the bit-exact golden score or a well-formed 408/429/503 with
//! `Retry-After` — never a hang, a panic, or torn JSON.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Relay buffer size; replies in this workspace are well under 64 KiB,
/// so the "first chunk" a fault manipulates is usually the whole reply.
const CHUNK: usize = 64 * 1024;

/// Poll granularity for stop-flag checks inside stalled or relaying
/// connections.
const POLL: Duration = Duration::from_millis(50);

/// One injectable transport fault, applied per connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Relay untouched.
    Pass,
    /// Drop the connection immediately after accept.
    Reset,
    /// Read the request, never respond; hold until the peer gives up.
    Stall,
    /// Delay the response by this much, then relay normally.
    Latency(Duration),
    /// Forward only the first N response bytes, then close.
    Truncate(usize),
    /// XOR `0x80` into the last byte of the first response chunk.
    Corrupt,
}

/// How faults map to connection indices. Deterministic: the same
/// schedule and seed produce the same fault for the same index.
#[derive(Debug, Clone)]
enum Plan {
    Always(FaultKind),
    Weighted(Vec<(u32, FaultKind)>),
    Ramp { base: Duration, step: Duration },
}

/// A seeded, deterministic fault schedule.
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    seed: u64,
    plan: Plan,
}

impl FaultSchedule {
    /// Every connection gets the same fault.
    #[must_use]
    pub fn always(kind: FaultKind) -> FaultSchedule {
        FaultSchedule {
            seed: 0,
            plan: Plan::Always(kind),
        }
    }

    /// Connection `i` gets `Latency(base + step × i)` — latency that
    /// ramps as connections accumulate.
    #[must_use]
    pub fn ramp(base: Duration, step: Duration) -> FaultSchedule {
        FaultSchedule {
            seed: 0,
            plan: Plan::Ramp { base, step },
        }
    }

    /// Connection `i` draws a fault by weight from
    /// `splitmix64(seed ^ i)` — a fixed seed pins the whole sequence.
    /// Zero-weight entries never fire; an empty or all-zero list
    /// degenerates to [`FaultKind::Pass`].
    #[must_use]
    pub fn weighted(seed: u64, faults: Vec<(u32, FaultKind)>) -> FaultSchedule {
        FaultSchedule {
            seed,
            plan: Plan::Weighted(faults),
        }
    }

    /// The fault connection number `index` receives.
    #[must_use]
    pub fn fault_for(&self, index: u64) -> FaultKind {
        match &self.plan {
            Plan::Always(kind) => *kind,
            Plan::Ramp { base, step } => {
                FaultKind::Latency(*base + step.saturating_mul(index.min(1 << 20) as u32))
            }
            Plan::Weighted(faults) => {
                let total: u64 = faults.iter().map(|&(w, _)| u64::from(w)).sum();
                if total == 0 {
                    return FaultKind::Pass;
                }
                let mut draw = splitmix64(self.seed ^ index) % total;
                for &(weight, kind) in faults {
                    let weight = u64::from(weight);
                    if draw < weight {
                        return kind;
                    }
                    draw -= weight;
                }
                FaultKind::Pass
            }
        }
    }
}

/// SplitMix64: the workspace's standard seedable mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A running fault proxy: connect to [`FaultProxy::addr`] instead of
/// the upstream, and faults happen per the schedule.
pub struct FaultProxy {
    /// Where clients connect (ephemeral loopback port).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl FaultProxy {
    /// Binds an ephemeral loopback port and relays to `upstream`,
    /// injecting faults from `schedule` keyed on connection index.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn spawn(upstream: SocketAddr, schedule: FaultSchedule) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            let conns = AtomicU64::new(0);
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let index = conns.fetch_add(1, Ordering::Relaxed);
                let fault = schedule.fault_for(index);
                let conn_stop = Arc::clone(&accept_stop);
                std::thread::spawn(move || {
                    handle_connection(stream, upstream, fault, &conn_stop);
                });
            }
        });
        Ok(FaultProxy {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// Stops accepting; live connections die with their streams.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown();
        }
    }
}

fn handle_connection(client: TcpStream, upstream: SocketAddr, fault: FaultKind, stop: &AtomicBool) {
    match fault {
        FaultKind::Reset => {
            // Drop before reading a byte: the peer's write or read
            // fails with EOF/broken pipe, the closest std-only stand-in
            // for a hard RST (`TcpStream::set_linger` is unstable).
            let _ = client.shutdown(Shutdown::Both);
        }
        FaultKind::Stall => stall(client, stop),
        FaultKind::Pass => relay(client, upstream, None, usize::MAX, false, stop),
        FaultKind::Latency(delay) => relay(client, upstream, Some(delay), usize::MAX, false, stop),
        FaultKind::Truncate(limit) => relay(client, upstream, None, limit, false, stop),
        FaultKind::Corrupt => relay(client, upstream, None, usize::MAX, true, stop),
    }
}

/// Reads (and discards) whatever the client sends, forever — a wedged
/// replica. Exits when the client closes or the proxy stops.
fn stall(mut client: TcpStream, stop: &AtomicBool) {
    let _ = client.set_read_timeout(Some(POLL));
    let mut sink = [0u8; 1024];
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        match client.read(&mut sink) {
            Ok(0) => return,                // client gave up
            Ok(_) => {}                     // keep swallowing the request
            Err(e) if would_block(&e) => {} // idle; poll the stop flag
            Err(_) => return,
        }
    }
}

/// Full relay with response-direction fault hooks: client→upstream
/// verbatim on a side thread; upstream→client through `latency` /
/// `limit` / `corrupt`.
fn relay(
    client: TcpStream,
    upstream: SocketAddr,
    latency: Option<Duration>,
    mut limit: usize,
    corrupt: bool,
    stop: &AtomicBool,
) {
    let Ok(mut server) = TcpStream::connect_timeout(&upstream, Duration::from_secs(2)) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let (Ok(client_read), Ok(mut client_write)) = (client.try_clone(), client.try_clone()) else {
        return;
    };
    drop(client);
    let Ok(server_write) = server.try_clone() else {
        return;
    };
    // Request direction: verbatim, fire-and-forget. The thread dies
    // when either side closes.
    std::thread::spawn(move || {
        pump(client_read, server_write);
    });

    // Response direction, with the fault applied to the first chunk.
    let _ = server.set_read_timeout(Some(POLL));
    let mut buffer = vec![0u8; CHUNK];
    let mut first_chunk = true;
    loop {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let n = match server.read(&mut buffer) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if would_block(&e) => continue,
            Err(_) => break,
        };
        if first_chunk {
            first_chunk = false;
            if let Some(delay) = latency {
                std::thread::sleep(delay);
            }
            if corrupt {
                // High-bit flip: one non-ASCII byte in an ASCII JSON
                // reply, guaranteed invalid UTF-8 at the receiver.
                buffer[n - 1] ^= 0x80;
            }
        }
        let send = n.min(limit);
        limit -= send;
        if send > 0 && client_write.write_all(&buffer[..send]).is_err() {
            break;
        }
        if limit == 0 {
            break; // truncation point reached
        }
    }
    let _ = client_write.shutdown(Shutdown::Both);
    let _ = server.shutdown(Shutdown::Both);
}

/// Verbatim one-direction byte pump; returns when either side closes.
fn pump(mut from: TcpStream, mut to: TcpStream) {
    let mut buffer = vec![0u8; CHUNK];
    loop {
        match from.read(&mut buffer) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buffer[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = to.shutdown(Shutdown::Write);
}

fn would_block(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// A one-shot upstream: accepts connections forever, reads a line,
    /// answers with `payload`, closes.
    fn upstream_with(payload: &'static [u8]) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { break };
                let mut byte = [0u8; 1];
                // Wait for the first request byte, then reply in full.
                if stream.read(&mut byte).map(|n| n == 0).unwrap_or(true) {
                    continue;
                }
                if stream.write_all(payload).is_err() {
                    continue;
                }
                let _ = stream.shutdown(Shutdown::Both);
            }
        });
        (addr, thread)
    }

    fn roundtrip_via(proxy: &FaultProxy) -> std::io::Result<Vec<u8>> {
        let mut stream = TcpStream::connect(proxy.addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        stream.write_all(b"x")?;
        let mut reply = Vec::new();
        stream.read_to_end(&mut reply)?;
        Ok(reply)
    }

    #[test]
    fn schedules_are_deterministic_in_the_seed() {
        let schedule = FaultSchedule::weighted(
            0xC0FFEE,
            vec![
                (2, FaultKind::Pass),
                (1, FaultKind::Reset),
                (1, FaultKind::Corrupt),
            ],
        );
        let first: Vec<FaultKind> = (0..64).map(|i| schedule.fault_for(i)).collect();
        let second: Vec<FaultKind> = (0..64).map(|i| schedule.fault_for(i)).collect();
        assert_eq!(first, second, "same seed, same sequence");
        assert!(
            first.contains(&FaultKind::Reset) && first.contains(&FaultKind::Pass),
            "64 draws at these weights hit multiple kinds: {first:?}"
        );

        let reseeded = FaultSchedule::weighted(
            0xBEEF,
            vec![
                (2, FaultKind::Pass),
                (1, FaultKind::Reset),
                (1, FaultKind::Corrupt),
            ],
        );
        let third: Vec<FaultKind> = (0..64).map(|i| reseeded.fault_for(i)).collect();
        assert_ne!(first, third, "different seed, different sequence");
    }

    #[test]
    fn ramp_latency_grows_per_connection() {
        let schedule = FaultSchedule::ramp(Duration::from_millis(10), Duration::from_millis(5));
        assert_eq!(
            schedule.fault_for(0),
            FaultKind::Latency(Duration::from_millis(10))
        );
        assert_eq!(
            schedule.fault_for(4),
            FaultKind::Latency(Duration::from_millis(30))
        );
    }

    #[test]
    fn pass_relays_bytes_untouched() {
        let (upstream, _server) = upstream_with(b"HELLO-FROM-UPSTREAM");
        let proxy =
            FaultProxy::spawn(upstream, FaultSchedule::always(FaultKind::Pass)).expect("proxy");
        let reply = roundtrip_via(&proxy).expect("roundtrip");
        assert_eq!(reply, b"HELLO-FROM-UPSTREAM");
        proxy.stop();
    }

    #[test]
    fn truncate_cuts_the_response_short() {
        let (upstream, _server) = upstream_with(b"0123456789");
        let proxy = FaultProxy::spawn(upstream, FaultSchedule::always(FaultKind::Truncate(4)))
            .expect("proxy");
        let reply = roundtrip_via(&proxy).expect("roundtrip");
        assert_eq!(reply, b"0123", "exactly the truncation limit arrives");
        proxy.stop();
    }

    #[test]
    fn corrupt_flips_exactly_one_byte() {
        let (upstream, _server) = upstream_with(b"{\"score\":0.25}");
        let proxy =
            FaultProxy::spawn(upstream, FaultSchedule::always(FaultKind::Corrupt)).expect("proxy");
        let reply = roundtrip_via(&proxy).expect("roundtrip");
        assert_eq!(reply.len(), b"{\"score\":0.25}".len());
        let flipped: Vec<usize> = reply
            .iter()
            .zip(b"{\"score\":0.25}")
            .enumerate()
            .filter(|(_, (got, want))| got != want)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(flipped.len(), 1, "exactly one byte differs");
        assert!(reply[flipped[0]] >= 0x80, "the flip breaks UTF-8");
        assert!(
            String::from_utf8(reply).is_err(),
            "a corrupted ASCII JSON body is detectably invalid"
        );
        proxy.stop();
    }

    #[test]
    fn reset_drops_the_connection_without_a_reply() {
        let (upstream, _server) = upstream_with(b"never-sent");
        let proxy =
            FaultProxy::spawn(upstream, FaultSchedule::always(FaultKind::Reset)).expect("proxy");
        let reply = roundtrip_via(&proxy).unwrap_or_default();
        assert!(reply.is_empty(), "reset yields no bytes: {reply:?}");
        proxy.stop();
    }
}
