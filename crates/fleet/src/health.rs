//! Fleet membership and health: which replicas exist, which are up,
//! and the live ring over the up set.
//!
//! [`FleetState`] is the single shared truth between the router's
//! request path and the background [`HealthMonitor`]. The request path
//! reads it (owner lookup) and writes it pessimistically (a forward
//! failure marks the replica down *immediately* — no waiting for the
//! next probe tick to stop routing into a dead socket). The monitor
//! probes `GET /healthz` on every replica and repairs the optimism in
//! both directions: a recovered replica rejoins the ring, a quietly
//! dead one leaves it.
//!
//! Down replicas are probed on **exponential backoff** (1, 2, 4, …
//! ticks, capped) so a long-dead replica costs one connect attempt per
//! backoff window, not per tick, while up replicas get every tick.

use crate::ring::HashRing;
use scamdetect_serve::client::http_call_with_timeout;
use scamdetect_serve::json::Json;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Consecutive failed probes after which the backoff stops growing
/// (2^6 = every 64th tick).
const MAX_BACKOFF_EXP: u32 = 6;

/// One replica's last-known condition.
#[derive(Debug, Clone)]
pub struct ReplicaStatus {
    /// Ring id — the replica's address string (stable and unique).
    pub id: String,
    /// Socket address probes and forwards go to.
    pub addr: SocketAddr,
    /// In the ring right now?
    pub up: bool,
    /// Consecutive probe/forward failures (0 when up).
    pub consecutive_failures: u32,
    /// Model id from the last successful `/healthz` probe.
    pub model: Option<String>,
    /// Model epoch from the last successful `/healthz` probe.
    pub model_epoch: Option<u64>,
}

struct Inner {
    statuses: Vec<ReplicaStatus>,
    /// Ring over the *up* replicas only; rebuilt on every up/down flip.
    ring: HashRing,
    /// Membership-change counter (diagnostics: how often did we
    /// rebalance).
    rebalances: u64,
}

/// Shared fleet membership + health. Cheap to read on the request
/// path; writes only happen on state flips and probe refreshes.
pub struct FleetState {
    vnodes: usize,
    inner: RwLock<Inner>,
}

impl FleetState {
    /// Starts with every replica optimistically **up**: the first
    /// request to a dead replica fails fast, marks it down and
    /// re-routes, which beats refusing traffic until a first probe
    /// cycle completes.
    #[must_use]
    pub fn new(replicas: &[SocketAddr], vnodes: usize) -> FleetState {
        let statuses: Vec<ReplicaStatus> = replicas
            .iter()
            .map(|&addr| ReplicaStatus {
                id: addr.to_string(),
                addr,
                up: true,
                consecutive_failures: 0,
                model: None,
                model_epoch: None,
            })
            .collect();
        let ring = ring_over(&statuses, vnodes);
        FleetState {
            vnodes,
            inner: RwLock::new(Inner {
                statuses,
                ring,
                rebalances: 0,
            }),
        }
    }

    /// The up replica owning `key`, or `None` when the whole fleet is
    /// down (the router's 503 path).
    #[must_use]
    pub fn owner_of(&self, key: u64) -> Option<(String, SocketAddr)> {
        let inner = self.read();
        let id = inner.ring.owner_of(key)?.to_string();
        let addr = inner.statuses.iter().find(|s| s.id == id).map(|s| s.addr)?;
        Some((id, addr))
    }

    /// Every replica's current status (snapshot).
    #[must_use]
    pub fn statuses(&self) -> Vec<ReplicaStatus> {
        self.read().statuses.clone()
    }

    /// `(up, total)` replica counts.
    #[must_use]
    pub fn up_counts(&self) -> (usize, usize) {
        let inner = self.read();
        let up = inner.statuses.iter().filter(|s| s.up).count();
        (up, inner.statuses.len())
    }

    /// `(replica id, slices owned)` over the current ring.
    #[must_use]
    pub fn shares(&self) -> Vec<(String, usize)> {
        self.read().ring.shares()
    }

    /// Ring membership flips so far.
    #[must_use]
    pub fn rebalances(&self) -> u64 {
        self.read().rebalances
    }

    /// Virtual nodes per replica this fleet was configured with.
    #[must_use]
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Records a failure against `id`. Returns `true` when this call
    /// flipped the replica out of the ring (the caller should then
    /// re-resolve owners).
    pub fn mark_down(&self, id: &str) -> bool {
        let mut inner = self.write();
        let Some(status) = inner.statuses.iter_mut().find(|s| s.id == id) else {
            return false;
        };
        status.consecutive_failures = status.consecutive_failures.saturating_add(1);
        if !status.up {
            return false;
        }
        status.up = false;
        inner.ring = ring_over(&inner.statuses, self.vnodes);
        inner.rebalances += 1;
        true
    }

    /// Records a successful probe of `id`, with the model snapshot its
    /// `/healthz` body reported. Returns `true` when this call brought
    /// the replica back into the ring.
    pub fn mark_up(&self, id: &str, model: Option<String>, model_epoch: Option<u64>) -> bool {
        let mut inner = self.write();
        let Some(status) = inner.statuses.iter_mut().find(|s| s.id == id) else {
            return false;
        };
        status.consecutive_failures = 0;
        status.model = model;
        status.model_epoch = model_epoch;
        if status.up {
            return false;
        }
        status.up = true;
        inner.ring = ring_over(&inner.statuses, self.vnodes);
        inner.rebalances += 1;
        true
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Inner> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Inner> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

fn ring_over(statuses: &[ReplicaStatus], vnodes: usize) -> HashRing {
    let up: Vec<String> = statuses
        .iter()
        .filter(|s| s.up)
        .map(|s| s.id.clone())
        .collect();
    HashRing::build(&up, vnodes)
}

/// Background `/healthz` prober over a [`FleetState`].
pub struct HealthMonitor {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl HealthMonitor {
    /// Probes every replica each `interval` (down replicas on
    /// exponential backoff). `probe_timeout` bounds each attempt — keep
    /// it well under `interval`.
    #[must_use]
    pub fn spawn(
        state: Arc<FleetState>,
        interval: Duration,
        probe_timeout: Duration,
    ) -> HealthMonitor {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("fleet-health".to_string())
            .spawn(move || {
                let mut tick: u64 = 0;
                while !stop_flag.load(Ordering::Relaxed) {
                    for status in state.statuses() {
                        if !status.up && !backoff_due(tick, status.consecutive_failures) {
                            continue;
                        }
                        probe(&state, &status, probe_timeout);
                    }
                    tick = tick.wrapping_add(1);
                    // Sleep in short hops so shutdown is prompt even
                    // with a long probe interval.
                    let mut remaining = interval;
                    while remaining > Duration::ZERO && !stop_flag.load(Ordering::Relaxed) {
                        let hop = remaining.min(Duration::from_millis(25));
                        std::thread::sleep(hop);
                        remaining = remaining.saturating_sub(hop);
                    }
                }
            })
            .expect("spawn fleet-health thread");
        HealthMonitor {
            stop,
            thread: Some(thread),
        }
    }

    /// Stops the prober and joins its thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            thread.join().ok();
        }
    }
}

impl Drop for HealthMonitor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            thread.join().ok();
        }
    }
}

/// Is a down replica due for a probe this tick? Exponential: after f
/// consecutive failures, probe every 2^min(f,cap) ticks.
fn backoff_due(tick: u64, consecutive_failures: u32) -> bool {
    let exp = consecutive_failures.min(MAX_BACKOFF_EXP);
    tick.is_multiple_of(1u64 << exp)
}

fn probe(state: &FleetState, status: &ReplicaStatus, timeout: Duration) {
    match http_call_with_timeout(status.addr, "GET", "/healthz", None, timeout) {
        Ok(reply) if reply.status == 200 => {
            let parsed = Json::parse(&reply.body).ok();
            let model = parsed
                .as_ref()
                .and_then(|v| v.get("model"))
                .and_then(Json::as_str)
                .map(str::to_string);
            let epoch = parsed
                .as_ref()
                .and_then(|v| v.get("model_epoch"))
                .and_then(Json::as_f64)
                .map(|f| f as u64);
            state.mark_up(&status.id, model, epoch);
        }
        _ => {
            state.mark_down(&status.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_addrs(n: usize) -> Vec<SocketAddr> {
        (0..n)
            .map(|i| format!("127.0.0.1:{}", 40000 + i).parse().unwrap())
            .collect()
    }

    #[test]
    fn mark_down_rebalances_and_mark_up_restores() {
        let addrs = fake_addrs(3);
        let state = FleetState::new(&addrs, 8);
        assert_eq!(state.up_counts(), (3, 3));

        let victim = addrs[1].to_string();
        // Ownership of some key by the victim must move off it.
        let key = (0..u64::MAX)
            .find(|&k| state.owner_of(k).map(|(id, _)| id) == Some(victim.clone()))
            .expect("victim owns something");

        assert!(state.mark_down(&victim), "first failure flips it out");
        assert!(!state.mark_down(&victim), "already down: no second flip");
        assert_eq!(state.up_counts(), (2, 3));
        let (new_owner, _) = state.owner_of(key).expect("still owned");
        assert_ne!(new_owner, victim);
        assert_eq!(state.rebalances(), 1);

        assert!(state.mark_up(&victim, Some("m".into()), Some(0)));
        assert_eq!(state.up_counts(), (3, 3));
        // Minimal-remap property: the key returns to its original owner.
        assert_eq!(state.owner_of(key).unwrap().0, victim);
    }

    #[test]
    fn whole_fleet_down_means_no_owner() {
        let addrs = fake_addrs(2);
        let state = FleetState::new(&addrs, 4);
        for addr in &addrs {
            state.mark_down(&addr.to_string());
        }
        assert_eq!(state.owner_of(7), None);
        assert_eq!(state.up_counts(), (0, 2));
    }

    #[test]
    fn backoff_schedule_thins_probes() {
        assert!(backoff_due(0, 0));
        assert!(backoff_due(1, 0), "healthy-ish: every tick");
        assert!(backoff_due(2, 1));
        assert!(!backoff_due(3, 1), "1 failure: every 2nd tick");
        assert!(!backoff_due(63, 10));
        assert!(backoff_due(64, 10), "capped at every 64th tick");
    }
}
