//! Fleet membership and health: which replicas exist, which are up,
//! and the live ring over the up set.
//!
//! [`FleetState`] is the single shared truth between the router's
//! request path and the background [`HealthMonitor`]. Both report
//! outcomes — forward results from the request path, `GET /healthz`
//! results from the prober — into one [`CircuitBreaker`] per replica,
//! and ring membership follows the breaker:
//!
//! * a replica leaves the ring when its breaker **trips** (N
//!   consecutive failures, or the error rate over a sliding outcome
//!   window — the brownout detector a binary up/down flip lacks);
//! * while the breaker is **open**, probes are suppressed for an
//!   exponential, per-replica-jittered cooldown, so a long-dead
//!   replica costs one connect attempt per cooldown window;
//! * after the cooldown the breaker goes **half-open**: only a run of
//!   consecutive good probes readmits the replica — one good packet
//!   out of a flapping host no longer rebuilds the ring.
//!
//! A single failed probe no longer flips a replica (the old behavior
//! caused ring-rebuild flapping on every dropped packet); replicas
//! that *do* flap — go down again after recovering — are counted in
//! [`FleetState::flaps`] for the router's metrics page.

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker, Transition};
use crate::ring::HashRing;
use scamdetect_serve::client::http_call_with_timeout;
use scamdetect_serve::json::Json;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// One replica's last-known condition.
#[derive(Debug, Clone)]
pub struct ReplicaStatus {
    /// Ring id — the replica's address string (stable and unique).
    pub id: String,
    /// Socket address probes and forwards go to.
    pub addr: SocketAddr,
    /// In the ring right now?
    pub up: bool,
    /// Breaker state backing `up` (`up` ⇔ closed).
    pub breaker: BreakerState,
    /// Consecutive probe/forward failures (0 after any success).
    pub consecutive_failures: u32,
    /// Times this replica has been readmitted after a trip.
    pub recoveries: u32,
    /// Model id from the last successful `/healthz` probe.
    pub model: Option<String>,
    /// Model epoch from the last successful `/healthz` probe.
    pub model_epoch: Option<u64>,
}

struct Inner {
    statuses: Vec<ReplicaStatus>,
    /// Ring over the *up* replicas only; rebuilt on every up/down flip.
    ring: HashRing,
    /// Membership-change counter (diagnostics: how often did we
    /// rebalance).
    rebalances: u64,
}

/// Shared fleet membership + health. Cheap to read on the request
/// path; writes only happen on state flips and probe refreshes.
pub struct FleetState {
    vnodes: usize,
    inner: RwLock<Inner>,
    /// One breaker per replica, same order as `statuses`. The replica
    /// set is fixed at construction, so this needs no lock.
    breakers: Vec<(String, CircuitBreaker)>,
    /// Down-flips of replicas that had previously recovered.
    flaps: AtomicU64,
}

impl FleetState {
    /// [`FleetState::with_breaker`] with default thresholds.
    #[must_use]
    pub fn new(replicas: &[SocketAddr], vnodes: usize) -> FleetState {
        FleetState::with_breaker(replicas, vnodes, BreakerConfig::default())
    }

    /// Starts with every replica optimistically **up**: the first
    /// request to a dead replica fails fast, feeds its breaker and
    /// re-routes, which beats refusing traffic until a first probe
    /// cycle completes.
    #[must_use]
    pub fn with_breaker(
        replicas: &[SocketAddr],
        vnodes: usize,
        breaker: BreakerConfig,
    ) -> FleetState {
        let statuses: Vec<ReplicaStatus> = replicas
            .iter()
            .map(|&addr| ReplicaStatus {
                id: addr.to_string(),
                addr,
                up: true,
                breaker: BreakerState::Closed,
                consecutive_failures: 0,
                recoveries: 0,
                model: None,
                model_epoch: None,
            })
            .collect();
        let breakers = statuses
            .iter()
            .map(|s| (s.id.clone(), CircuitBreaker::new(&s.id, breaker.clone())))
            .collect();
        let ring = ring_over(&statuses, vnodes);
        FleetState {
            vnodes,
            inner: RwLock::new(Inner {
                statuses,
                ring,
                rebalances: 0,
            }),
            breakers,
            flaps: AtomicU64::new(0),
        }
    }

    /// The up replica owning `key`, or `None` when the whole fleet is
    /// down (the router's 503 path).
    #[must_use]
    pub fn owner_of(&self, key: u64) -> Option<(String, SocketAddr)> {
        let inner = self.read();
        let id = inner.ring.owner_of(key)?.to_string();
        let addr = inner.statuses.iter().find(|s| s.id == id).map(|s| s.addr)?;
        Some((id, addr))
    }

    /// Every replica's current status (snapshot).
    #[must_use]
    pub fn statuses(&self) -> Vec<ReplicaStatus> {
        self.read().statuses.clone()
    }

    /// `(up, total)` replica counts.
    #[must_use]
    pub fn up_counts(&self) -> (usize, usize) {
        let inner = self.read();
        let up = inner.statuses.iter().filter(|s| s.up).count();
        (up, inner.statuses.len())
    }

    /// `(replica id, slices owned)` over the current ring.
    #[must_use]
    pub fn shares(&self) -> Vec<(String, usize)> {
        self.read().ring.shares()
    }

    /// Ring membership flips so far.
    #[must_use]
    pub fn rebalances(&self) -> u64 {
        self.read().rebalances
    }

    /// Down-flips of replicas that had previously recovered — the flap
    /// count a binary health model hides.
    #[must_use]
    pub fn flaps(&self) -> u64 {
        self.flaps.load(Ordering::Relaxed)
    }

    /// Virtual nodes per replica this fleet was configured with.
    #[must_use]
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Replicas whose breakers are currently open / half-open.
    #[must_use]
    pub fn breaker_counts(&self) -> (usize, usize) {
        let mut open = 0;
        let mut half_open = 0;
        for (_, breaker) in &self.breakers {
            match breaker.state() {
                BreakerState::Open => open += 1,
                BreakerState::HalfOpen => half_open += 1,
                BreakerState::Closed => {}
            }
        }
        (open, half_open)
    }

    /// Records a failed forward or probe against `id`. Returns `true`
    /// when this call tripped the breaker and ejected the replica from
    /// the ring (the caller should then re-resolve owners).
    pub fn record_failure(&self, id: &str) -> bool {
        let Some(breaker) = self.breaker_of(id) else {
            return false;
        };
        let transition = breaker.record_failure(Instant::now());
        let state_now = breaker.state();
        let mut inner = self.write();
        let Some(status) = inner.statuses.iter_mut().find(|s| s.id == id) else {
            return false;
        };
        status.consecutive_failures = status.consecutive_failures.saturating_add(1);
        status.breaker = state_now;
        let flapped = status.recoveries > 0;
        if transition == Transition::Opened && status.up {
            status.up = false;
            inner.ring = ring_over(&inner.statuses, self.vnodes);
            inner.rebalances += 1;
            if flapped {
                self.flaps.fetch_add(1, Ordering::Relaxed);
            }
            return true;
        }
        false
    }

    /// Records a successful forward against `id` (request path — does
    /// not touch the model snapshot).
    pub fn record_success(&self, id: &str) {
        self.success(id, None);
    }

    /// Records a successful probe of `id`, with the model snapshot its
    /// `/healthz` body reported. Returns `true` when this probe
    /// completed half-open probation and readmitted the replica.
    pub fn record_probe_success(
        &self,
        id: &str,
        model: Option<String>,
        model_epoch: Option<u64>,
    ) -> bool {
        self.success(id, Some((model, model_epoch)))
    }

    /// Is `id` due for a health probe at `now`? Closed/half-open: every
    /// tick. Open: only once the breaker cooldown has elapsed.
    #[must_use]
    pub fn probe_due(&self, id: &str, now: Instant) -> bool {
        self.breaker_of(id).is_none_or(|b| b.probe_due(now))
    }

    fn success(&self, id: &str, model_update: Option<(Option<String>, Option<u64>)>) -> bool {
        let Some(breaker) = self.breaker_of(id) else {
            return false;
        };
        let transition = breaker.record_success();
        let state_now = breaker.state();
        let mut inner = self.write();
        let Some(status) = inner.statuses.iter_mut().find(|s| s.id == id) else {
            return false;
        };
        status.consecutive_failures = 0;
        status.breaker = state_now;
        if let Some((model, epoch)) = model_update {
            status.model = model;
            status.model_epoch = epoch;
        }
        if transition == Transition::Closed && !status.up {
            status.up = true;
            status.recoveries = status.recoveries.saturating_add(1);
            inner.ring = ring_over(&inner.statuses, self.vnodes);
            inner.rebalances += 1;
            return true;
        }
        false
    }

    fn breaker_of(&self, id: &str) -> Option<&CircuitBreaker> {
        self.breakers
            .iter()
            .find(|(bid, _)| bid == id)
            .map(|(_, b)| b)
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Inner> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Inner> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

fn ring_over(statuses: &[ReplicaStatus], vnodes: usize) -> HashRing {
    let up: Vec<String> = statuses
        .iter()
        .filter(|s| s.up)
        .map(|s| s.id.clone())
        .collect();
    HashRing::build(&up, vnodes)
}

/// Background `/healthz` prober over a [`FleetState`].
pub struct HealthMonitor {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl HealthMonitor {
    /// Probes every replica each `interval`; open-breaker replicas are
    /// skipped until their cooldown elapses. `probe_timeout` bounds
    /// each attempt — keep it well under `interval`.
    #[must_use]
    pub fn spawn(
        state: Arc<FleetState>,
        interval: Duration,
        probe_timeout: Duration,
    ) -> HealthMonitor {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("fleet-health".to_string())
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    let now = Instant::now();
                    for status in state.statuses() {
                        if !state.probe_due(&status.id, now) {
                            continue;
                        }
                        probe(&state, &status, probe_timeout);
                    }
                    // Sleep in short hops so shutdown is prompt even
                    // with a long probe interval.
                    let mut remaining = interval;
                    while remaining > Duration::ZERO && !stop_flag.load(Ordering::Relaxed) {
                        let hop = remaining.min(Duration::from_millis(25));
                        std::thread::sleep(hop);
                        remaining = remaining.saturating_sub(hop);
                    }
                }
            })
            .expect("spawn fleet-health thread");
        HealthMonitor {
            stop,
            thread: Some(thread),
        }
    }

    /// Stops the prober and joins its thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            thread.join().ok();
        }
    }
}

impl Drop for HealthMonitor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            thread.join().ok();
        }
    }
}

fn probe(state: &FleetState, status: &ReplicaStatus, timeout: Duration) {
    match http_call_with_timeout(status.addr, "GET", "/healthz", None, timeout) {
        Ok(reply) if reply.status == 200 => {
            let parsed = Json::parse(&reply.body).ok();
            let model = parsed
                .as_ref()
                .and_then(|v| v.get("model"))
                .and_then(Json::as_str)
                .map(str::to_string);
            let epoch = parsed
                .as_ref()
                .and_then(|v| v.get("model_epoch"))
                .and_then(Json::as_f64)
                .map(|f| f as u64);
            state.record_probe_success(&status.id, model, epoch);
        }
        _ => {
            state.record_failure(&status.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_addrs(n: usize) -> Vec<SocketAddr> {
        (0..n)
            .map(|i| format!("127.0.0.1:{}", 40000 + i).parse().unwrap())
            .collect()
    }

    /// Fast-trip config for tests that need deterministic readmission.
    fn test_breaker() -> BreakerConfig {
        BreakerConfig {
            consecutive_failures: 2,
            half_open_successes: 2,
            cooldown: Duration::from_millis(10),
            ..BreakerConfig::default()
        }
    }

    #[test]
    fn breaker_trip_rebalances_and_probation_restores() {
        let addrs = fake_addrs(3);
        let state = FleetState::with_breaker(&addrs, 8, test_breaker());
        assert_eq!(state.up_counts(), (3, 3));

        let victim = addrs[1].to_string();
        // Ownership of some key by the victim must move off it.
        let key = (0..u64::MAX)
            .find(|&k| state.owner_of(k).map(|(id, _)| id) == Some(victim.clone()))
            .expect("victim owns something");

        assert!(
            !state.record_failure(&victim),
            "one failure is noise, not a rebalance"
        );
        assert_eq!(state.up_counts(), (3, 3));
        assert!(
            state.record_failure(&victim),
            "the second consecutive failure trips the breaker"
        );
        assert!(
            !state.record_failure(&victim),
            "already out: no second flip"
        );
        assert_eq!(state.up_counts(), (2, 3));
        let (new_owner, _) = state.owner_of(key).expect("still owned");
        assert_ne!(new_owner, victim);
        assert_eq!(state.rebalances(), 1);

        // Readmission takes the full half-open probation, not one probe.
        assert!(!state.record_probe_success(&victim, Some("m".into()), Some(0)));
        assert_eq!(state.up_counts(), (2, 3), "one good probe is probation");
        assert!(state.record_probe_success(&victim, Some("m".into()), Some(0)));
        assert_eq!(state.up_counts(), (3, 3));
        // Minimal-remap property: the key returns to its original owner.
        assert_eq!(state.owner_of(key).unwrap().0, victim);
    }

    #[test]
    fn flaps_count_post_recovery_down_flips() {
        let addrs = fake_addrs(2);
        let state = FleetState::with_breaker(&addrs, 4, test_breaker());
        let id = addrs[0].to_string();
        // First outage: not a flap (never recovered before).
        state.record_failure(&id);
        state.record_failure(&id);
        assert_eq!(state.flaps(), 0);
        // Recover…
        state.record_probe_success(&id, None, None);
        state.record_probe_success(&id, None, None);
        assert_eq!(state.up_counts(), (2, 2));
        // …and fail again: that is a flap.
        state.record_failure(&id);
        state.record_failure(&id);
        assert_eq!(state.flaps(), 1);
    }

    #[test]
    fn whole_fleet_down_means_no_owner() {
        let addrs = fake_addrs(2);
        let state = FleetState::with_breaker(&addrs, 4, test_breaker());
        for addr in &addrs {
            let id = addr.to_string();
            state.record_failure(&id);
            state.record_failure(&id);
        }
        assert_eq!(state.owner_of(7), None);
        assert_eq!(state.up_counts(), (0, 2));
    }

    #[test]
    fn open_breaker_suppresses_probes_until_cooldown() {
        let addrs = fake_addrs(1);
        let state = FleetState::with_breaker(
            &addrs,
            4,
            BreakerConfig {
                cooldown: Duration::from_millis(100),
                ..test_breaker()
            },
        );
        let id = addrs[0].to_string();
        let now = Instant::now();
        assert!(state.probe_due(&id, now), "closed: probed every tick");
        state.record_failure(&id);
        state.record_failure(&id);
        assert!(!state.probe_due(&id, now), "fresh open: suppressed");
        assert!(
            state.probe_due(&id, now + Duration::from_millis(250)),
            "past cooldown + jitter: due again"
        );
        // Half-open probation probes every tick to converge quickly.
        state.record_probe_success(&id, None, None);
        assert!(state.probe_due(&id, now));
    }
}
