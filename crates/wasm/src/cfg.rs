//! Control-flow graph lifting from structured WASM function bodies.
//!
//! WASM control flow is structured (no gotos), so the CFG is recovered by a
//! single recursive walk: `block`/`if` labels branch forward to a join
//! node, `loop` labels branch backward to the loop header. The resulting
//! graph uses the same [`scamdetect_graph::DiGraph`] substrate as the EVM
//! CFG, which is what lets the unified IR treat both platforms uniformly.

use crate::instr::Instr;
use crate::module::{Function, Module};
use scamdetect_graph::{DiGraph, NodeId};

/// Kind of a WASM CFG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WasmEdge {
    /// Sequential flow (including block entry and join).
    Seq,
    /// A taken conditional branch (`br_if`, `if` condition true).
    Branch,
    /// The false arm of an `if` / fall-through of `br_if`.
    Else,
    /// A `br_table` arm.
    Table,
    /// A loop back edge.
    Back,
}

/// A CFG basic block: straight-line leaf instructions.
///
/// Structured openers contribute a lightweight marker so that features see
/// branching instructions (`If`, `BrTable`, …) without duplicating nested
/// bodies.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WasmBlock {
    /// Flattened leaf instructions (nested bodies excluded).
    pub instrs: Vec<Instr>,
    /// `true` for the dedicated function-exit node.
    pub is_exit: bool,
}

/// The CFG of one function.
#[derive(Debug, Clone)]
pub struct FuncCfg {
    graph: DiGraph<WasmBlock, WasmEdge>,
    entry: NodeId,
    exit: NodeId,
}

impl FuncCfg {
    /// The underlying graph.
    pub fn graph(&self) -> &DiGraph<WasmBlock, WasmEdge> {
        &self.graph
    }

    /// Entry node.
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// The dedicated exit node (targets of `return` and function end).
    pub fn exit(&self) -> NodeId {
        self.exit
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.graph.node_count()
    }
}

struct Lifter {
    g: DiGraph<WasmBlock, WasmEdge>,
    current: NodeId,
    /// Innermost label last: `(target, is_backward)`.
    labels: Vec<(NodeId, bool)>,
    exit: NodeId,
    /// Set when the current block already ended in an unconditional exit;
    /// subsequent code in the sequence is unreachable.
    terminated: bool,
}

impl Lifter {
    fn new_block(&mut self) -> NodeId {
        self.g.add_node(WasmBlock::default())
    }

    fn emit(&mut self, i: &Instr) {
        if !self.terminated {
            self.g.node_mut(self.current).instrs.push(i.clone());
        }
    }

    fn edge(&mut self, to: NodeId, kind: WasmEdge) {
        if !self.terminated {
            self.g.add_edge(self.current, to, kind);
        }
    }

    fn seq(&mut self, body: &[Instr]) {
        for i in body {
            if self.terminated {
                // Dead code after an unconditional exit: WASM validators
                // allow it; it contributes nothing to the CFG.
                break;
            }
            match i {
                Instr::Block { body, .. } => {
                    let join = self.new_block();
                    self.labels.push((join, false));
                    self.seq(body);
                    self.labels.pop();
                    self.edge(join, WasmEdge::Seq);
                    self.current = join;
                    self.terminated = false;
                }
                Instr::Loop { body, .. } => {
                    let header = self.new_block();
                    self.edge(header, WasmEdge::Seq);
                    self.current = header;
                    self.terminated = false;
                    self.labels.push((header, true));
                    self.seq(body);
                    self.labels.pop();
                    let join = self.new_block();
                    self.edge(join, WasmEdge::Seq);
                    self.current = join;
                    self.terminated = false;
                }
                Instr::If { ty, then, els } => {
                    // Record the conditional as a marker instruction.
                    self.emit(&Instr::If {
                        ty: *ty,
                        then: Vec::new(),
                        els: Vec::new(),
                    });
                    let then_node = self.new_block();
                    let join = self.new_block();
                    let else_node = if els.is_empty() {
                        join
                    } else {
                        self.new_block()
                    };
                    self.edge(then_node, WasmEdge::Branch);
                    self.edge(else_node, WasmEdge::Else);
                    self.labels.push((join, false));

                    self.current = then_node;
                    self.terminated = false;
                    self.seq(then);
                    self.edge(join, WasmEdge::Seq);

                    if !els.is_empty() {
                        self.current = else_node;
                        self.terminated = false;
                        self.seq(els);
                        self.edge(join, WasmEdge::Seq);
                    }
                    self.labels.pop();
                    self.current = join;
                    self.terminated = false;
                }
                Instr::Br(n) => {
                    self.emit(i);
                    let (kind, target) = self.branch_kind(*n);
                    self.edge(target, kind);
                    self.terminated = true;
                }
                Instr::BrIf(n) => {
                    self.emit(i);
                    let (kind, target) = self.branch_kind(*n);
                    self.edge(target, kind);
                    let fall = self.new_block();
                    self.edge(fall, WasmEdge::Else);
                    self.current = fall;
                }
                Instr::BrTable { targets, default } => {
                    self.emit(i);
                    let mut seen = Vec::new();
                    for t in targets.iter().chain(std::iter::once(default)) {
                        let (_, node) = self.branch_kind(*t);
                        if !seen.contains(&node) {
                            seen.push(node);
                            self.edge(node, WasmEdge::Table);
                        }
                    }
                    self.terminated = true;
                }
                Instr::Return => {
                    self.emit(i);
                    let exit = self.exit;
                    self.edge(exit, WasmEdge::Seq);
                    self.terminated = true;
                }
                Instr::Unreachable => {
                    self.emit(i);
                    self.terminated = true;
                }
                leaf => self.emit(leaf),
            }
        }
    }

    fn branch_kind(&self, depth: u32) -> (WasmEdge, NodeId) {
        let idx = self.labels.len().checked_sub(1 + depth as usize);
        match idx.and_then(|i| self.labels.get(i)) {
            Some((n, true)) => (WasmEdge::Back, *n),
            Some((n, false)) => (WasmEdge::Branch, *n),
            None => (WasmEdge::Seq, self.exit),
        }
    }
}

/// Lifts one function body to a CFG.
///
/// # Examples
///
/// ```
/// use scamdetect_wasm::{cfg::lift_function, instr::Instr, module::Function, types::BlockType};
///
/// let f = Function {
///     type_idx: 0,
///     locals: vec![],
///     body: vec![Instr::Loop { ty: BlockType::Empty, body: vec![
///         Instr::LocalGet(0),
///         Instr::BrIf(0),
///     ]}],
/// };
/// let cfg = lift_function(&f);
/// assert!(cfg.block_count() >= 3);
/// ```
pub fn lift_function(func: &Function) -> FuncCfg {
    let mut g: DiGraph<WasmBlock, WasmEdge> = DiGraph::new();
    let entry = g.add_node(WasmBlock::default());
    let exit = g.add_node(WasmBlock {
        instrs: Vec::new(),
        is_exit: true,
    });
    let mut lifter = Lifter {
        g,
        current: entry,
        labels: Vec::new(),
        exit,
        terminated: false,
    };
    lifter.seq(&func.body);
    // Implicit function end flows to exit.
    let cur = lifter.current;
    if !lifter.terminated {
        lifter.g.add_edge(cur, exit, WasmEdge::Seq);
    }
    FuncCfg {
        graph: lifter.g,
        entry,
        exit,
    }
}

/// Lifts every function of `module` and stitches them into one module-level
/// CFG: function CFGs are disjoint subgraphs plus `Seq` edges from each
/// `Call` site block to the callee's entry (imports have no body and get a
/// single synthetic node each).
pub fn lift_module(module: &Module) -> FuncCfg {
    let mut g: DiGraph<WasmBlock, WasmEdge> = DiGraph::new();
    let entry = g.add_node(WasmBlock::default());
    let exit = g.add_node(WasmBlock {
        instrs: Vec::new(),
        is_exit: true,
    });

    // One synthetic node per import (host call surface).
    let mut func_entries: Vec<NodeId> = Vec::new();
    for imp in &module.imports {
        let n = g.add_node(WasmBlock {
            instrs: vec![Instr::Call(0)],
            is_exit: false,
        });
        let _ = imp;
        func_entries.push(n);
    }

    // Lift each local function into the shared graph.
    let mut call_sites: Vec<(NodeId, u32)> = Vec::new();
    for (fi, func) in module.functions.iter().enumerate() {
        let sub = lift_function(func);
        // Copy nodes.
        let mut remap = Vec::with_capacity(sub.graph().node_count());
        for (_, block) in sub.graph().nodes() {
            remap.push(g.add_node(block.clone()));
        }
        for (u, v, k) in sub.graph().edges() {
            g.add_edge(remap[u.index()], remap[v.index()], *k);
        }
        let f_entry = remap[sub.entry().index()];
        func_entries.push(f_entry);
        // Record call sites for stitching.
        for (id, block) in sub.graph().nodes() {
            for ins in &block.instrs {
                if let Instr::Call(target) = ins {
                    call_sites.push((remap[id.index()], *target));
                }
            }
        }
        // Exported functions hang off the module entry (any export is an
        // externally reachable entry point).
        let exported = module
            .exports
            .iter()
            .any(|e| e.index as usize == module.imports.len() + fi);
        if exported || module.functions.len() == 1 {
            g.add_edge(entry, f_entry, WasmEdge::Seq);
        }
        g.add_edge(remap[sub.exit().index()], exit, WasmEdge::Seq);
    }

    for (site, target) in call_sites {
        if let Some(&callee) = func_entries.get(target as usize) {
            g.add_edge(site, callee, WasmEdge::Seq);
        }
    }

    FuncCfg {
        graph: g,
        entry,
        exit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{BlockType, FuncType, ValType};

    fn func(body: Vec<Instr>) -> Function {
        Function {
            type_idx: 0,
            locals: vec![],
            body,
        }
    }

    #[test]
    fn straight_line_two_blocks() {
        let cfg = lift_function(&func(vec![Instr::Nop, Instr::Nop]));
        // entry + exit.
        assert_eq!(cfg.block_count(), 2);
        assert!(cfg.graph().has_edge(cfg.entry(), cfg.exit()));
    }

    #[test]
    fn if_else_diamond() {
        let cfg = lift_function(&func(vec![
            Instr::LocalGet(0),
            Instr::If {
                ty: BlockType::Empty,
                then: vec![Instr::Nop],
                els: vec![Instr::Drop],
            },
        ]));
        // entry, then, else, join, exit.
        assert_eq!(cfg.block_count(), 5);
        let e = cfg.entry();
        assert_eq!(cfg.graph().out_degree(e), 2);
        let kinds: Vec<WasmEdge> = cfg.graph().out_edges(e).map(|x| *x.weight).collect();
        assert!(kinds.contains(&WasmEdge::Branch));
        assert!(kinds.contains(&WasmEdge::Else));
    }

    #[test]
    fn loop_produces_back_edge() {
        let cfg = lift_function(&func(vec![Instr::Loop {
            ty: BlockType::Empty,
            body: vec![Instr::LocalGet(0), Instr::BrIf(0)],
        }]));
        assert!(cfg.graph().edges().any(|(_, _, k)| *k == WasmEdge::Back));
    }

    #[test]
    fn br_out_of_block_is_forward_branch() {
        let cfg = lift_function(&func(vec![Instr::Block {
            ty: BlockType::Empty,
            body: vec![Instr::Br(0), Instr::Nop /* dead */],
        }]));
        assert!(cfg.graph().edges().any(|(_, _, k)| *k == WasmEdge::Branch));
        // The dead Nop contributes nothing: no dangling blocks beyond
        // entry/join/exit.
        assert_eq!(cfg.block_count(), 3);
    }

    #[test]
    fn return_connects_to_exit() {
        let cfg = lift_function(&func(vec![
            Instr::LocalGet(0),
            Instr::If {
                ty: BlockType::Empty,
                then: vec![Instr::Return],
                els: vec![],
            },
            Instr::Nop,
        ]));
        assert!(cfg.graph().in_degree(cfg.exit()) >= 2);
    }

    #[test]
    fn br_table_fans_out() {
        let cfg = lift_function(&func(vec![Instr::Block {
            ty: BlockType::Empty,
            body: vec![Instr::Block {
                ty: BlockType::Empty,
                body: vec![
                    Instr::I32Const(1),
                    Instr::BrTable {
                        targets: vec![0, 1],
                        default: 1,
                    },
                ],
            }],
        }]));
        assert!(
            cfg.graph()
                .edges()
                .filter(|(_, _, k)| **k == WasmEdge::Table)
                .count()
                >= 2
        );
    }

    #[test]
    fn module_level_stitching_connects_calls() {
        let mut m = Module::new();
        m.add_import("env", "log", FuncType::new(vec![ValType::I32], vec![]));
        let callee = m.add_function(FuncType::default(), vec![], vec![Instr::Nop]);
        let main = m.add_function(
            FuncType::default(),
            vec![],
            vec![Instr::Call(0), Instr::Call(callee)],
        );
        m.export_func("main", main);
        let cfg = lift_module(&m);
        // Entry connects to the exported function only.
        assert_eq!(cfg.graph().out_degree(cfg.entry()), 1);
        // Some block calls into the import node and the callee entry.
        assert!(cfg.block_count() > 5);
    }

    #[test]
    fn unreachable_terminates_block() {
        let cfg = lift_function(&func(vec![Instr::Unreachable, Instr::Nop]));
        // Entry never reaches exit.
        assert_eq!(cfg.graph().in_degree(cfg.exit()), 0);
    }
}
