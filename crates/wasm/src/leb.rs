//! LEB128 variable-length integer coding (the WASM binary integer format).

use crate::error::WasmError;

/// Appends `v` as unsigned LEB128.
pub fn write_u32(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let mut byte = (v & 0x7f) as u8;
        v >>= 7;
        if v != 0 {
            byte |= 0x80;
        }
        out.push(byte);
        if v == 0 {
            break;
        }
    }
}

/// Appends `v` as signed LEB128 (33-bit domain for `i32`).
pub fn write_i32(out: &mut Vec<u8>, v: i32) {
    write_i64(out, v as i64);
}

/// Appends `v` as signed LEB128.
pub fn write_i64(out: &mut Vec<u8>, mut v: i64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        let sign_clear = byte & 0x40 == 0;
        if (v == 0 && sign_clear) || (v == -1 && !sign_clear) {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// A byte cursor with LEB128 readers.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Current offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Remaining byte count.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// `true` when fully consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`WasmError::UnexpectedEof`] at end of input.
    pub fn byte(&mut self) -> Result<u8, WasmError> {
        let b = *self.bytes.get(self.pos).ok_or(WasmError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WasmError> {
        if self.remaining() < n {
            return Err(WasmError::UnexpectedEof);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads an unsigned LEB128 `u32`.
    pub fn u32(&mut self) -> Result<u32, WasmError> {
        let start = self.pos;
        let mut result: u32 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            if shift >= 35 {
                return Err(WasmError::BadLeb128 { offset: start });
            }
            result |= ((byte & 0x7f) as u32) << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
        }
    }

    /// Reads a signed LEB128 `i32`.
    pub fn i32(&mut self) -> Result<i32, WasmError> {
        Ok(self.i64()? as i32)
    }

    /// Reads a signed LEB128 `i64`.
    pub fn i64(&mut self) -> Result<i64, WasmError> {
        let start = self.pos;
        let mut result: i64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            if shift >= 70 {
                return Err(WasmError::BadLeb128 { offset: start });
            }
            result |= ((byte & 0x7f) as i64) << shift;
            shift += 7;
            if byte & 0x80 == 0 {
                if shift < 64 && byte & 0x40 != 0 {
                    result |= -1i64 << shift;
                }
                return Ok(result);
            }
        }
    }

    /// Reads a length-prefixed UTF-8 name.
    pub fn name(&mut self) -> Result<String, WasmError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WasmError::UnexpectedEof)
    }
}

/// Appends a length-prefixed UTF-8 name.
pub fn write_name(out: &mut Vec<u8>, name: &str) {
    write_u32(out, name.len() as u32);
    out.extend_from_slice(name.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_roundtrip() {
        for v in [0u32, 1, 127, 128, 16384, 0xdead_beef, u32::MAX] {
            let mut buf = Vec::new();
            write_u32(&mut buf, v);
            assert_eq!(Reader::new(&buf).u32().unwrap(), v, "value {v}");
        }
    }

    #[test]
    fn i64_roundtrip() {
        for v in [
            0i64,
            1,
            -1,
            63,
            64,
            -64,
            -65,
            i64::MAX,
            i64::MIN,
            0x1234_5678_9abc,
        ] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            assert_eq!(Reader::new(&buf).i64().unwrap(), v, "value {v}");
        }
    }

    #[test]
    fn i32_roundtrip() {
        for v in [0i32, -1, i32::MIN, i32::MAX, 42, -1000] {
            let mut buf = Vec::new();
            write_i32(&mut buf, v);
            assert_eq!(Reader::new(&buf).i32().unwrap(), v, "value {v}");
        }
    }

    #[test]
    fn eof_detected() {
        assert_eq!(Reader::new(&[]).byte(), Err(WasmError::UnexpectedEof));
        assert_eq!(Reader::new(&[0x80]).u32(), Err(WasmError::UnexpectedEof));
    }

    #[test]
    fn overlong_rejected() {
        let buf = [0xff, 0xff, 0xff, 0xff, 0xff, 0x0f];
        assert!(matches!(
            Reader::new(&buf).u32(),
            Err(WasmError::BadLeb128 { .. })
        ));
    }

    #[test]
    fn names_roundtrip() {
        let mut buf = Vec::new();
        write_name(&mut buf, "transfer");
        assert_eq!(Reader::new(&buf).name().unwrap(), "transfer");
    }

    #[test]
    fn reader_position_tracking() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.remaining(), 3);
        r.byte().unwrap();
        assert_eq!(r.pos(), 1);
        r.take(2).unwrap();
        assert!(r.is_at_end());
    }
}
