//! WASM binary-format encoder for the supported subset.

use crate::instr::{IBinOp, IRelOp, IUnOp, Instr, Width};
use crate::leb::{write_i32, write_i64, write_name, write_u32};
use crate::module::{ExportKind, Module};

const MAGIC: [u8; 8] = [0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00];

/// Encodes `module` into the standard WASM binary format.
///
/// The output is a spec-conformant module (section ordering, LEB128
/// integers, structured `end` markers), decodable by any WASM tooling as
/// well as by [`crate::decode::decode_module`].
///
/// # Examples
///
/// ```
/// use scamdetect_wasm::{encode::encode_module, module::Module};
///
/// let bytes = encode_module(&Module::new());
/// assert_eq!(&bytes[0..4], b"\0asm");
/// ```
pub fn encode_module(module: &Module) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);

    // Type section (1).
    if !module.types.is_empty() {
        let mut sec = Vec::new();
        write_u32(&mut sec, module.types.len() as u32);
        for ty in &module.types {
            sec.push(0x60);
            write_u32(&mut sec, ty.params.len() as u32);
            for p in &ty.params {
                sec.push(p.byte());
            }
            write_u32(&mut sec, ty.results.len() as u32);
            for r in &ty.results {
                sec.push(r.byte());
            }
        }
        push_section(&mut out, 1, &sec);
    }

    // Import section (2).
    if !module.imports.is_empty() {
        let mut sec = Vec::new();
        write_u32(&mut sec, module.imports.len() as u32);
        for imp in &module.imports {
            write_name(&mut sec, &imp.module);
            write_name(&mut sec, &imp.name);
            sec.push(0x00); // func import
            write_u32(&mut sec, imp.type_idx);
        }
        push_section(&mut out, 2, &sec);
    }

    // Function section (3).
    if !module.functions.is_empty() {
        let mut sec = Vec::new();
        write_u32(&mut sec, module.functions.len() as u32);
        for f in &module.functions {
            write_u32(&mut sec, f.type_idx);
        }
        push_section(&mut out, 3, &sec);
    }

    // Memory section (5).
    if let Some(mem) = module.memory {
        let mut sec = Vec::new();
        write_u32(&mut sec, 1);
        match mem.max {
            Some(max) => {
                sec.push(0x01);
                write_u32(&mut sec, mem.min);
                write_u32(&mut sec, max);
            }
            None => {
                sec.push(0x00);
                write_u32(&mut sec, mem.min);
            }
        }
        push_section(&mut out, 5, &sec);
    }

    // Global section (6).
    if !module.globals.is_empty() {
        let mut sec = Vec::new();
        write_u32(&mut sec, module.globals.len() as u32);
        for g in &module.globals {
            sec.push(g.ty.byte());
            sec.push(g.mutable as u8);
            match g.ty {
                crate::types::ValType::I32 => {
                    sec.push(0x41);
                    write_i32(&mut sec, g.init as i32);
                }
                crate::types::ValType::I64 => {
                    sec.push(0x42);
                    write_i64(&mut sec, g.init);
                }
            }
            sec.push(0x0b);
        }
        push_section(&mut out, 6, &sec);
    }

    // Export section (7).
    if !module.exports.is_empty() {
        let mut sec = Vec::new();
        write_u32(&mut sec, module.exports.len() as u32);
        for e in &module.exports {
            write_name(&mut sec, &e.name);
            sec.push(match e.kind {
                ExportKind::Func => 0x00,
                ExportKind::Memory => 0x02,
            });
            write_u32(&mut sec, e.index);
        }
        push_section(&mut out, 7, &sec);
    }

    // Code section (10).
    if !module.functions.is_empty() {
        let mut sec = Vec::new();
        write_u32(&mut sec, module.functions.len() as u32);
        for f in &module.functions {
            let mut body = Vec::new();
            write_u32(&mut body, f.locals.len() as u32);
            for (count, ty) in &f.locals {
                write_u32(&mut body, *count);
                body.push(ty.byte());
            }
            encode_instrs(&mut body, &f.body);
            body.push(0x0b);
            write_u32(&mut sec, body.len() as u32);
            sec.extend_from_slice(&body);
        }
        push_section(&mut out, 10, &sec);
    }

    out
}

fn push_section(out: &mut Vec<u8>, id: u8, contents: &[u8]) {
    out.push(id);
    write_u32(out, contents.len() as u32);
    out.extend_from_slice(contents);
}

/// Encodes an instruction sequence (without the trailing `end`).
pub fn encode_instrs(out: &mut Vec<u8>, instrs: &[Instr]) {
    for i in instrs {
        encode_instr(out, i);
    }
}

fn encode_instr(out: &mut Vec<u8>, i: &Instr) {
    match i {
        Instr::Unreachable => out.push(0x00),
        Instr::Nop => out.push(0x01),
        Instr::Block { ty, body } => {
            out.push(0x02);
            out.push(ty.byte());
            encode_instrs(out, body);
            out.push(0x0b);
        }
        Instr::Loop { ty, body } => {
            out.push(0x03);
            out.push(ty.byte());
            encode_instrs(out, body);
            out.push(0x0b);
        }
        Instr::If { ty, then, els } => {
            out.push(0x04);
            out.push(ty.byte());
            encode_instrs(out, then);
            if !els.is_empty() {
                out.push(0x05);
                encode_instrs(out, els);
            }
            out.push(0x0b);
        }
        Instr::Br(n) => {
            out.push(0x0c);
            write_u32(out, *n);
        }
        Instr::BrIf(n) => {
            out.push(0x0d);
            write_u32(out, *n);
        }
        Instr::BrTable { targets, default } => {
            out.push(0x0e);
            write_u32(out, targets.len() as u32);
            for t in targets {
                write_u32(out, *t);
            }
            write_u32(out, *default);
        }
        Instr::Return => out.push(0x0f),
        Instr::Call(f) => {
            out.push(0x10);
            write_u32(out, *f);
        }
        Instr::Drop => out.push(0x1a),
        Instr::Select => out.push(0x1b),
        Instr::LocalGet(n) => {
            out.push(0x20);
            write_u32(out, *n);
        }
        Instr::LocalSet(n) => {
            out.push(0x21);
            write_u32(out, *n);
        }
        Instr::LocalTee(n) => {
            out.push(0x22);
            write_u32(out, *n);
        }
        Instr::GlobalGet(n) => {
            out.push(0x23);
            write_u32(out, *n);
        }
        Instr::GlobalSet(n) => {
            out.push(0x24);
            write_u32(out, *n);
        }
        Instr::Load { width, offset } => {
            let (op, align) = match width {
                Width::W32 => (0x28, 2),
                Width::W64 => (0x29, 3),
            };
            out.push(op);
            write_u32(out, align);
            write_u32(out, *offset);
        }
        Instr::Store { width, offset } => {
            let (op, align) = match width {
                Width::W32 => (0x36, 2),
                Width::W64 => (0x37, 3),
            };
            out.push(op);
            write_u32(out, align);
            write_u32(out, *offset);
        }
        Instr::MemorySize => {
            out.push(0x3f);
            out.push(0x00);
        }
        Instr::MemoryGrow => {
            out.push(0x40);
            out.push(0x00);
        }
        Instr::I32Const(v) => {
            out.push(0x41);
            write_i32(out, *v);
        }
        Instr::I64Const(v) => {
            out.push(0x42);
            write_i64(out, *v);
        }
        Instr::Eqz(Width::W32) => out.push(0x45),
        Instr::Eqz(Width::W64) => out.push(0x50),
        Instr::Rel { width, op } => out.push(rel_opcode(*width, *op)),
        Instr::Unary { width, op } => out.push(unary_opcode(*width, *op)),
        Instr::Binary { width, op } => out.push(binary_opcode(*width, *op)),
        Instr::I32WrapI64 => out.push(0xa7),
        Instr::I64ExtendI32S => out.push(0xac),
        Instr::I64ExtendI32U => out.push(0xad),
    }
}

pub(crate) fn rel_opcode(width: Width, op: IRelOp) -> u8 {
    let base = match width {
        Width::W32 => 0x46,
        Width::W64 => 0x51,
    };
    let off = match op {
        IRelOp::Eq => 0,
        IRelOp::Ne => 1,
        IRelOp::LtS => 2,
        IRelOp::LtU => 3,
        IRelOp::GtS => 4,
        IRelOp::GtU => 5,
        IRelOp::LeS => 6,
        IRelOp::LeU => 7,
        IRelOp::GeS => 8,
        IRelOp::GeU => 9,
    };
    base + off
}

pub(crate) fn unary_opcode(width: Width, op: IUnOp) -> u8 {
    let base = match width {
        Width::W32 => 0x67,
        Width::W64 => 0x79,
    };
    let off = match op {
        IUnOp::Clz => 0,
        IUnOp::Ctz => 1,
        IUnOp::Popcnt => 2,
    };
    base + off
}

pub(crate) fn binary_opcode(width: Width, op: IBinOp) -> u8 {
    let base = match width {
        Width::W32 => 0x6a,
        Width::W64 => 0x7c,
    };
    let off = match op {
        IBinOp::Add => 0,
        IBinOp::Sub => 1,
        IBinOp::Mul => 2,
        IBinOp::DivS => 3,
        IBinOp::DivU => 4,
        IBinOp::RemS => 5,
        IBinOp::RemU => 6,
        IBinOp::And => 7,
        IBinOp::Or => 8,
        IBinOp::Xor => 9,
        IBinOp::Shl => 10,
        IBinOp::ShrS => 11,
        IBinOp::ShrU => 12,
        IBinOp::Rotl => 13,
        IBinOp::Rotr => 14,
    };
    base + off
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{BlockType, FuncType, ValType};

    #[test]
    fn empty_module_is_just_header() {
        let bytes = encode_module(&Module::new());
        assert_eq!(bytes, MAGIC.to_vec());
    }

    #[test]
    fn nop_function_encodes() {
        let mut m = Module::new();
        m.add_function(FuncType::default(), vec![], vec![Instr::Nop]);
        let bytes = encode_module(&m);
        // Header + type + function + code sections present.
        assert!(bytes.len() > 8);
        assert!(bytes[8..].contains(&0x60)); // functype marker
        assert!(bytes.ends_with(&[0x01, 0x0b])); // nop, end
    }

    #[test]
    fn opcode_tables_are_contiguous() {
        assert_eq!(rel_opcode(Width::W32, IRelOp::Eq), 0x46);
        assert_eq!(rel_opcode(Width::W32, IRelOp::GeU), 0x4f);
        assert_eq!(rel_opcode(Width::W64, IRelOp::Eq), 0x51);
        assert_eq!(rel_opcode(Width::W64, IRelOp::GeU), 0x5a);
        assert_eq!(binary_opcode(Width::W32, IBinOp::Add), 0x6a);
        assert_eq!(binary_opcode(Width::W32, IBinOp::Rotr), 0x78);
        assert_eq!(binary_opcode(Width::W64, IBinOp::Add), 0x7c);
        assert_eq!(binary_opcode(Width::W64, IBinOp::Rotr), 0x8a);
        assert_eq!(unary_opcode(Width::W64, IUnOp::Popcnt), 0x7b);
    }

    #[test]
    fn if_with_else_has_else_marker() {
        let mut body = Vec::new();
        encode_instr(
            &mut body,
            &Instr::If {
                ty: BlockType::Empty,
                then: vec![Instr::Nop],
                els: vec![Instr::Unreachable],
            },
        );
        assert_eq!(body, vec![0x04, 0x40, 0x01, 0x05, 0x00, 0x0b]);
    }

    #[test]
    fn memory_and_globals_encode() {
        let mut m = Module::new();
        m.memory = Some(crate::types::Limits {
            min: 1,
            max: Some(4),
        });
        m.globals.push(crate::module::Global {
            ty: ValType::I64,
            mutable: true,
            init: -7,
        });
        let bytes = encode_module(&m);
        assert!(bytes.windows(2).any(|w| w == [0x01, 0x01])); // limits flag+min
        assert!(bytes.contains(&0x42)); // i64.const in global init
    }
}
