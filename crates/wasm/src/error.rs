//! Error types for WASM module processing.

use std::error::Error;
use std::fmt;

/// Errors produced while decoding, encoding or validating WASM modules.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WasmError {
    /// The module does not start with `\0asm` + version 1.
    BadMagic,
    /// The byte stream ended prematurely.
    UnexpectedEof,
    /// A LEB128 integer was malformed or overlong.
    BadLeb128 {
        /// Offset where decoding started.
        offset: usize,
    },
    /// An unknown or unsupported opcode byte.
    UnsupportedOpcode {
        /// The opcode byte.
        byte: u8,
        /// Offset of the byte.
        offset: usize,
    },
    /// A section appeared out of order or twice.
    BadSection {
        /// The section id.
        id: u8,
    },
    /// An index (type, function, local, global, label) is out of range.
    IndexOutOfRange {
        /// What kind of index.
        kind: &'static str,
        /// The offending index.
        index: u32,
        /// Number of valid entries.
        limit: usize,
    },
    /// A value type byte is not one of the supported types.
    BadValType {
        /// The type byte.
        byte: u8,
    },
    /// Structured control flow is malformed (unbalanced `end`/`else`).
    UnbalancedControl,
}

impl fmt::Display for WasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WasmError::BadMagic => write!(f, "missing or wrong wasm magic/version header"),
            WasmError::UnexpectedEof => write!(f, "unexpected end of module bytes"),
            WasmError::BadLeb128 { offset } => {
                write!(f, "malformed LEB128 integer at offset {offset}")
            }
            WasmError::UnsupportedOpcode { byte, offset } => {
                write!(f, "unsupported opcode 0x{byte:02x} at offset {offset}")
            }
            WasmError::BadSection { id } => {
                write!(f, "section id {id} out of order, duplicated or unknown")
            }
            WasmError::IndexOutOfRange { kind, index, limit } => {
                write!(f, "{kind} index {index} out of range (limit {limit})")
            }
            WasmError::BadValType { byte } => {
                write!(f, "unsupported value type byte 0x{byte:02x}")
            }
            WasmError::UnbalancedControl => {
                write!(f, "unbalanced structured control flow in function body")
            }
        }
    }
}

impl Error for WasmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_nonempty_and_lowercase() {
        let errs = vec![
            WasmError::BadMagic,
            WasmError::UnexpectedEof,
            WasmError::BadLeb128 { offset: 3 },
            WasmError::UnsupportedOpcode {
                byte: 0xf0,
                offset: 9,
            },
            WasmError::BadSection { id: 42 },
            WasmError::IndexOutOfRange {
                kind: "type",
                index: 7,
                limit: 2,
            },
            WasmError::BadValType { byte: 0x7b },
            WasmError::UnbalancedControl,
        ];
        for e in errs {
            let m = e.to_string();
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<WasmError>();
    }
}
