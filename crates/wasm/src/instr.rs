//! The WASM instruction subset (integer MVP + structured control flow).

use crate::types::BlockType;

/// Integer unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum IUnOp {
    Clz,
    Ctz,
    Popcnt,
}

/// Integer binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum IBinOp {
    Add,
    Sub,
    Mul,
    DivS,
    DivU,
    RemS,
    RemU,
    And,
    Or,
    Xor,
    Shl,
    ShrS,
    ShrU,
    Rotl,
    Rotr,
}

/// Integer comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum IRelOp {
    Eq,
    Ne,
    LtS,
    LtU,
    GtS,
    GtU,
    LeS,
    LeU,
    GeS,
    GeU,
}

/// Width selector for numeric instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Width {
    W32,
    W64,
}

/// One WASM instruction (structured: block bodies are nested).
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Trap immediately.
    Unreachable,
    /// Do nothing.
    Nop,
    /// A forward-branching structured block.
    Block {
        /// Result type of the block.
        ty: BlockType,
        /// The nested body.
        body: Vec<Instr>,
    },
    /// A backward-branching structured block (branch target is the header).
    Loop {
        /// Result type of the loop.
        ty: BlockType,
        /// The nested body.
        body: Vec<Instr>,
    },
    /// Two-armed conditional.
    If {
        /// Result type.
        ty: BlockType,
        /// Taken when the condition is nonzero.
        then: Vec<Instr>,
        /// Taken when the condition is zero (may be empty).
        els: Vec<Instr>,
    },
    /// Unconditional branch to the `n`-th enclosing label.
    Br(u32),
    /// Conditional branch to the `n`-th enclosing label.
    BrIf(u32),
    /// Multi-way branch.
    BrTable {
        /// Jump table entries.
        targets: Vec<u32>,
        /// Default label.
        default: u32,
    },
    /// Return from the function.
    Return,
    /// Direct call of function `index` (imports first, then local
    /// functions, per the WASM index space).
    Call(u32),
    /// Drop the top stack value.
    Drop,
    /// Ternary select.
    Select,
    /// Read local.
    LocalGet(u32),
    /// Write local.
    LocalSet(u32),
    /// Write local, keep value.
    LocalTee(u32),
    /// Read global.
    GlobalGet(u32),
    /// Write global.
    GlobalSet(u32),
    /// Load from linear memory.
    Load {
        /// 32- or 64-bit load.
        width: Width,
        /// Static address offset.
        offset: u32,
    },
    /// Store to linear memory.
    Store {
        /// 32- or 64-bit store.
        width: Width,
        /// Static address offset.
        offset: u32,
    },
    /// Current memory size (pages).
    MemorySize,
    /// Grow linear memory.
    MemoryGrow,
    /// Push an `i32` constant.
    I32Const(i32),
    /// Push an `i64` constant.
    I64Const(i64),
    /// Test against zero (`i32.eqz` / `i64.eqz`).
    Eqz(Width),
    /// Comparison producing an `i32` flag.
    Rel {
        /// Operand width.
        width: Width,
        /// The comparison.
        op: IRelOp,
    },
    /// Unary numeric operation.
    Unary {
        /// Operand width.
        width: Width,
        /// The operator.
        op: IUnOp,
    },
    /// Binary numeric operation.
    Binary {
        /// Operand width.
        width: Width,
        /// The operator.
        op: IBinOp,
    },
    /// `i32.wrap_i64`.
    I32WrapI64,
    /// `i64.extend_i32_s`.
    I64ExtendI32S,
    /// `i64.extend_i32_u`.
    I64ExtendI32U,
}

impl Instr {
    /// `true` for the structured-control instructions that carry nested
    /// bodies.
    pub fn is_structured(&self) -> bool {
        matches!(
            self,
            Instr::Block { .. } | Instr::Loop { .. } | Instr::If { .. }
        )
    }

    /// `true` if the instruction unconditionally diverts control
    /// (`br`, `br_table`, `return`, `unreachable`).
    pub fn is_unconditional_exit(&self) -> bool {
        matches!(
            self,
            Instr::Br(_) | Instr::BrTable { .. } | Instr::Return | Instr::Unreachable
        )
    }

    /// Counts this instruction plus all nested instructions.
    pub fn size(&self) -> usize {
        match self {
            Instr::Block { body, .. } | Instr::Loop { body, .. } => {
                1 + body.iter().map(Instr::size).sum::<usize>()
            }
            Instr::If { then, els, .. } => {
                1 + then.iter().map(Instr::size).sum::<usize>()
                    + els.iter().map(Instr::size).sum::<usize>()
            }
            _ => 1,
        }
    }
}

/// Total instruction count of a body (including nested).
pub fn body_size(body: &[Instr]) -> usize {
    body.iter().map(Instr::size).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structured_detection() {
        assert!(Instr::Block {
            ty: BlockType::Empty,
            body: vec![]
        }
        .is_structured());
        assert!(Instr::Loop {
            ty: BlockType::Empty,
            body: vec![]
        }
        .is_structured());
        assert!(!Instr::Nop.is_structured());
    }

    #[test]
    fn exit_detection() {
        assert!(Instr::Br(0).is_unconditional_exit());
        assert!(Instr::Return.is_unconditional_exit());
        assert!(Instr::Unreachable.is_unconditional_exit());
        assert!(!Instr::BrIf(0).is_unconditional_exit());
    }

    #[test]
    fn size_counts_nested() {
        let i = Instr::Block {
            ty: BlockType::Empty,
            body: vec![
                Instr::Nop,
                Instr::If {
                    ty: BlockType::Empty,
                    then: vec![Instr::Nop, Instr::Nop],
                    els: vec![Instr::Return],
                },
            ],
        };
        assert_eq!(i.size(), 6);
        assert_eq!(body_size(&[i, Instr::Nop]), 7);
    }
}
