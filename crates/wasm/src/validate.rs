//! Lightweight structural validation of WASM modules.
//!
//! This is not a full type checker; it verifies the index-space and
//! control-nesting invariants that the CFG lifter and feature extractor
//! rely on, so malformed modules fail loudly at the boundary instead of
//! corrupting analysis downstream.

use crate::error::WasmError;
use crate::instr::Instr;
use crate::module::{ExportKind, Module};

/// Validates `module`'s structural invariants.
///
/// Checks performed:
///
/// * every import/function type index points into the type section,
/// * every `call` targets a valid function-space index,
/// * every `local.*` index is within params + declared locals,
/// * every `global.*` index is within the global section,
/// * every `br`/`br_if`/`br_table` depth is within its enclosing labels
///   (the implicit function label counts),
/// * exports reference valid indices.
///
/// # Errors
///
/// The first violated invariant as a [`WasmError`].
pub fn validate(module: &Module) -> Result<(), WasmError> {
    let ntypes = module.types.len();
    for imp in &module.imports {
        check_index("type", imp.type_idx, ntypes)?;
    }
    let func_space = module.func_space_len();
    for (fi, f) in module.functions.iter().enumerate() {
        check_index("type", f.type_idx, ntypes)?;
        let params = module.types[f.type_idx as usize].params.len();
        let locals: usize = f.locals.iter().map(|(n, _)| *n as usize).sum();
        let nlocals = params + locals;
        validate_body(&f.body, 1, nlocals, module.globals.len(), func_space).inspect_err(|_e| {
            let _ = fi;
        })?;
    }
    for e in &module.exports {
        match e.kind {
            ExportKind::Func => check_index("function", e.index, func_space)?,
            ExportKind::Memory => {
                if module.memory.is_none() || e.index != 0 {
                    return Err(WasmError::IndexOutOfRange {
                        kind: "memory",
                        index: e.index,
                        limit: module.memory.is_some() as usize,
                    });
                }
            }
        }
    }
    Ok(())
}

fn check_index(kind: &'static str, index: u32, limit: usize) -> Result<(), WasmError> {
    if (index as usize) < limit {
        Ok(())
    } else {
        Err(WasmError::IndexOutOfRange { kind, index, limit })
    }
}

fn validate_body(
    body: &[Instr],
    label_depth: u32,
    nlocals: usize,
    nglobals: usize,
    func_space: usize,
) -> Result<(), WasmError> {
    for i in body {
        match i {
            Instr::Block { body, .. } | Instr::Loop { body, .. } => {
                validate_body(body, label_depth + 1, nlocals, nglobals, func_space)?;
            }
            Instr::If { then, els, .. } => {
                validate_body(then, label_depth + 1, nlocals, nglobals, func_space)?;
                validate_body(els, label_depth + 1, nlocals, nglobals, func_space)?;
            }
            Instr::Br(n) | Instr::BrIf(n) => {
                check_index("label", *n, label_depth as usize)?;
            }
            Instr::BrTable { targets, default } => {
                for t in targets.iter().chain(std::iter::once(default)) {
                    check_index("label", *t, label_depth as usize)?;
                }
            }
            Instr::Call(f) => check_index("function", *f, func_space)?,
            Instr::LocalGet(n) | Instr::LocalSet(n) | Instr::LocalTee(n) => {
                check_index("local", *n, nlocals)?;
            }
            Instr::GlobalGet(n) | Instr::GlobalSet(n) => {
                check_index("global", *n, nglobals)?;
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Global;
    use crate::types::{BlockType, FuncType, ValType};

    fn one_func(body: Vec<Instr>) -> Module {
        let mut m = Module::new();
        m.add_function(
            FuncType::new(vec![ValType::I32], vec![]),
            vec![(1, ValType::I64)],
            body,
        );
        m
    }

    #[test]
    fn valid_module_passes() {
        let mut m = one_func(vec![
            Instr::LocalGet(0),
            Instr::LocalSet(1),
            Instr::Block {
                ty: BlockType::Empty,
                body: vec![Instr::Br(1)], // implicit function label
            },
        ]);
        m.globals.push(Global {
            ty: ValType::I32,
            mutable: true,
            init: 0,
        });
        m.functions[0].body.push(Instr::GlobalGet(0));
        assert_eq!(validate(&m), Ok(()));
    }

    #[test]
    fn bad_local_index() {
        let m = one_func(vec![Instr::LocalGet(2)]); // only locals 0..=1
        assert!(matches!(
            validate(&m),
            Err(WasmError::IndexOutOfRange {
                kind: "local",
                index: 2,
                ..
            })
        ));
    }

    #[test]
    fn bad_branch_depth() {
        let m = one_func(vec![Instr::Br(5)]);
        assert!(matches!(
            validate(&m),
            Err(WasmError::IndexOutOfRange { kind: "label", .. })
        ));
    }

    #[test]
    fn bad_call_target() {
        let m = one_func(vec![Instr::Call(9)]);
        assert!(matches!(
            validate(&m),
            Err(WasmError::IndexOutOfRange {
                kind: "function",
                ..
            })
        ));
    }

    #[test]
    fn bad_global_index() {
        let m = one_func(vec![Instr::GlobalSet(0)]);
        assert!(matches!(
            validate(&m),
            Err(WasmError::IndexOutOfRange { kind: "global", .. })
        ));
    }

    #[test]
    fn bad_export() {
        let mut m = Module::new();
        m.export_func("ghost", 3);
        assert!(validate(&m).is_err());
    }

    #[test]
    fn nested_depth_is_tracked() {
        let m = one_func(vec![Instr::Block {
            ty: BlockType::Empty,
            body: vec![Instr::If {
                ty: BlockType::Empty,
                then: vec![Instr::Br(2)], // block + if + function = ok
                els: vec![Instr::Br(3)],  // too deep
            }],
        }]);
        assert!(validate(&m).is_err());
    }
}
