//! A blockchain host ABI for WASM contracts.
//!
//! WASM chains (NEAR, Polkadot contracts, EOS, the Internet Computer)
//! expose chain state to contracts through host imports rather than
//! opcodes. This module defines a representative `"env"` namespace —
//! modelled on the NEAR/ink! surface — that the dataset generators target
//! and that the unified IR recognises to classify call sites (a call to
//! `transfer` is a value flow; a call to `storage_write` is a state write;
//! etc.), mirroring how EVM `CALL`/`SSTORE` are classified.

use crate::module::Module;
use crate::types::{FuncType, ValType};

/// Semantic classes of host functions, aligned with the EVM opcode
/// categories they correspond to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostClass {
    /// Reads transaction environment (caller, value, input).
    Environment,
    /// Reads block environment (timestamp, height).
    Block,
    /// Moves value (like `CALL` with value / `SELFDESTRUCT` sweeps).
    ValueTransfer,
    /// Persistent state read (like `SLOAD`).
    StorageRead,
    /// Persistent state write (like `SSTORE`).
    StorageWrite,
    /// Event emission (like `LOG*`).
    Log,
    /// Cross-contract call (like `CALL`).
    CrossCall,
    /// Aborts execution (like `REVERT`).
    Abort,
    /// Cryptographic primitive (like `KECCAK256`).
    Crypto,
}

/// One host function: name, signature, semantic class.
#[derive(Debug, Clone, PartialEq)]
pub struct HostFunc {
    /// Import field name within `"env"`.
    pub name: &'static str,
    /// Signature.
    pub ty: FuncType,
    /// Semantic class.
    pub class: HostClass,
}

/// The standard host environment table.
///
/// Pointer/length pairs are `i32`; amounts, balances and account handles
/// are `i64` (a simplification of NEAR's 128-bit balances that preserves
/// the call-shape).
pub fn standard_env() -> Vec<HostFunc> {
    use HostClass::*;
    use ValType::{I32, I64};
    vec![
        HostFunc {
            name: "caller",
            ty: FuncType::new(vec![], vec![I64]),
            class: Environment,
        },
        HostFunc {
            name: "attached_value",
            ty: FuncType::new(vec![], vec![I64]),
            class: Environment,
        },
        HostFunc {
            name: "input",
            ty: FuncType::new(vec![I32, I32], vec![I32]),
            class: Environment,
        },
        HostFunc {
            name: "block_timestamp",
            ty: FuncType::new(vec![], vec![I64]),
            class: Block,
        },
        HostFunc {
            name: "block_height",
            ty: FuncType::new(vec![], vec![I64]),
            class: Block,
        },
        HostFunc {
            name: "account_balance",
            ty: FuncType::new(vec![I64], vec![I64]),
            class: Environment,
        },
        HostFunc {
            name: "transfer",
            ty: FuncType::new(vec![I64, I64], vec![]),
            class: ValueTransfer,
        },
        HostFunc {
            name: "storage_read",
            ty: FuncType::new(vec![I64], vec![I64]),
            class: StorageRead,
        },
        HostFunc {
            name: "storage_write",
            ty: FuncType::new(vec![I64, I64], vec![]),
            class: StorageWrite,
        },
        HostFunc {
            name: "log",
            ty: FuncType::new(vec![I32, I32], vec![]),
            class: Log,
        },
        HostFunc {
            name: "call_contract",
            ty: FuncType::new(vec![I64, I32, I32], vec![I64]),
            class: CrossCall,
        },
        HostFunc {
            name: "panic",
            ty: FuncType::new(vec![], vec![]),
            class: Abort,
        },
        HostFunc {
            name: "sha256",
            ty: FuncType::new(vec![I32, I32], vec![I64]),
            class: Crypto,
        },
    ]
}

/// Looks up the semantic class of host import `name`, if it belongs to the
/// standard environment.
pub fn classify(name: &str) -> Option<HostClass> {
    standard_env()
        .into_iter()
        .find(|h| h.name == name)
        .map(|h| h.class)
}

/// Imports the whole standard environment into `module`, returning the
/// function-space index of each host function by position in
/// [`standard_env`].
pub fn import_standard_env(module: &mut Module) -> Vec<u32> {
    standard_env()
        .into_iter()
        .map(|h| module.add_import("env", h.name, h.ty))
        .collect()
}

/// Indexes into the vector returned by [`import_standard_env`], named for
/// readability at generator call sites.
#[allow(missing_docs)]
pub mod idx {
    pub const CALLER: usize = 0;
    pub const ATTACHED_VALUE: usize = 1;
    pub const INPUT: usize = 2;
    pub const BLOCK_TIMESTAMP: usize = 3;
    pub const BLOCK_HEIGHT: usize = 4;
    pub const ACCOUNT_BALANCE: usize = 5;
    pub const TRANSFER: usize = 6;
    pub const STORAGE_READ: usize = 7;
    pub const STORAGE_WRITE: usize = 8;
    pub const LOG: usize = 9;
    pub const CALL_CONTRACT: usize = 10;
    pub const PANIC: usize = 11;
    pub const SHA256: usize = 12;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_names_unique() {
        let env = standard_env();
        let mut names: Vec<&str> = env.iter().map(|h| h.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), env.len());
    }

    #[test]
    fn classify_known_and_unknown() {
        assert_eq!(classify("transfer"), Some(HostClass::ValueTransfer));
        assert_eq!(classify("storage_write"), Some(HostClass::StorageWrite));
        assert_eq!(classify("frobnicate"), None);
    }

    #[test]
    fn import_standard_env_indices_match() {
        let mut m = Module::new();
        let ids = import_standard_env(&mut m);
        assert_eq!(ids.len(), standard_env().len());
        assert_eq!(m.imports.len(), ids.len());
        assert_eq!(m.imports[idx::TRANSFER].name, "transfer");
        assert_eq!(m.imports[idx::PANIC].name, "panic");
        // Function-space indices are contiguous from zero.
        assert_eq!(ids, (0..ids.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn validates_after_import() {
        let mut m = Module::new();
        import_standard_env(&mut m);
        assert!(crate::validate::validate(&m).is_ok());
    }
}
