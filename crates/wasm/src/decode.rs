//! WASM binary-format decoder for the supported subset.

use crate::error::WasmError;
use crate::instr::{IBinOp, IRelOp, IUnOp, Instr, Width};
use crate::leb::Reader;
use crate::module::{Export, ExportKind, Function, Global, Import, Module};
use crate::types::{BlockType, FuncType, Limits, ValType};

/// Decodes a binary WASM module.
///
/// Custom sections (id 0) are skipped; unknown non-custom sections are an
/// error. Only the integer subset emitted by [`crate::encode`] is accepted
/// — unsupported opcodes are reported with their offset.
///
/// # Errors
///
/// Any [`WasmError`] variant describing the malformation.
///
/// # Examples
///
/// ```
/// use scamdetect_wasm::{decode::decode_module, encode::encode_module, module::Module};
///
/// # fn main() -> Result<(), scamdetect_wasm::WasmError> {
/// let original = Module::new();
/// let decoded = decode_module(&encode_module(&original))?;
/// assert_eq!(decoded, original);
/// # Ok(())
/// # }
/// ```
pub fn decode_module(bytes: &[u8]) -> Result<Module, WasmError> {
    let mut r = Reader::new(bytes);
    let magic = r.take(8).map_err(|_| WasmError::BadMagic)?;
    if magic != [0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00] {
        return Err(WasmError::BadMagic);
    }

    let mut module = Module::new();
    let mut last_section = 0u8;
    let mut func_type_indices: Vec<u32> = Vec::new();

    while !r.is_at_end() {
        let id = r.byte()?;
        let size = r.u32()? as usize;
        let contents = r.take(size)?;
        if id == 0 {
            continue; // custom section
        }
        if id <= last_section {
            return Err(WasmError::BadSection { id });
        }
        last_section = id;
        let mut sr = Reader::new(contents);
        match id {
            1 => {
                let count = sr.u32()?;
                for _ in 0..count {
                    let marker = sr.byte()?;
                    if marker != 0x60 {
                        return Err(WasmError::BadValType { byte: marker });
                    }
                    let np = sr.u32()?;
                    let mut params = Vec::with_capacity(np as usize);
                    for _ in 0..np {
                        params.push(ValType::from_byte(sr.byte()?)?);
                    }
                    let nr = sr.u32()?;
                    let mut results = Vec::with_capacity(nr as usize);
                    for _ in 0..nr {
                        results.push(ValType::from_byte(sr.byte()?)?);
                    }
                    module.types.push(FuncType { params, results });
                }
            }
            2 => {
                let count = sr.u32()?;
                for _ in 0..count {
                    let mod_name = sr.name()?;
                    let field = sr.name()?;
                    let kind = sr.byte()?;
                    if kind != 0x00 {
                        return Err(WasmError::UnsupportedOpcode {
                            byte: kind,
                            offset: sr.pos(),
                        });
                    }
                    let type_idx = sr.u32()?;
                    module.imports.push(Import {
                        module: mod_name,
                        name: field,
                        type_idx,
                    });
                }
            }
            3 => {
                let count = sr.u32()?;
                for _ in 0..count {
                    func_type_indices.push(sr.u32()?);
                }
            }
            5 => {
                let count = sr.u32()?;
                if count > 0 {
                    let flags = sr.byte()?;
                    let min = sr.u32()?;
                    let max = if flags & 1 != 0 {
                        Some(sr.u32()?)
                    } else {
                        None
                    };
                    module.memory = Some(Limits { min, max });
                }
            }
            6 => {
                let count = sr.u32()?;
                for _ in 0..count {
                    let ty = ValType::from_byte(sr.byte()?)?;
                    let mutable = sr.byte()? != 0;
                    let opc = sr.byte()?;
                    let init = match (ty, opc) {
                        (ValType::I32, 0x41) => sr.i32()? as i64,
                        (ValType::I64, 0x42) => sr.i64()?,
                        _ => {
                            return Err(WasmError::UnsupportedOpcode {
                                byte: opc,
                                offset: sr.pos(),
                            })
                        }
                    };
                    let end = sr.byte()?;
                    if end != 0x0b {
                        return Err(WasmError::UnbalancedControl);
                    }
                    module.globals.push(Global { ty, mutable, init });
                }
            }
            7 => {
                let count = sr.u32()?;
                for _ in 0..count {
                    let name = sr.name()?;
                    let kind = match sr.byte()? {
                        0x00 => ExportKind::Func,
                        0x02 => ExportKind::Memory,
                        byte => {
                            return Err(WasmError::UnsupportedOpcode {
                                byte,
                                offset: sr.pos(),
                            })
                        }
                    };
                    let index = sr.u32()?;
                    module.exports.push(Export { name, kind, index });
                }
            }
            10 => {
                let count = sr.u32()? as usize;
                if count != func_type_indices.len() {
                    return Err(WasmError::BadSection { id: 10 });
                }
                for type_idx in &func_type_indices {
                    let body_size = sr.u32()? as usize;
                    let body_bytes = sr.take(body_size)?;
                    let mut br = Reader::new(body_bytes);
                    let nlocals = br.u32()?;
                    let mut locals = Vec::with_capacity(nlocals as usize);
                    for _ in 0..nlocals {
                        let n = br.u32()?;
                        let ty = ValType::from_byte(br.byte()?)?;
                        locals.push((n, ty));
                    }
                    let (body, term) = decode_instrs(&mut br)?;
                    if term != 0x0b || !br.is_at_end() {
                        return Err(WasmError::UnbalancedControl);
                    }
                    module.functions.push(Function {
                        type_idx: *type_idx,
                        locals,
                        body,
                    });
                }
            }
            _ => return Err(WasmError::BadSection { id }),
        }
    }

    if module.functions.len() != func_type_indices.len() {
        return Err(WasmError::BadSection { id: 10 });
    }
    Ok(module)
}

/// Decodes instructions until `end` (0x0b) or `else` (0x05), returning the
/// terminator byte alongside the parsed sequence.
fn decode_instrs(r: &mut Reader<'_>) -> Result<(Vec<Instr>, u8), WasmError> {
    let mut out = Vec::new();
    loop {
        let offset = r.pos();
        let opc = r.byte()?;
        let instr = match opc {
            0x0b | 0x05 => return Ok((out, opc)),
            0x00 => Instr::Unreachable,
            0x01 => Instr::Nop,
            0x02 | 0x03 => {
                let ty = BlockType::from_byte(r.byte()?)?;
                let (body, term) = decode_instrs(r)?;
                if term != 0x0b {
                    return Err(WasmError::UnbalancedControl);
                }
                if opc == 0x02 {
                    Instr::Block { ty, body }
                } else {
                    Instr::Loop { ty, body }
                }
            }
            0x04 => {
                let ty = BlockType::from_byte(r.byte()?)?;
                let (then, term) = decode_instrs(r)?;
                let els = if term == 0x05 {
                    let (els, term2) = decode_instrs(r)?;
                    if term2 != 0x0b {
                        return Err(WasmError::UnbalancedControl);
                    }
                    els
                } else {
                    Vec::new()
                };
                Instr::If { ty, then, els }
            }
            0x0c => Instr::Br(r.u32()?),
            0x0d => Instr::BrIf(r.u32()?),
            0x0e => {
                let n = r.u32()?;
                let mut targets = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    targets.push(r.u32()?);
                }
                let default = r.u32()?;
                Instr::BrTable { targets, default }
            }
            0x0f => Instr::Return,
            0x10 => Instr::Call(r.u32()?),
            0x1a => Instr::Drop,
            0x1b => Instr::Select,
            0x20 => Instr::LocalGet(r.u32()?),
            0x21 => Instr::LocalSet(r.u32()?),
            0x22 => Instr::LocalTee(r.u32()?),
            0x23 => Instr::GlobalGet(r.u32()?),
            0x24 => Instr::GlobalSet(r.u32()?),
            0x28 | 0x29 => {
                let _align = r.u32()?;
                let offset = r.u32()?;
                Instr::Load {
                    width: if opc == 0x28 { Width::W32 } else { Width::W64 },
                    offset,
                }
            }
            0x36 | 0x37 => {
                let _align = r.u32()?;
                let offset = r.u32()?;
                Instr::Store {
                    width: if opc == 0x36 { Width::W32 } else { Width::W64 },
                    offset,
                }
            }
            0x3f => {
                r.byte()?;
                Instr::MemorySize
            }
            0x40 => {
                r.byte()?;
                Instr::MemoryGrow
            }
            0x41 => Instr::I32Const(r.i32()?),
            0x42 => Instr::I64Const(r.i64()?),
            0x45 => Instr::Eqz(Width::W32),
            0x50 => Instr::Eqz(Width::W64),
            0x46..=0x4f => Instr::Rel {
                width: Width::W32,
                op: rel_from_offset(opc - 0x46),
            },
            0x51..=0x5a => Instr::Rel {
                width: Width::W64,
                op: rel_from_offset(opc - 0x51),
            },
            0x67..=0x69 => Instr::Unary {
                width: Width::W32,
                op: unary_from_offset(opc - 0x67),
            },
            0x79..=0x7b => Instr::Unary {
                width: Width::W64,
                op: unary_from_offset(opc - 0x79),
            },
            0x6a..=0x78 => Instr::Binary {
                width: Width::W32,
                op: binary_from_offset(opc - 0x6a),
            },
            0x7c..=0x8a => Instr::Binary {
                width: Width::W64,
                op: binary_from_offset(opc - 0x7c),
            },
            0xa7 => Instr::I32WrapI64,
            0xac => Instr::I64ExtendI32S,
            0xad => Instr::I64ExtendI32U,
            byte => return Err(WasmError::UnsupportedOpcode { byte, offset }),
        };
        out.push(instr);
    }
}

fn rel_from_offset(off: u8) -> IRelOp {
    [
        IRelOp::Eq,
        IRelOp::Ne,
        IRelOp::LtS,
        IRelOp::LtU,
        IRelOp::GtS,
        IRelOp::GtU,
        IRelOp::LeS,
        IRelOp::LeU,
        IRelOp::GeS,
        IRelOp::GeU,
    ][off as usize]
}

fn unary_from_offset(off: u8) -> IUnOp {
    [IUnOp::Clz, IUnOp::Ctz, IUnOp::Popcnt][off as usize]
}

fn binary_from_offset(off: u8) -> IBinOp {
    [
        IBinOp::Add,
        IBinOp::Sub,
        IBinOp::Mul,
        IBinOp::DivS,
        IBinOp::DivU,
        IBinOp::RemS,
        IBinOp::RemU,
        IBinOp::And,
        IBinOp::Or,
        IBinOp::Xor,
        IBinOp::Shl,
        IBinOp::ShrS,
        IBinOp::ShrU,
        IBinOp::Rotl,
        IBinOp::Rotr,
    ][off as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_module;
    use crate::types::{BlockType, FuncType};

    fn roundtrip(m: &Module) -> Module {
        decode_module(&encode_module(m)).expect("roundtrip decode")
    }

    #[test]
    fn rich_module_roundtrips() {
        let mut m = Module::new();
        m.memory = Some(Limits {
            min: 1,
            max: Some(16),
        });
        m.globals.push(Global {
            ty: ValType::I64,
            mutable: true,
            init: -42,
        });
        let caller = m.add_import("env", "caller", FuncType::new(vec![], vec![ValType::I64]));
        let f = m.add_function(
            FuncType::new(vec![ValType::I32], vec![ValType::I32]),
            vec![(2, ValType::I64)],
            vec![
                Instr::Block {
                    ty: BlockType::Empty,
                    body: vec![
                        Instr::LocalGet(0),
                        Instr::Eqz(Width::W32),
                        Instr::BrIf(0),
                        Instr::Call(caller),
                        Instr::Drop,
                    ],
                },
                Instr::Loop {
                    ty: BlockType::Empty,
                    body: vec![
                        Instr::LocalGet(0),
                        Instr::I32Const(1),
                        Instr::Binary {
                            width: Width::W32,
                            op: IBinOp::Sub,
                        },
                        Instr::LocalTee(0),
                        Instr::BrIf(0),
                    ],
                },
                Instr::If {
                    ty: BlockType::Value(ValType::I32),
                    then: vec![Instr::I32Const(1)],
                    els: vec![Instr::I32Const(0)],
                },
                Instr::Return,
            ],
        );
        m.export_func("main", f);
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode_module(b"\0asn\x01\0\0\0"), Err(WasmError::BadMagic));
        assert_eq!(decode_module(&[]), Err(WasmError::BadMagic));
    }

    #[test]
    fn out_of_order_sections_rejected() {
        let mut m = Module::new();
        m.add_function(FuncType::default(), vec![], vec![Instr::Nop]);
        let bytes = encode_module(&m);
        // Duplicate the type section at the end.
        let mut corrupted = bytes.clone();
        corrupted.extend_from_slice(&[0x01, 0x01, 0x00]);
        assert!(matches!(
            decode_module(&corrupted),
            Err(WasmError::BadSection { id: 1 })
        ));
    }

    #[test]
    fn custom_sections_skipped() {
        let mut bytes = encode_module(&Module::new());
        bytes.extend_from_slice(&[0x00, 0x03, 0x01, 0x61, 0x62]); // custom section
        assert!(decode_module(&bytes).is_ok());
    }

    #[test]
    fn unsupported_opcode_reported_with_offset() {
        let mut m = Module::new();
        m.add_function(FuncType::default(), vec![], vec![Instr::Nop]);
        let mut bytes = encode_module(&m);
        // Replace the nop with an f32.add (0x92).
        let pos = bytes.len() - 2;
        bytes[pos] = 0x92;
        assert!(matches!(
            decode_module(&bytes),
            Err(WasmError::UnsupportedOpcode { byte: 0x92, .. })
        ));
    }

    #[test]
    fn br_table_roundtrips() {
        let mut m = Module::new();
        m.add_function(
            FuncType::default(),
            vec![],
            vec![Instr::Block {
                ty: BlockType::Empty,
                body: vec![Instr::Block {
                    ty: BlockType::Empty,
                    body: vec![
                        Instr::I32Const(2),
                        Instr::BrTable {
                            targets: vec![0, 1],
                            default: 1,
                        },
                    ],
                }],
            }],
        );
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn truncated_body_rejected() {
        let mut m = Module::new();
        m.add_function(FuncType::default(), vec![], vec![Instr::Nop]);
        let bytes = encode_module(&m);
        assert!(decode_module(&bytes[..bytes.len() - 1]).is_err());
    }
}
