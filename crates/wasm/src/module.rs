//! WASM module structure and a convenience builder.

use crate::instr::Instr;
use crate::types::{FuncType, Limits, ValType};

/// An imported host function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Import {
    /// Module namespace (e.g. `"env"`).
    pub module: String,
    /// Field name (e.g. `"transfer"`).
    pub name: String,
    /// Index into the module's type section.
    pub type_idx: u32,
}

/// A locally defined function.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Index into the type section.
    pub type_idx: u32,
    /// Local declarations as `(count, type)` runs.
    pub locals: Vec<(u32, ValType)>,
    /// Structured body.
    pub body: Vec<Instr>,
}

/// What an export refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportKind {
    /// A function (by function-space index: imports first).
    Func,
    /// The linear memory.
    Memory,
}

/// A module export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Export {
    /// Exported name.
    pub name: String,
    /// Kind of entity.
    pub kind: ExportKind,
    /// Index within the kind's space.
    pub index: u32,
}

/// A module global.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Global {
    /// Value type.
    pub ty: ValType,
    /// Mutability.
    pub mutable: bool,
    /// Constant initialiser (encoded as `iNN.const`).
    pub init: i64,
}

/// A WASM module (the subset relevant to contract runtimes).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Function signatures.
    pub types: Vec<FuncType>,
    /// Host-function imports.
    pub imports: Vec<Import>,
    /// Locally defined functions.
    pub functions: Vec<Function>,
    /// Optional linear memory.
    pub memory: Option<Limits>,
    /// Module globals.
    pub globals: Vec<Global>,
    /// Exports.
    pub exports: Vec<Export>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Interns `ty`, returning its index (deduplicating).
    pub fn intern_type(&mut self, ty: FuncType) -> u32 {
        if let Some(pos) = self.types.iter().position(|t| *t == ty) {
            return pos as u32;
        }
        self.types.push(ty);
        (self.types.len() - 1) as u32
    }

    /// Adds a host import; returns its function-space index.
    pub fn add_import(&mut self, module: &str, name: &str, ty: FuncType) -> u32 {
        let type_idx = self.intern_type(ty);
        self.imports.push(Import {
            module: module.to_string(),
            name: name.to_string(),
            type_idx,
        });
        (self.imports.len() - 1) as u32
    }

    /// Adds a function; returns its function-space index (after imports).
    pub fn add_function(
        &mut self,
        ty: FuncType,
        locals: Vec<(u32, ValType)>,
        body: Vec<Instr>,
    ) -> u32 {
        let type_idx = self.intern_type(ty);
        self.functions.push(Function {
            type_idx,
            locals,
            body,
        });
        (self.imports.len() + self.functions.len() - 1) as u32
    }

    /// Exports function-space index `index` under `name`.
    pub fn export_func(&mut self, name: &str, index: u32) {
        self.exports.push(Export {
            name: name.to_string(),
            kind: ExportKind::Func,
            index,
        });
    }

    /// Number of entries in the function index space (imports + local).
    pub fn func_space_len(&self) -> usize {
        self.imports.len() + self.functions.len()
    }

    /// Signature of function-space index `index`, if valid.
    pub fn func_type(&self, index: u32) -> Option<&FuncType> {
        let i = index as usize;
        let type_idx = if i < self.imports.len() {
            self.imports[i].type_idx
        } else {
            self.functions.get(i - self.imports.len())?.type_idx
        };
        self.types.get(type_idx as usize)
    }

    /// Looks up an exported function by name, returning its function-space
    /// index.
    pub fn exported_func(&self, name: &str) -> Option<u32> {
        self.exports
            .iter()
            .find(|e| e.kind == ExportKind::Func && e.name == name)
            .map(|e| e.index)
    }

    /// Total instruction count across all function bodies.
    pub fn instruction_count(&self) -> usize {
        self.functions
            .iter()
            .map(|f| crate::instr::body_size(&f.body))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::BlockType;

    #[test]
    fn type_interning_deduplicates() {
        let mut m = Module::new();
        let t1 = m.intern_type(FuncType::new(vec![ValType::I32], vec![]));
        let t2 = m.intern_type(FuncType::new(vec![ValType::I32], vec![]));
        let t3 = m.intern_type(FuncType::new(vec![], vec![]));
        assert_eq!(t1, t2);
        assert_ne!(t1, t3);
        assert_eq!(m.types.len(), 2);
    }

    #[test]
    fn function_space_indices() {
        let mut m = Module::new();
        let imp = m.add_import("env", "caller", FuncType::new(vec![], vec![ValType::I64]));
        let f = m.add_function(FuncType::default(), vec![], vec![Instr::Nop]);
        assert_eq!(imp, 0);
        assert_eq!(f, 1);
        assert_eq!(m.func_space_len(), 2);
        assert!(m.func_type(0).is_some());
        assert!(m.func_type(1).is_some());
        assert!(m.func_type(2).is_none());
    }

    #[test]
    fn exports_lookup() {
        let mut m = Module::new();
        let f = m.add_function(FuncType::default(), vec![], vec![]);
        m.export_func("main", f);
        assert_eq!(m.exported_func("main"), Some(f));
        assert_eq!(m.exported_func("missing"), None);
    }

    #[test]
    fn instruction_count_sums_bodies() {
        let mut m = Module::new();
        m.add_function(
            FuncType::default(),
            vec![],
            vec![Instr::Block {
                ty: BlockType::Empty,
                body: vec![Instr::Nop, Instr::Nop],
            }],
        );
        m.add_function(FuncType::default(), vec![], vec![Instr::Return]);
        assert_eq!(m.instruction_count(), 4);
    }
}
