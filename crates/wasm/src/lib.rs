//! WASM substrate: a binary-format codec and CFG lifter for the integer
//! subset used by smart-contract runtimes.
//!
//! The ScamDetect roadmap's Phase 2 (platform-agnostic detection) needs a
//! second, genuinely different bytecode platform. This crate provides it:
//!
//! * [`types`] / [`instr`] / [`module`] — the module model (integer MVP:
//!   structured control flow, locals/globals, linear memory, host imports),
//! * [`encode`] / [`decode`] — the standard WASM binary format (LEB128,
//!   sections, nested `end`-delimited bodies),
//! * [`validate`] — structural validation of index spaces and label depths,
//! * [`mod@cfg`] — CFG lifting from structured control flow onto the same
//!   graph substrate the EVM frontend uses,
//! * [`hostenv`] — a NEAR-style `"env"` host ABI giving contracts chain
//!   state access, with a semantic classification aligned to EVM opcode
//!   categories.
//!
//! Floats are intentionally unsupported: contract chains commonly forbid
//! them for determinism, and nothing in the detection pipeline needs them.
//!
//! # Examples
//!
//! Build, encode, decode and lift a module:
//!
//! ```
//! use scamdetect_wasm::{
//!     cfg::lift_module, decode::decode_module, encode::encode_module,
//!     instr::Instr, module::Module, types::FuncType,
//! };
//!
//! # fn main() -> Result<(), scamdetect_wasm::WasmError> {
//! let mut m = Module::new();
//! let f = m.add_function(FuncType::default(), vec![], vec![Instr::Nop]);
//! m.export_func("main", f);
//!
//! let bytes = encode_module(&m);
//! let back = decode_module(&bytes)?;
//! assert_eq!(back, m);
//!
//! let cfg = lift_module(&back);
//! assert!(cfg.block_count() >= 2);
//! # Ok(())
//! # }
//! ```

pub mod cfg;
pub mod decode;
pub mod encode;
pub mod error;
pub mod hostenv;
pub mod instr;
pub mod leb;
pub mod module;
pub mod types;
pub mod validate;

pub use error::WasmError;
pub use instr::{IBinOp, IRelOp, IUnOp, Instr, Width};
pub use module::{Export, ExportKind, Function, Global, Import, Module};
pub use types::{BlockType, FuncType, Limits, ValType};
