//! Core WASM type definitions (the integer subset smart contracts use).

use crate::error::WasmError;

/// A WASM value type. Blockchain contract runtimes (NEAR, ink!, eosio)
/// overwhelmingly use the integer types; floats are deliberately excluded
/// from this subset (several chains forbid them for determinism).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValType {
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
}

impl ValType {
    /// Binary-format type byte.
    pub fn byte(self) -> u8 {
        match self {
            ValType::I32 => 0x7f,
            ValType::I64 => 0x7e,
        }
    }

    /// Decodes a type byte.
    ///
    /// # Errors
    ///
    /// [`WasmError::BadValType`] for anything but `i32`/`i64`.
    pub fn from_byte(b: u8) -> Result<Self, WasmError> {
        match b {
            0x7f => Ok(ValType::I32),
            0x7e => Ok(ValType::I64),
            byte => Err(WasmError::BadValType { byte }),
        }
    }
}

/// A function signature.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FuncType {
    /// Parameter types, in order.
    pub params: Vec<ValType>,
    /// Result types (0 or 1 in the MVP subset).
    pub results: Vec<ValType>,
}

impl FuncType {
    /// Creates a signature.
    pub fn new(params: Vec<ValType>, results: Vec<ValType>) -> Self {
        FuncType { params, results }
    }
}

/// The type of a structured control block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BlockType {
    /// No result.
    #[default]
    Empty,
    /// One result of the given type.
    Value(ValType),
}

impl BlockType {
    /// Binary-format encoding byte.
    pub fn byte(self) -> u8 {
        match self {
            BlockType::Empty => 0x40,
            BlockType::Value(v) => v.byte(),
        }
    }

    /// Decodes a blocktype byte.
    ///
    /// # Errors
    ///
    /// [`WasmError::BadValType`] for unsupported bytes.
    pub fn from_byte(b: u8) -> Result<Self, WasmError> {
        if b == 0x40 {
            Ok(BlockType::Empty)
        } else {
            Ok(BlockType::Value(ValType::from_byte(b)?))
        }
    }
}

/// Memory or table size limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Minimum size in pages.
    pub min: u32,
    /// Optional maximum size in pages.
    pub max: Option<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valtype_roundtrip() {
        for t in [ValType::I32, ValType::I64] {
            assert_eq!(ValType::from_byte(t.byte()).unwrap(), t);
        }
        assert!(ValType::from_byte(0x7d).is_err()); // f32 unsupported
    }

    #[test]
    fn blocktype_roundtrip() {
        for bt in [
            BlockType::Empty,
            BlockType::Value(ValType::I32),
            BlockType::Value(ValType::I64),
        ] {
            assert_eq!(BlockType::from_byte(bt.byte()).unwrap(), bt);
        }
    }

    #[test]
    fn functype_construction() {
        let ft = FuncType::new(vec![ValType::I32, ValType::I64], vec![ValType::I32]);
        assert_eq!(ft.params.len(), 2);
        assert_eq!(ft.results, vec![ValType::I32]);
        assert_eq!(FuncType::default().params.len(), 0);
    }
}
