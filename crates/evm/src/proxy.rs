//! ERC-1167 minimal-proxy detection, used for dataset deduplication.
//!
//! Minimal proxies are byte-identical delegation shims that differ only in
//! the 20-byte implementation address. Etherscan-derived corpora are full
//! of them; the ScamDetect roadmap (§V-A) calls for removing such
//! duplicates so a detector cannot inflate accuracy by memorising one
//! implementation cloned thousands of times.

/// The canonical ERC-1167 runtime prefix (10 bytes, before the address).
const ERC1167_PREFIX: [u8; 10] = [0x36, 0x3d, 0x3d, 0x37, 0x3d, 0x3d, 0x3d, 0x36, 0x3d, 0x73];

/// The canonical ERC-1167 runtime suffix (15 bytes, after the address).
const ERC1167_SUFFIX: [u8; 15] = [
    0x5a, 0xf4, 0x3d, 0x82, 0x80, 0x3e, 0x90, 0x3d, 0x91, 0x60, 0x2b, 0x57, 0xfd, 0x5b, 0xf3,
];

/// Vanity-address variants (EIP-1167 allows shorter `PUSHn` for addresses
/// with leading zero bytes): prefix ends with `PUSHn` (`0x73 - k`) and the
/// address is `20 - k` bytes, `k ≤ 19`. We match `k ∈ 0..=2` which covers
/// everything seen in practice.
fn prefix_with_push(k: u8) -> [u8; 10] {
    let mut p = ERC1167_PREFIX;
    p[9] = 0x73 - k;
    p
}

/// Classification of a contract's proxy nature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProxyKind {
    /// Not recognised as a minimal proxy.
    NotProxy,
    /// ERC-1167 minimal proxy delegating to the contained implementation
    /// address (left-padded to 20 bytes for the vanity variants).
    Erc1167 {
        /// The implementation address the proxy delegates every call to.
        implementation: [u8; 20],
    },
}

/// Detects whether `runtime_code` is an ERC-1167 minimal proxy.
///
/// # Examples
///
/// ```
/// use scamdetect_evm::proxy::{detect_proxy, make_erc1167, ProxyKind};
///
/// let implementation = [0xabu8; 20];
/// let proxy = make_erc1167(&implementation);
/// assert_eq!(detect_proxy(&proxy), ProxyKind::Erc1167 { implementation });
/// assert_eq!(detect_proxy(&[0x60, 0x00]), ProxyKind::NotProxy);
/// ```
pub fn detect_proxy(runtime_code: &[u8]) -> ProxyKind {
    for k in 0u8..=2 {
        let addr_len = 20 - k as usize;
        let expected_len = 10 + addr_len + 15;
        if runtime_code.len() != expected_len {
            continue;
        }
        let prefix = prefix_with_push(k);
        if runtime_code[..10] != prefix {
            continue;
        }
        if runtime_code[10 + addr_len..] != ERC1167_SUFFIX {
            continue;
        }
        let mut implementation = [0u8; 20];
        implementation[20 - addr_len..].copy_from_slice(&runtime_code[10..10 + addr_len]);
        return ProxyKind::Erc1167 { implementation };
    }
    ProxyKind::NotProxy
}

/// Builds the canonical 45-byte ERC-1167 runtime for `implementation` —
/// used by tests and by the dataset generator to inject realistic
/// duplicates.
pub fn make_erc1167(implementation: &[u8; 20]) -> Vec<u8> {
    let mut code = Vec::with_capacity(45);
    code.extend_from_slice(&ERC1167_PREFIX);
    code.extend_from_slice(implementation);
    code.extend_from_slice(&ERC1167_SUFFIX);
    code
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The FNV-1a offset basis — the seed for [`fnv1a_extend`] chains.
pub const FNV1A_OFFSET_BASIS: u64 = FNV_OFFSET;

/// Folds `bytes` into a running FNV-1a hash, so multi-part inputs
/// (e.g. a section name followed by its payload) hash without
/// concatenation. Seed the chain with [`FNV1A_OFFSET_BASIS`].
pub fn fnv1a_extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// FNV-1a over raw bytes — the shared fingerprint primitive behind
/// [`skeleton_hash`], the WASM dedup keys in the dataset and scanner,
/// and the model-artifact section checksums.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(FNV_OFFSET, bytes)
}

/// A cheap structural fingerprint for near-duplicate detection: the FNV-1a
/// hash of the opcode-byte sequence with every push *immediate* masked out.
/// Contracts that differ only in embedded constants (addresses, amounts,
/// selectors) collide — which is exactly what dedup wants.
pub fn skeleton_hash(code: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut fold = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    };
    for ins in crate::disasm::disassemble(code) {
        fold(ins.byte);
        // Immediates are masked: only their width contributes.
        fold(ins.immediate.len() as u8);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_proxy_roundtrip() {
        let addr: [u8; 20] = std::array::from_fn(|i| i as u8);
        let code = make_erc1167(&addr);
        assert_eq!(code.len(), 45);
        assert_eq!(
            detect_proxy(&code),
            ProxyKind::Erc1167 {
                implementation: addr
            }
        );
    }

    #[test]
    fn vanity_variant_with_shorter_push() {
        // PUSH19 variant: address with one leading zero byte.
        let addr_19 = [0x11u8; 19];
        let mut code = Vec::new();
        code.extend_from_slice(&prefix_with_push(1));
        code.extend_from_slice(&addr_19);
        code.extend_from_slice(&ERC1167_SUFFIX);
        match detect_proxy(&code) {
            ProxyKind::Erc1167 { implementation } => {
                assert_eq!(implementation[0], 0);
                assert_eq!(&implementation[1..], &addr_19[..]);
            }
            other => panic!("expected proxy, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_suffix_rejected() {
        let mut code = make_erc1167(&[0xaa; 20]);
        *code.last_mut().unwrap() = 0x00;
        assert_eq!(detect_proxy(&code), ProxyKind::NotProxy);
    }

    #[test]
    fn wrong_length_rejected() {
        let mut code = make_erc1167(&[0xaa; 20]);
        code.push(0x00);
        assert_eq!(detect_proxy(&code), ProxyKind::NotProxy);
    }

    #[test]
    fn skeleton_hash_ignores_immediates() {
        // Same shape, different constants.
        let a = [0x60, 0x11, 0x60, 0x22, 0x01, 0x00];
        let b = [0x60, 0x33, 0x60, 0x44, 0x01, 0x00];
        assert_eq!(skeleton_hash(&a), skeleton_hash(&b));
        // Different shape.
        let c = [0x60, 0x11, 0x60, 0x22, 0x02, 0x00];
        assert_ne!(skeleton_hash(&a), skeleton_hash(&c));
    }

    #[test]
    fn proxies_to_same_impl_share_code_but_not_with_other_impls() {
        let p1 = make_erc1167(&[0x01; 20]);
        let p2 = make_erc1167(&[0x02; 20]);
        assert_ne!(p1, p2);
        // Skeletons match: the proxy family is one equivalence class.
        assert_eq!(skeleton_hash(&p1), skeleton_hash(&p2));
    }
}
