//! EVM bytecode substrate: disassembly, assembly and CFG recovery.
//!
//! This crate implements everything ScamDetect needs from the Ethereum
//! Virtual Machine side:
//!
//! * [`opcode`] — the complete Shanghai/Cancun opcode table with stack
//!   arities and semantic categories,
//! * [`disasm`] — a linear-sweep disassembler and opcode-histogram
//!   features (the PhishingHook representation),
//! * [`asm`] — a label-aware assembler used by the contract generators and
//!   the obfuscation passes,
//! * [`word`] — 256-bit wrapping arithmetic for constant folding,
//! * [`stack`] / [`memory_model`] — abstract stack and word-granular
//!   abstract memory simulation,
//! * [`mod@cfg`] — basic-block recovery with static jump resolution by
//!   constant propagation through stack *and* memory (the structural
//!   representation the GNNs consume),
//! * [`lift`] — lifting raw bytecode back to label-form assembly so the
//!   obfuscation passes apply to arbitrary contracts,
//! * [`interp`] — a concrete interpreter for differential testing,
//! * [`proxy`] — ERC-1167 minimal-proxy detection and skeleton hashing for
//!   corpus deduplication,
//! * [`selector`] — dispatcher function-selector extraction.
//!
//! # Examples
//!
//! Disassemble and recover the CFG of a tiny contract:
//!
//! ```
//! use scamdetect_evm::{asm::AsmProgram, cfg::build_cfg, opcode::Opcode};
//!
//! # fn main() -> Result<(), scamdetect_evm::EvmError> {
//! let mut p = AsmProgram::new();
//! let done = p.new_label();
//! p.op(Opcode::CALLVALUE);
//! p.jumpi_to(done);           // if msg.value != 0 goto done
//! p.push_value(0).push_value(0).op(Opcode::REVERT);
//! p.place_label(done);
//! p.op(Opcode::STOP);
//!
//! let code = p.assemble()?;
//! let cfg = build_cfg(&code);
//! assert_eq!(cfg.block_count(), 3);
//! assert_eq!(cfg.unresolved_jump_count(), 0);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod cfg;
pub mod disasm;
pub mod error;
pub mod interp;
pub mod lift;
pub mod memory_model;
pub mod opcode;
pub mod proxy;
pub mod selector;
pub mod stack;
pub mod word;

pub use asm::{AsmOp, AsmProgram, Label};
pub use cfg::{
    build_cfg, build_cfg_with, BasicBlock, Cfg, CfgOptions, EdgeKind, UnknownJumpPolicy,
};
pub use disasm::{disassemble, Instruction};
pub use error::EvmError;
pub use opcode::{OpCategory, Opcode};
pub use word::U256;
