//! Control-flow graph recovery from EVM bytecode.
//!
//! Basic blocks are delimited by `JUMPDEST`s and terminators; jump edges
//! are resolved by a forward fixpoint that propagates an
//! [`AbstractState`] — a constant-tracking stack plus a word-granular
//! abstract memory — across fall-through and resolved jump edges, so both
//! constant-split and memory-routed jump indirection resolve statically.
//! Jumps whose target never becomes a known constant are handled
//! according to an explicit [`UnknownJumpPolicy`] — exactly the
//! degradation that bytecode obfuscation induces and that the ScamDetect
//! evaluation measures.

use crate::disasm::{disassemble, Instruction};
use crate::memory_model::AbstractState;
use crate::opcode::Opcode;
use crate::stack::AbstractValue;
use scamdetect_graph::{DiGraph, NodeId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// How to connect a jump whose target could not be resolved statically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnknownJumpPolicy {
    /// Emit no edge: the CFG under-approximates.
    #[default]
    Ignore,
    /// Connect the jump site to every `JUMPDEST` block (sound
    /// over-approximation, like conservative binary CFG tools).
    ToAllJumpdests,
    /// Route all unresolved jumps through one synthetic node, keeping the
    /// over-approximation visible as a distinctive structure.
    VirtualNode,
}

/// CFG construction options.
#[derive(Debug, Clone)]
pub struct CfgOptions {
    /// Policy for unresolved jump targets.
    pub unknown_jump_policy: UnknownJumpPolicy,
    /// Cap on worklist iterations, as a multiple of the block count.
    pub max_passes: usize,
}

impl Default for CfgOptions {
    fn default() -> Self {
        CfgOptions {
            unknown_jump_policy: UnknownJumpPolicy::default(),
            max_passes: 16,
        }
    }
}

/// A basic block: a maximal straight-line instruction sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Byte offset of the first instruction (`usize::MAX` for the virtual
    /// block, if any).
    pub start: usize,
    /// The instructions of the block, in order.
    pub instructions: Vec<Instruction>,
    /// `true` only for the synthetic node of
    /// [`UnknownJumpPolicy::VirtualNode`].
    pub is_virtual: bool,
}

impl BasicBlock {
    /// Byte offset one past the last instruction.
    pub fn end(&self) -> usize {
        self.instructions
            .last()
            .map_or(self.start, Instruction::next_offset)
    }

    /// Opcode of the final instruction, if any and assigned.
    pub fn last_opcode(&self) -> Option<Opcode> {
        self.instructions.last().and_then(|i| i.opcode)
    }

    /// `true` if the block begins with a `JUMPDEST` (is a valid jump
    /// target).
    pub fn is_jump_target(&self) -> bool {
        self.instructions
            .first()
            .is_some_and(|i| i.opcode == Some(Opcode::JUMPDEST))
    }
}

/// Kind of a CFG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeKind {
    /// Execution continues into the next block (includes the not-taken arm
    /// of `JUMPI`).
    FallThrough,
    /// A resolved unconditional `JUMP`.
    Jump,
    /// The taken arm of a resolved `JUMPI`.
    Branch,
    /// An edge materialised for an unresolved jump per the policy.
    Unresolved,
}

/// A recovered control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    graph: DiGraph<BasicBlock, EdgeKind>,
    entry: NodeId,
    unresolved_jumps: usize,
    resolved_jumps: usize,
}

impl Cfg {
    /// The underlying graph (blocks as node payloads).
    pub fn graph(&self) -> &DiGraph<BasicBlock, EdgeKind> {
        &self.graph
    }

    /// The entry node (block at offset 0).
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// Block payload of `id`.
    pub fn block(&self, id: NodeId) -> &BasicBlock {
        self.graph.node(id)
    }

    /// Number of basic blocks (including a virtual node if present).
    pub fn block_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of dynamic jump sites whose target resolution failed.
    pub fn unresolved_jump_count(&self) -> usize {
        self.unresolved_jumps
    }

    /// Number of jump sites that were statically resolved.
    pub fn resolved_jump_count(&self) -> usize {
        self.resolved_jumps
    }

    /// Total instruction count across blocks.
    pub fn instruction_count(&self) -> usize {
        self.graph.nodes().map(|(_, b)| b.instructions.len()).sum()
    }

    /// Graphviz rendering with per-block instruction listings.
    pub fn to_dot(&self) -> String {
        scamdetect_graph::dot::to_dot(
            &self.graph,
            "evm_cfg",
            |_, b| {
                if b.is_virtual {
                    "<unresolved>".to_string()
                } else {
                    let mut s = format!("@{:#06x}\n", b.start);
                    for i in &b.instructions {
                        s.push_str(&i.to_string());
                        s.push('\n');
                    }
                    s
                }
            },
            |e| format!("{e:?}"),
        )
    }
}

/// What a block does when it finishes.
#[derive(Debug, Clone)]
enum BlockExit {
    Fall,
    Halt,
    Jump(AbstractValue),
    Branch(AbstractValue),
}

fn simulate_block(block: &[Instruction], entry: &AbstractState) -> (AbstractState, BlockExit) {
    let mut state = entry.clone();
    let mut exit = BlockExit::Fall;
    for ins in block {
        match ins.opcode {
            Some(Opcode::JUMP) => {
                exit = BlockExit::Jump(state.stack.peek(0));
                state.execute(ins);
            }
            Some(Opcode::JUMPI) => {
                exit = BlockExit::Branch(state.stack.peek(0));
                state.execute(ins);
            }
            Some(op) if op.is_halt() => {
                exit = BlockExit::Halt;
            }
            None => {
                exit = BlockExit::Halt; // unassigned byte = INVALID
            }
            _ => state.execute(ins),
        }
    }
    (state, exit)
}

/// Builds the CFG of `code` with default options.
///
/// # Examples
///
/// ```
/// use scamdetect_evm::cfg::build_cfg;
///
/// // PUSH1 4 JUMP; JUMPDEST STOP  — one resolved jump.
/// let code = [0x60, 0x04, 0x56, 0xfe, 0x5b, 0x00];
/// let cfg = build_cfg(&code);
/// assert_eq!(cfg.resolved_jump_count(), 1);
/// assert_eq!(cfg.unresolved_jump_count(), 0);
/// ```
pub fn build_cfg(code: &[u8]) -> Cfg {
    build_cfg_with(code, &CfgOptions::default())
}

/// Builds the CFG of `code` under explicit options.
pub fn build_cfg_with(code: &[u8], opts: &CfgOptions) -> Cfg {
    let instrs = disassemble(code);

    // --- Block boundaries -------------------------------------------------
    let mut leaders: BTreeSet<usize> = BTreeSet::new();
    leaders.insert(0);
    for ins in &instrs {
        if ins.opcode == Some(Opcode::JUMPDEST) {
            leaders.insert(ins.offset);
        }
        if ins.is_block_terminator() || ins.opcode == Some(Opcode::JUMPI) {
            leaders.insert(ins.next_offset());
        }
    }

    let mut blocks: Vec<BasicBlock> = Vec::new();
    let mut current: Vec<Instruction> = Vec::new();
    let mut current_start = 0usize;
    for ins in &instrs {
        if ins.offset != current_start && leaders.contains(&ins.offset) && !current.is_empty() {
            blocks.push(BasicBlock {
                start: current_start,
                instructions: std::mem::take(&mut current),
                is_virtual: false,
            });
            current_start = ins.offset;
        }
        if current.is_empty() {
            current_start = ins.offset;
        }
        current.push(ins.clone());
    }
    if !current.is_empty() || blocks.is_empty() {
        blocks.push(BasicBlock {
            start: current_start,
            instructions: current,
            is_virtual: false,
        });
    }

    let mut graph: DiGraph<BasicBlock, EdgeKind> = DiGraph::with_capacity(blocks.len());
    let mut offset_to_node: BTreeMap<usize, NodeId> = BTreeMap::new();
    for b in blocks {
        let start = b.start;
        let id = graph.add_node(b);
        offset_to_node.insert(start, id);
    }
    let entry = offset_to_node[&0];

    let node_order: Vec<NodeId> = graph.node_ids().collect();
    let jumpdest_nodes: Vec<NodeId> = node_order
        .iter()
        .copied()
        .filter(|&n| graph.node(n).is_jump_target())
        .collect();

    // --- Fixpoint jump resolution -----------------------------------------
    let mut in_state: Vec<Option<AbstractState>> = vec![None; graph.node_count()];
    in_state[entry.index()] = Some(AbstractState::new());
    let mut edges: BTreeSet<(NodeId, NodeId, EdgeKind)> = BTreeSet::new();
    let mut unresolved_sites: BTreeSet<NodeId> = BTreeSet::new();
    let mut resolved_targets: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();

    let next_block_of = |n: NodeId, graph: &DiGraph<BasicBlock, EdgeKind>| -> Option<NodeId> {
        let end = graph.node(n).end();
        offset_to_node.get(&end).copied()
    };

    let mut queue: VecDeque<NodeId> = VecDeque::new();
    queue.push_back(entry);
    let budget = graph.node_count().max(1) * opts.max_passes;
    let mut steps = 0usize;

    while let Some(n) = queue.pop_front() {
        steps += 1;
        if steps > budget {
            break;
        }
        let entry_state = in_state[n.index()].clone().unwrap_or_default();
        let (exit_state, exit) = simulate_block(&graph.node(n).instructions, &entry_state);

        let mut succs: Vec<(NodeId, EdgeKind)> = Vec::new();
        match exit {
            BlockExit::Halt => {}
            BlockExit::Fall => {
                if let Some(next) = next_block_of(n, &graph) {
                    succs.push((next, EdgeKind::FallThrough));
                }
            }
            BlockExit::Jump(target) => match resolve_target(target, &offset_to_node, &graph) {
                Some(t) => {
                    resolved_targets.entry(n).or_default().insert(t);
                    succs.push((t, EdgeKind::Jump));
                }
                None => {
                    if target.as_known().is_none() {
                        unresolved_sites.insert(n);
                    }
                    // Known-but-invalid target: execution reverts, no edge.
                }
            },
            BlockExit::Branch(target) => {
                match resolve_target(target, &offset_to_node, &graph) {
                    Some(t) => {
                        resolved_targets.entry(n).or_default().insert(t);
                        succs.push((t, EdgeKind::Branch));
                    }
                    None => {
                        if target.as_known().is_none() {
                            unresolved_sites.insert(n);
                        }
                    }
                }
                if let Some(next) = next_block_of(n, &graph) {
                    succs.push((next, EdgeKind::FallThrough));
                }
            }
        }

        for (succ, kind) in succs {
            edges.insert((n, succ, kind));
            let changed = match &mut in_state[succ.index()] {
                Some(st) => st.join_from(&exit_state),
                slot => {
                    *slot = Some(exit_state.clone());
                    true
                }
            };
            if changed {
                queue.push_back(succ);
            }
        }
    }

    // --- Dead blocks: simulate once with an unknown entry ------------------
    for n in &node_order {
        if in_state[n.index()].is_some() {
            continue;
        }
        let (_, exit) = simulate_block(&graph.node(*n).instructions, &AbstractState::new());
        match exit {
            BlockExit::Halt => {}
            BlockExit::Fall => {
                if let Some(next) = next_block_of(*n, &graph) {
                    edges.insert((*n, next, EdgeKind::FallThrough));
                }
            }
            BlockExit::Jump(t) => match resolve_target(t, &offset_to_node, &graph) {
                Some(tn) => {
                    edges.insert((*n, tn, EdgeKind::Jump));
                }
                None => {
                    if t.as_known().is_none() {
                        unresolved_sites.insert(*n);
                    }
                }
            },
            BlockExit::Branch(t) => {
                if let Some(tn) = resolve_target(t, &offset_to_node, &graph) {
                    edges.insert((*n, tn, EdgeKind::Branch));
                } else if t.as_known().is_none() {
                    unresolved_sites.insert(*n);
                }
                if let Some(next) = next_block_of(*n, &graph) {
                    edges.insert((*n, next, EdgeKind::FallThrough));
                }
            }
        }
    }

    // --- Unresolved jump policy --------------------------------------------
    match opts.unknown_jump_policy {
        UnknownJumpPolicy::Ignore => {}
        UnknownJumpPolicy::ToAllJumpdests => {
            for &site in &unresolved_sites {
                for &jd in &jumpdest_nodes {
                    edges.insert((site, jd, EdgeKind::Unresolved));
                }
            }
        }
        UnknownJumpPolicy::VirtualNode => {
            if !unresolved_sites.is_empty() {
                let virt = graph.add_node(BasicBlock {
                    start: usize::MAX,
                    instructions: Vec::new(),
                    is_virtual: true,
                });
                for &site in &unresolved_sites {
                    edges.insert((site, virt, EdgeKind::Unresolved));
                }
                for &jd in &jumpdest_nodes {
                    edges.insert((virt, jd, EdgeKind::Unresolved));
                }
            }
        }
    }

    for (from, to, kind) in edges {
        graph.add_edge(from, to, kind);
    }

    let resolved_jumps = resolved_targets.values().map(BTreeSet::len).sum();
    Cfg {
        graph,
        entry,
        unresolved_jumps: unresolved_sites.len(),
        resolved_jumps,
    }
}

fn resolve_target(
    target: AbstractValue,
    offset_to_node: &BTreeMap<usize, NodeId>,
    graph: &DiGraph<BasicBlock, EdgeKind>,
) -> Option<NodeId> {
    let off = target.as_known()?.to_usize()?;
    let node = offset_to_node.get(&off).copied()?;
    graph.node(node).is_jump_target().then_some(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::AsmProgram;

    fn assemble(build: impl FnOnce(&mut AsmProgram)) -> Vec<u8> {
        let mut p = AsmProgram::new();
        build(&mut p);
        p.assemble().expect("test program assembles")
    }

    #[test]
    fn straight_line_is_one_block() {
        let cfg = build_cfg(&[0x60, 0x01, 0x60, 0x02, 0x01, 0x00]); // PUSH PUSH ADD STOP
        assert_eq!(cfg.block_count(), 1);
        assert_eq!(cfg.graph().edge_count(), 0);
        assert_eq!(cfg.instruction_count(), 4);
    }

    #[test]
    fn direct_jump_resolves() {
        let code = assemble(|p| {
            let l = p.new_label();
            p.jump_to(l);
            p.op(Opcode::INVALID);
            p.place_label(l);
            p.op(Opcode::STOP);
        });
        let cfg = build_cfg(&code);
        assert_eq!(cfg.resolved_jump_count(), 1);
        assert_eq!(cfg.unresolved_jump_count(), 0);
        let kinds: Vec<EdgeKind> = cfg.graph().edges().map(|(_, _, k)| *k).collect();
        assert!(kinds.contains(&EdgeKind::Jump));
    }

    #[test]
    fn jumpi_has_branch_and_fallthrough() {
        let code = assemble(|p| {
            let l = p.new_label();
            p.op(Opcode::CALLVALUE);
            p.jumpi_to(l);
            p.op(Opcode::STOP);
            p.place_label(l);
            p.op(Opcode::STOP);
        });
        let cfg = build_cfg(&code);
        let kinds: BTreeSet<EdgeKind> = cfg.graph().edges().map(|(_, _, k)| *k).collect();
        assert!(kinds.contains(&EdgeKind::Branch));
        assert!(kinds.contains(&EdgeKind::FallThrough));
    }

    #[test]
    fn split_constant_jump_resolves_locally() {
        // Target computed as 3 + (label - 3): classic constant-split.
        let code = assemble(|p| {
            let l = p.new_label();
            // PUSH 2; PUSH (l as label); ... we emulate split by arithmetic:
            // push_label then ADD 0 keeps it resolvable.
            p.push_value(0);
            p.push_label(l);
            p.op(Opcode::ADD);
            p.op(Opcode::JUMP);
            p.op(Opcode::INVALID);
            p.place_label(l);
            p.op(Opcode::STOP);
        });
        let cfg = build_cfg(&code);
        assert_eq!(cfg.resolved_jump_count(), 1);
        assert_eq!(cfg.unresolved_jump_count(), 0);
    }

    #[test]
    fn cross_block_constant_propagation() {
        // Block A pushes the target, block B (fallthrough) jumps on it.
        let code = assemble(|p| {
            let l = p.new_label();
            let mid = p.new_label();
            p.push_label(l); // leave the target on the stack
            p.push_value(1);
            p.jumpi_to(mid); // split: target stays on stack across edge
            p.place_label(mid);
            p.op(Opcode::JUMP); // target comes from the predecessor block
            p.place_label(l);
            p.op(Opcode::STOP);
        });
        let cfg = build_cfg(&code);
        assert_eq!(cfg.unresolved_jump_count(), 0, "{}", cfg.to_dot());
        assert!(cfg.resolved_jump_count() >= 2);
    }

    #[test]
    fn dynamic_jump_is_unresolved_and_policies_apply() {
        // CALLDATALOAD-based jump target: cannot resolve.
        let code = assemble(|p| {
            let l = p.new_label();
            p.push_value(0);
            p.op(Opcode::CALLDATALOAD);
            p.op(Opcode::JUMP);
            p.place_label(l);
            p.op(Opcode::STOP);
        });
        let cfg = build_cfg(&code);
        assert_eq!(cfg.unresolved_jump_count(), 1);
        assert!(!cfg
            .graph()
            .edges()
            .any(|(_, _, k)| *k == EdgeKind::Unresolved));

        let cfg2 = build_cfg_with(
            &code,
            &CfgOptions {
                unknown_jump_policy: UnknownJumpPolicy::ToAllJumpdests,
                ..CfgOptions::default()
            },
        );
        assert!(cfg2
            .graph()
            .edges()
            .any(|(_, _, k)| *k == EdgeKind::Unresolved));

        let cfg3 = build_cfg_with(
            &code,
            &CfgOptions {
                unknown_jump_policy: UnknownJumpPolicy::VirtualNode,
                ..CfgOptions::default()
            },
        );
        assert_eq!(cfg3.block_count(), cfg.block_count() + 1);
        assert!(cfg3.graph().nodes().any(|(_, b)| b.is_virtual));
    }

    #[test]
    fn invalid_jump_target_gets_no_edge() {
        // JUMP to offset 1, which is not a JUMPDEST.
        let cfg = build_cfg(&[0x60, 0x01, 0x56, 0x00]); // PUSH1 1; JUMP; STOP
        assert_eq!(cfg.resolved_jump_count(), 0);
        assert_eq!(cfg.unresolved_jump_count(), 0);
        assert_eq!(cfg.graph().edge_count(), 0);
    }

    #[test]
    fn dead_block_local_jumps_still_appear() {
        // Unreachable block with its own direct jump.
        let code = assemble(|p| {
            let dead = p.new_label();
            let end = p.new_label();
            p.op(Opcode::STOP); // entry halts; everything below is dead
            p.place_label(dead);
            p.jump_to(end);
            p.place_label(end);
            p.op(Opcode::STOP);
        });
        let cfg = build_cfg(&code);
        assert!(cfg.graph().edges().any(|(_, _, k)| *k == EdgeKind::Jump));
    }

    #[test]
    fn empty_code_yields_single_empty_block() {
        let cfg = build_cfg(&[]);
        assert_eq!(cfg.block_count(), 1);
        assert_eq!(cfg.instruction_count(), 0);
    }

    #[test]
    fn dot_export_mentions_blocks() {
        let cfg = build_cfg(&[0x00]);
        let dot = cfg.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("STOP"));
    }

    #[test]
    fn loop_shape_recovered() {
        // while (callvalue) {} — JUMPDEST; CALLVALUE; JUMPI back; STOP.
        let code = assemble(|p| {
            let top = p.new_label();
            let out = p.new_label();
            p.place_label(top);
            p.op(Opcode::CALLVALUE);
            p.op(Opcode::ISZERO);
            p.jumpi_to(out);
            p.jump_to(top);
            p.place_label(out);
            p.op(Opcode::STOP);
        });
        let cfg = build_cfg(&code);
        // There must be a cycle: some edge goes "backwards" to the entry.
        let has_back_edge = cfg
            .graph()
            .edges()
            .any(|(u, v, _)| cfg.block(v).start <= cfg.block(u).start);
        assert!(has_back_edge, "{}", cfg.to_dot());
    }
}
