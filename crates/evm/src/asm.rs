//! A label-aware EVM assembler.
//!
//! Contract generators and obfuscation passes work on *label-form* programs
//! ([`AsmProgram`]): sequences of [`AsmOp`]s in which jump targets are
//! symbolic [`Label`]s. Assembly resolves labels to concrete `PUSH2`
//! offsets in two passes, so any transformation that preserves the op list
//! semantics automatically preserves control flow in the emitted bytecode.

use crate::error::EvmError;
use crate::opcode::Opcode;
use std::collections::HashMap;
use std::fmt;

/// A symbolic jump target.
///
/// Labels are created by [`AsmProgram::new_label`] and bound to a position
/// by [`AsmProgram::place_label`] (which emits the `JUMPDEST`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(pub(crate) u32);

impl Label {
    /// Numeric id (diagnostics only).
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// One operation in a label-form program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmOp {
    /// A plain opcode without immediate.
    Op(Opcode),
    /// A push of a concrete big-endian value; the `PUSHn` width is chosen
    /// from the byte length (empty = `PUSH0`).
    Push(Vec<u8>),
    /// A push of a label's eventual offset (assembled as `PUSH2`).
    PushLabel(Label),
    /// Defines `Label` here and emits a `JUMPDEST`.
    LabelDef(Label),
    /// Raw bytes appended verbatim (data sections, constructor arguments).
    Raw(Vec<u8>),
}

impl AsmOp {
    fn encoded_len(&self) -> usize {
        match self {
            AsmOp::Op(_) => 1,
            AsmOp::Push(bytes) => 1 + bytes.len(),
            AsmOp::PushLabel(_) => 3, // PUSH2 hi lo
            AsmOp::LabelDef(_) => 1,  // JUMPDEST
            AsmOp::Raw(bytes) => bytes.len(),
        }
    }
}

/// A label-form EVM program under construction.
///
/// # Examples
///
/// Build `if calldatasize == 0 { revert } else { stop }`:
///
/// ```
/// use scamdetect_evm::asm::AsmProgram;
/// use scamdetect_evm::opcode::Opcode;
///
/// # fn main() -> Result<(), scamdetect_evm::EvmError> {
/// let mut p = AsmProgram::new();
/// let ok = p.new_label();
/// p.op(Opcode::CALLDATASIZE);
/// p.jumpi_to(ok);
/// p.push_value(0).push_value(0).op(Opcode::REVERT);
/// p.place_label(ok);
/// p.op(Opcode::STOP);
/// let code = p.assemble()?;
/// assert_eq!(code.last(), Some(&0x00)); // STOP
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AsmProgram {
    ops: Vec<AsmOp>,
    next_label: u32,
}

impl AsmProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        AsmProgram::default()
    }

    /// Allocates a fresh, unplaced label.
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Appends a plain opcode. Returns `&mut self` for chaining.
    pub fn op(&mut self, op: Opcode) -> &mut Self {
        debug_assert_eq!(op.immediate_len(), 0, "use push_* for PUSHn");
        self.ops.push(AsmOp::Op(op));
        self
    }

    /// Appends a minimal-width push of `value`.
    pub fn push_value(&mut self, value: u64) -> &mut Self {
        let bytes = crate::word::U256::from_u64(value).to_be_bytes_minimal();
        self.ops.push(AsmOp::Push(bytes));
        self
    }

    /// Appends a push of exactly these big-endian bytes (width = length).
    ///
    /// # Panics
    ///
    /// Panics if more than 32 bytes are supplied.
    pub fn push_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        assert!(bytes.len() <= 32, "push immediate wider than 32 bytes");
        self.ops.push(AsmOp::Push(bytes.to_vec()));
        self
    }

    /// Appends a push of `label`'s offset.
    pub fn push_label(&mut self, label: Label) -> &mut Self {
        self.ops.push(AsmOp::PushLabel(label));
        self
    }

    /// Places `label` here (emits `JUMPDEST`).
    pub fn place_label(&mut self, label: Label) -> &mut Self {
        self.ops.push(AsmOp::LabelDef(label));
        self
    }

    /// `PUSH <label>; JUMP`.
    pub fn jump_to(&mut self, label: Label) -> &mut Self {
        self.push_label(label);
        self.op(Opcode::JUMP)
    }

    /// `PUSH <label>; JUMPI` (consumes the condition already on the stack).
    pub fn jumpi_to(&mut self, label: Label) -> &mut Self {
        self.push_label(label);
        self.op(Opcode::JUMPI)
    }

    /// Appends raw bytes verbatim.
    pub fn raw(&mut self, bytes: &[u8]) -> &mut Self {
        self.ops.push(AsmOp::Raw(bytes.to_vec()));
        self
    }

    /// Appends an arbitrary op (used by obfuscation passes).
    pub fn push_op(&mut self, op: AsmOp) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// The op list (read access for passes and tests).
    pub fn ops(&self) -> &[AsmOp] {
        &self.ops
    }

    /// Consumes the program, returning its op list.
    pub fn into_ops(self) -> Vec<AsmOp> {
        self.ops
    }

    /// Rebuilds a program from a transformed op list, keeping the label
    /// counter high enough that `new_label` stays fresh.
    pub fn from_ops(ops: Vec<AsmOp>) -> Self {
        let next_label = ops
            .iter()
            .filter_map(|op| match op {
                AsmOp::PushLabel(l) | AsmOp::LabelDef(l) => Some(l.0 + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        AsmProgram { ops, next_label }
    }

    /// Number of ops currently in the program.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if no ops have been appended.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Assembles to bytecode, resolving labels to `PUSH2` offsets.
    ///
    /// # Errors
    ///
    /// * [`EvmError::UndefinedLabel`] — a pushed label was never placed.
    /// * [`EvmError::DuplicateLabel`] — a label placed twice.
    /// * [`EvmError::CodeTooLarge`] — the program exceeds 64 KiB (the
    ///   `PUSH2` addressing limit; real contracts cap at 24 KiB anyway).
    /// * [`EvmError::ImmediateTooWide`] — a push wider than 32 bytes.
    pub fn assemble(&self) -> Result<Vec<u8>, EvmError> {
        // Pass 1: compute label offsets.
        let mut offsets: HashMap<Label, usize> = HashMap::new();
        let mut pc = 0usize;
        for op in &self.ops {
            if let AsmOp::Push(bytes) = op {
                if bytes.len() > 32 {
                    return Err(EvmError::ImmediateTooWide { width: bytes.len() });
                }
            }
            if let AsmOp::LabelDef(l) = op {
                if offsets.insert(*l, pc).is_some() {
                    return Err(EvmError::DuplicateLabel { label: l.0 });
                }
            }
            pc += op.encoded_len();
        }
        if pc > u16::MAX as usize {
            return Err(EvmError::CodeTooLarge { size: pc });
        }

        // Pass 2: emit.
        let mut out = Vec::with_capacity(pc);
        for op in &self.ops {
            match op {
                AsmOp::Op(o) => out.push(o.byte()),
                AsmOp::Push(bytes) => {
                    out.push(Opcode::push_n(bytes.len()).byte());
                    out.extend_from_slice(bytes);
                }
                AsmOp::PushLabel(l) => {
                    let target = *offsets
                        .get(l)
                        .ok_or(EvmError::UndefinedLabel { label: l.0 })?;
                    out.push(Opcode::PUSH2.byte());
                    out.extend_from_slice(&(target as u16).to_be_bytes());
                }
                AsmOp::LabelDef(_) => out.push(Opcode::JUMPDEST.byte()),
                AsmOp::Raw(bytes) => out.extend_from_slice(bytes),
            }
        }
        debug_assert_eq!(out.len(), pc);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut p = AsmProgram::new();
        let top = p.new_label();
        let end = p.new_label();
        p.place_label(top); // offset 0
        p.op(Opcode::CALLVALUE);
        p.jumpi_to(end); // forward reference
        p.jump_to(top); // backward reference
        p.place_label(end);
        p.op(Opcode::STOP);
        let code = p.assemble().unwrap();

        let instrs = disassemble(&code);
        // Find the JUMPI target push: must equal `end`'s offset.
        let end_off = instrs
            .iter()
            .filter(|i| i.opcode == Some(Opcode::JUMPDEST))
            .nth(1)
            .unwrap()
            .offset;
        let pushed: Vec<usize> = instrs
            .iter()
            .filter_map(|i| i.push_value()?.to_usize())
            .collect();
        assert!(pushed.contains(&end_off));
        assert!(pushed.contains(&0)); // `top`
    }

    #[test]
    fn push_widths_chosen_minimally() {
        let mut p = AsmProgram::new();
        p.push_value(0);
        p.push_value(0x7f);
        p.push_value(0x1234);
        let code = p.assemble().unwrap();
        assert_eq!(code[0], Opcode::PUSH0.byte());
        assert_eq!(code[1], Opcode::PUSH1.byte());
        assert_eq!(code[3], Opcode::PUSH2.byte());
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut p = AsmProgram::new();
        let l = p.new_label();
        p.push_label(l);
        assert_eq!(p.assemble(), Err(EvmError::UndefinedLabel { label: 0 }));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut p = AsmProgram::new();
        let l = p.new_label();
        p.place_label(l).place_label(l);
        assert_eq!(p.assemble(), Err(EvmError::DuplicateLabel { label: 0 }));
    }

    #[test]
    fn oversized_program_rejected() {
        let mut p = AsmProgram::new();
        p.raw(&vec![0x00; 70_000]);
        assert!(matches!(p.assemble(), Err(EvmError::CodeTooLarge { .. })));
    }

    #[test]
    fn from_ops_keeps_label_counter_fresh() {
        let mut p = AsmProgram::new();
        let a = p.new_label();
        p.place_label(a);
        let mut q = AsmProgram::from_ops(p.into_ops());
        let b = q.new_label();
        assert_ne!(a, b);
    }

    #[test]
    fn raw_bytes_emitted_verbatim() {
        let mut p = AsmProgram::new();
        p.op(Opcode::STOP).raw(&[0xde, 0xad]);
        assert_eq!(p.assemble().unwrap(), vec![0x00, 0xde, 0xad]);
    }

    #[test]
    fn label_def_emits_jumpdest() {
        let mut p = AsmProgram::new();
        let l = p.new_label();
        p.place_label(l);
        assert_eq!(p.assemble().unwrap(), vec![Opcode::JUMPDEST.byte()]);
    }
}
